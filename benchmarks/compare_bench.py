"""Gate a fresh ``BENCH_<sha>.json`` against the committed bench trajectory.

The CI ``bench-compare`` step: after the perf job distills its fresh run into
``BENCH_<sha>.json`` (see ``export_bench.py``), this script diffs the fresh
guard numbers against the **newest committed snapshot** under
``benchmarks/baselines/`` and fails (exit 1) when any shared guard key
regresses by more than the threshold (default 30%).  It also prints the full
guard trajectory across every committed snapshot, so the job log shows where
each number has been, not just where it is.

Guard keys are direction-aware: most are higher-is-better (speedups, parity,
events/sec, QPS); the keys in :data:`LOWER_IS_BETTER` (evaluation fractions,
overheads, drift, latencies) regress *upward*.  Near-zero lower-is-better
baselines (drift and overhead ratios measured in hundredths) additionally get
a small absolute slack, so noise around ~0 cannot fail the gate.

Usage
-----
```
python benchmarks/compare_bench.py BENCH_${GITHUB_SHA}.json \
    [--baselines benchmarks/baselines] [--threshold 0.30] \
    [--exclude-sha $GITHUB_SHA]
```

A missing or empty baseline directory passes with a note — the first PR that
commits a snapshot bootstraps the gate for every later one.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Guard-key *suffixes* (the part after ``<benchmark name>.``) where lower is
#: better; every other key regresses downward.
LOWER_IS_BETTER = frozenset(
    {
        "celf_fraction",
        "interrupted_solve_overhead",
        "dynamic_drift",
        "serve_p50_ms",
        "serve_p99_ms",
        "wal_overhead",
        "recovery_seconds",
        "obs_overhead",
        "obs_overhead_disabled",
    }
)

#: Absolute slack added on top of the relative threshold for lower-is-better
#: suffixes whose ratio test alone is too twitchy: near-zero baselines
#: (0.001 drift tripling is noise, not a regression) and raw wall-clock
#: latencies, which swing with the runner (the trajectory still shows them;
#: only the gate is softened).
ABSOLUTE_SLACK: Dict[str, float] = {
    "dynamic_drift": 0.02,
    "interrupted_solve_overhead": 0.02,
    "serve_p50_ms": 25.0,
    "serve_p99_ms": 50.0,
    "wal_overhead": 0.05,
    "recovery_seconds": 5.0,
    "obs_overhead": 0.05,
    "obs_overhead_disabled": 0.01,
}

DEFAULT_THRESHOLD = 0.30


def _suffix(key: str) -> str:
    """The guard suffix of a ``<benchmark name>.<suffix>`` key."""
    return key.rsplit(".", 1)[-1]


def load_snapshots(
    baselines_dir: str, *, exclude_sha: Optional[str] = None
) -> List[dict]:
    """All committed ``BENCH_*.json`` snapshots, oldest first.

    Sorted by embedded ``datetime`` (filename as a tiebreaker, so snapshots
    missing the field still order deterministically); snapshots whose
    embedded ``sha`` matches ``exclude_sha`` are dropped, which lets CI avoid
    comparing a commit against its own snapshot.
    """
    snapshots = []
    for path in sorted(glob.glob(os.path.join(baselines_dir, "BENCH_*.json"))):
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if exclude_sha and payload.get("sha") == exclude_sha:
            continue
        payload["_path"] = os.path.basename(path)
        snapshots.append(payload)
    snapshots.sort(key=lambda p: (p.get("datetime") or "", p["_path"]))
    return snapshots


def compare_guards(
    fresh: Dict[str, float],
    baseline: Dict[str, float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[List[str], List[str]]:
    """Diff shared guard keys; return (report lines, regression lines).

    Keys present on only one side are reported but never fail the gate —
    benchmarks come and go across PRs and the gate must not punish adding
    one.
    """
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(set(fresh) | set(baseline)):
        if key not in fresh:
            lines.append(f"  {key}: baseline {baseline[key]:g}, missing fresh (skip)")
            continue
        if key not in baseline:
            lines.append(f"  {key}: fresh {fresh[key]:g}, no baseline (new)")
            continue
        new, old = float(fresh[key]), float(baseline[key])
        suffix = _suffix(key)
        if suffix in LOWER_IS_BETTER:
            limit = old * (1.0 + threshold) + ABSOLUTE_SLACK.get(suffix, 0.0)
            regressed = new > limit
            arrow = "up" if new > old else "down"
        else:
            limit = old * (1.0 - threshold)
            regressed = new < limit
            arrow = "down" if new < old else "up"
        change = (new - old) / old if old else float("inf") if new else 0.0
        status = "REGRESSED" if regressed else "ok"
        lines.append(
            f"  {key}: {old:g} -> {new:g} ({change:+.1%} {arrow}, "
            f"limit {limit:g}) {status}"
        )
        if regressed:
            regressions.append(
                f"{key}: {old:g} -> {new:g} ({change:+.1%}, limit {limit:g})"
            )
    return lines, regressions


def trajectory_table(snapshots: Sequence[dict], fresh: dict) -> str:
    """Render the guard trajectory: one row per key, one column per snapshot."""
    columns = list(snapshots) + [fresh]
    headers = ["guard"] + [
        (payload.get("sha") or payload.get("_path") or "?")[:10]
        for payload in snapshots
    ] + ["(fresh)"]
    keys = sorted({key for payload in columns for key in payload.get("guards", {})})
    rows = [
        [key]
        + [
            f"{payload.get('guards', {})[key]:g}"
            if key in payload.get("guards", {})
            else "-"
            for payload in columns
        ]
        for key in keys
    ]
    widths = [
        max(len(str(cell)) for cell in [headers[i]] + [row[i] for row in rows])
        for i in range(len(headers))
    ]

    def fmt(cells):
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    out = [fmt(headers), fmt(["-" * width for width in widths])]
    out.extend(fmt(row) for row in rows)
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly distilled BENCH_<sha>.json")
    parser.add_argument(
        "--baselines",
        default=os.path.join(os.path.dirname(__file__) or ".", "baselines"),
        help="directory of committed BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default 0.30 = 30%%)",
    )
    parser.add_argument(
        "--exclude-sha",
        default=None,
        help="ignore committed snapshots with this embedded sha (the current commit)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.threshold < 1:
        parser.error("--threshold must be in [0, 1)")

    with open(args.fresh, "r", encoding="utf-8") as handle:
        fresh = json.load(handle)

    snapshots = load_snapshots(args.baselines, exclude_sha=args.exclude_sha)
    if not snapshots:
        print(
            f"bench-compare: no baseline snapshots under {args.baselines} — "
            "nothing to gate against (pass)"
        )
        return 0

    baseline = snapshots[-1]
    print(
        f"bench-compare: fresh {fresh.get('sha') or args.fresh} vs baseline "
        f"{baseline.get('sha') or baseline['_path']} "
        f"(threshold {args.threshold:.0%})"
    )
    lines, regressions = compare_guards(
        fresh.get("guards", {}), baseline.get("guards", {}), threshold=args.threshold
    )
    print("\n".join(lines))
    print()
    print(f"guard trajectory ({len(snapshots)} committed snapshot(s) + fresh):")
    print(trajectory_table(snapshots, fresh))
    if regressions:
        print()
        print(f"bench-compare: {len(regressions)} guard(s) regressed >"
              f"{args.threshold:.0%}:")
        for line in regressions:
            print(f"  {line}")
        return 1
    print()
    print("bench-compare: all shared guards within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
