"""Tests for the bench-trajectory regression gate used by the CI perf job."""

from __future__ import annotations

import json

from . import compare_bench


def _snapshot(sha: str, datetime: str, guards: dict) -> dict:
    return {"sha": sha, "datetime": datetime, "guards": guards}


def _write(tmp_path, name: str, payload: dict) -> None:
    (tmp_path / name).write_text(json.dumps(payload))


def _baselines(tmp_path, *payloads) -> str:
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    for payload in payloads:
        _write(baselines, f"BENCH_{payload['sha']}.json", payload)
    return str(baselines)


GUARDS = {
    "test_swap.speedup": 40.0,
    "test_shard.parity": 1.0,
    "test_celf.celf_fraction": 0.10,
    "test_serve.serve_qps": 1000.0,
    "test_serve.serve_p99_ms": 60.0,
}


class TestCompareGuards:
    def test_identical_guards_pass(self):
        lines, regressions = compare_bench.compare_guards(GUARDS, dict(GUARDS))
        assert not regressions
        assert len(lines) == len(GUARDS)

    def test_higher_is_better_drop_fails(self):
        fresh = dict(GUARDS, **{"test_serve.serve_qps": 500.0})  # -50% QPS
        _, regressions = compare_bench.compare_guards(fresh, GUARDS)
        assert len(regressions) == 1
        assert "serve_qps" in regressions[0]

    def test_lower_is_better_rise_fails(self):
        # +233% p99: beyond the 30% ratio plus the 50 ms runner slack.
        fresh = dict(GUARDS, **{"test_serve.serve_p99_ms": 200.0})
        _, regressions = compare_bench.compare_guards(fresh, GUARDS)
        assert len(regressions) == 1
        assert "serve_p99_ms" in regressions[0]

    def test_within_threshold_passes_both_directions(self):
        fresh = dict(
            GUARDS,
            **{
                "test_serve.serve_qps": 800.0,  # -20%
                "test_serve.serve_p99_ms": 70.0,  # +17%
                "test_swap.speedup": 50.0,  # improvement
            },
        )
        _, regressions = compare_bench.compare_guards(fresh, GUARDS)
        assert not regressions

    def test_near_zero_lower_is_better_gets_absolute_slack(self):
        base = {"test_dyn.dynamic_drift": 0.001}
        fresh = {"test_dyn.dynamic_drift": 0.01}  # 10x, but tiny absolute move
        _, regressions = compare_bench.compare_guards(fresh, base)
        assert not regressions
        fresh = {"test_dyn.dynamic_drift": 0.05}  # beyond the 0.02 slack
        _, regressions = compare_bench.compare_guards(fresh, base)
        assert len(regressions) == 1

    def test_disjoint_keys_never_fail(self):
        fresh = {"test_new.speedup": 5.0}
        base = {"test_old.speedup": 50.0}
        lines, regressions = compare_bench.compare_guards(fresh, base)
        assert not regressions
        assert any("no baseline (new)" in line for line in lines)
        assert any("missing fresh (skip)" in line for line in lines)


class TestSnapshots:
    def test_newest_by_datetime_wins(self, tmp_path):
        baselines = _baselines(
            tmp_path,
            _snapshot("new1", "2026-08-02T00:00:00", {"k.speedup": 2.0}),
            _snapshot("old1", "2026-08-01T00:00:00", {"k.speedup": 1.0}),
        )
        snapshots = compare_bench.load_snapshots(baselines)
        assert [s["sha"] for s in snapshots] == ["old1", "new1"]

    def test_exclude_sha(self, tmp_path):
        baselines = _baselines(
            tmp_path,
            _snapshot("aaa", "2026-08-01T00:00:00", {}),
            _snapshot("bbb", "2026-08-02T00:00:00", {}),
        )
        snapshots = compare_bench.load_snapshots(baselines, exclude_sha="bbb")
        assert [s["sha"] for s in snapshots] == ["aaa"]


class TestMain:
    def test_regression_exits_nonzero(self, tmp_path, capsys):
        baselines = _baselines(
            tmp_path, _snapshot("base1", "2026-08-01T00:00:00", GUARDS)
        )
        fresh = dict(GUARDS, **{"test_swap.speedup": 10.0})  # -75%
        _write(tmp_path, "fresh.json", _snapshot("head1", "2026-08-02T00:00:00", fresh))
        code = compare_bench.main(
            [str(tmp_path / "fresh.json"), "--baselines", baselines]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSED" in out
        assert "guard trajectory" in out

    def test_clean_run_exits_zero_and_prints_trajectory(self, tmp_path, capsys):
        baselines = _baselines(
            tmp_path,
            _snapshot("base1", "2026-08-01T00:00:00", GUARDS),
            _snapshot("base2", "2026-08-02T00:00:00", GUARDS),
        )
        _write(
            tmp_path, "fresh.json", _snapshot("head1", "2026-08-03T00:00:00", GUARDS)
        )
        code = compare_bench.main(
            [str(tmp_path / "fresh.json"), "--baselines", baselines]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all shared guards within threshold" in out
        # Trajectory table: one column per snapshot plus the fresh run.
        assert "base1" in out and "base2" in out and "(fresh)" in out

    def test_missing_baselines_pass_with_note(self, tmp_path, capsys):
        _write(
            tmp_path, "fresh.json", _snapshot("head1", "2026-08-03T00:00:00", GUARDS)
        )
        code = compare_bench.main(
            [
                str(tmp_path / "fresh.json"),
                "--baselines",
                str(tmp_path / "does-not-exist"),
            ]
        )
        assert code == 0
        assert "no baseline snapshots" in capsys.readouterr().out

    def test_exclude_sha_skips_own_snapshot(self, tmp_path, capsys):
        baselines = _baselines(
            tmp_path, _snapshot("self", "2026-08-02T00:00:00", GUARDS)
        )
        _write(tmp_path, "fresh.json", _snapshot("self", "2026-08-02T00:00:00", GUARDS))
        code = compare_bench.main(
            [
                str(tmp_path / "fresh.json"),
                "--baselines",
                baselines,
                "--exclude-sha",
                "self",
            ]
        )
        assert code == 0
        assert "no baseline snapshots" in capsys.readouterr().out

    def test_custom_threshold(self, tmp_path):
        baselines = _baselines(
            tmp_path, _snapshot("base1", "2026-08-01T00:00:00", {"k.speedup": 100.0})
        )
        _write(
            tmp_path,
            "fresh.json",
            _snapshot("head1", "2026-08-02T00:00:00", {"k.speedup": 85.0}),
        )
        args = [str(tmp_path / "fresh.json"), "--baselines", baselines]
        assert compare_bench.main(args) == 0  # -15% passes at 30%
        assert compare_bench.main(args + ["--threshold", "0.10"]) == 1
