"""Benchmark: reproduce Table 6 (AF of both greedies averaged over 5 LETOR-like queries).

Paper reference shape: averaged over queries Greedy B's factor stays within a
few per-cent of optimal (1.00–1.02) and is consistently at least as good as
Greedy A's (1.01–1.10, worsening slightly with p).
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table6


def test_table6_letor_multi_query_top50(benchmark):
    table = run_once(
        benchmark, table6, num_queries=5, top_k=50, p_values=(3, 4, 5, 6, 7), seed=2017
    )
    record_table(benchmark, table)

    for record in table.records:
        assert 1.0 - 1e-9 <= record["AF_GreedyB"] <= 2.0
        assert 1.0 - 1e-9 <= record["AF_GreedyA"] <= 2.0
    mean_b = sum(r["AF_GreedyB"] for r in table.records) / len(table.records)
    mean_a = sum(r["AF_GreedyA"] for r in table.records) / len(table.records)
    assert mean_b <= mean_a + 0.01
