"""Benchmark: reproduce Table 8 (which documents each algorithm returns, top-50 pool).

Paper reference shape: Greedy B's selection shares all or all-but-one
documents with the optimum at every p, while Greedy A diverges on more
documents as p grows (3 of 7 differ at p = 7 in the paper).
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table8


def test_table8_documents_returned(benchmark):
    table = run_once(benchmark, table8, top_k=50, p_values=(3, 4, 5, 6, 7), seed=2015)
    record_table(benchmark, table)

    for record in table.records:
        p = record["p"]
        assert len(record["GreedyB_docs"].split()) == p
        assert len(record["OPT_docs"].split()) == p
        # Greedy B's overlap with the optimum is at least Greedy A's overlap
        # minus one document (it is strictly larger in the paper's instance).
        assert record["B∩OPT"] >= record["A∩OPT"] - 1
