"""Benchmark: the Appendix's bad instance for greedy under a partition matroid.

Paper reference: the greedy algorithm's approximation ratio on this family is
unbounded (grows with r), while the local search of Theorem 2 stays within
its factor-2 guarantee.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.appendix import appendix_bad_instance, run_appendix_comparison
from repro.experiments.reporting import format_table


def _sweep(r_values):
    rows = []
    for r in r_values:
        comparison = run_appendix_comparison(appendix_bad_instance(r=r))
        rows.append(
            {
                "r": r,
                "greedy_ratio": comparison["greedy_ratio"],
                "local_search_ratio": comparison["local_search_ratio"],
            }
        )
    return rows


def test_appendix_greedy_unbounded_local_search_bounded(benchmark):
    rows = run_once(benchmark, _sweep, (6, 10, 20, 40))
    print()
    print(
        format_table(
            ["r", "greedy_ratio", "local_search_ratio"],
            [
                [row["r"], row["greedy_ratio"], row["local_search_ratio"]]
                for row in rows
            ],
            title="Appendix: partition-matroid bad instance",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 3) if isinstance(v, float) else v for k, v in row.items()}
        for row in rows
    ]

    ratios = [row["greedy_ratio"] for row in rows]
    # Greedy degrades without bound as r grows...
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[-1] > 5.0
    # ...while local search stays within its guarantee.
    assert all(row["local_search_ratio"] <= 2.0 + 1e-6 for row in rows)
