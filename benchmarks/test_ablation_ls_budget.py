"""Ablation: local-search improvement as a function of its time budget.

The paper fixes the LS budget at 10× the Greedy B running time and reports
gains of at most a few per-cent.  This ablation sweeps the budget multiple and
measures the relative improvement over the greedy seed, showing the gains
saturate quickly (most of the improvement arrives within the first few
multiples).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.greedy import greedy_diversify
from repro.core.local_search import refine_with_local_search
from repro.data.synthetic import make_synthetic_instance
from repro.experiments.reporting import format_table
from repro.utils.rng import derive_seed


def _sweep(n, p, trials, multiples, seed):
    rows = []
    for multiple in multiples:
        improvement = 0.0
        for trial in range(trials):
            instance = make_synthetic_instance(n, seed=derive_seed(seed, trial))
            objective = instance.objective
            greedy = greedy_diversify(objective, p)
            refined = refine_with_local_search(
                objective, greedy, p=p, time_budget_multiple=multiple
            )
            improvement += refined.objective_value / greedy.objective_value
        rows.append(
            {"budget_multiple": multiple, "LS_over_GreedyB": improvement / trials}
        )
    return rows


def test_ablation_local_search_budget(benchmark):
    rows = run_once(
        benchmark,
        _sweep,
        n=200,
        p=20,
        trials=3,
        multiples=(0.0, 1.0, 5.0, 10.0, 50.0),
        seed=88,
    )
    print()
    print(
        format_table(
            ["budget_multiple", "LS_over_GreedyB"],
            [[r["budget_multiple"], r["LS_over_GreedyB"]] for r in rows],
            title="Ablation: LS budget multiple vs relative improvement",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 5) for k, v in row.items()} for row in rows
    ]

    values = [row["LS_over_GreedyB"] for row in rows]
    # Monotone non-decreasing in the budget, never worse than the seed, and
    # the total gain stays in the "few per-cent" regime the paper reports.
    assert all(b >= a - 1e-6 for a, b in zip(values, values[1:]))
    assert values[0] >= 1.0 - 1e-9
    assert values[-1] <= 1.10
