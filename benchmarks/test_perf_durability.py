"""Performance guards for the durability tier.

Two contracts from the write-ahead-log subsystem:

* **Journal overhead ≤10% (fsync="interval").**  A durable sharded session
  consuming the same event stream as a plain one must stay within 10% of
  its throughput: journaling is one in-memory ``np.savez`` encode plus one
  buffered append per tick, with fsync amortized across the interval — it
  must never rival the repair work itself.

* **Recovery stays bounded for a 10⁴-tick journal at n=10k.**  Replay runs
  every journaled tick back through the normal apply path, so its cost is
  the apply cost of the stream — not the crash. The guard journals 10 000
  single-event ticks against a sharded n=10 000 session (fsync="off": the
  log content, not the sync policy, is what recovery sees), recovers the
  directory, and asserts both the wall-time bound and bit-identical state.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dynamic.events import EventBatchBuilder
from repro.dynamic.session import DynamicSession

from .conftest import run_once

# Overhead guard: the headline stream scale (n=100k, ~2500 mixed events per
# tick on two hot shards) — per-tick repair work has to dwarf the journal
# append, and the run must span several fsync intervals so the "interval"
# policy actually amortizes (a short run would price one raw fsync instead).
OVERHEAD_N, OVERHEAD_DIM, OVERHEAD_P = 100_000, 8, 10
OVERHEAD_SHARD_SIZE = 4096
OVERHEAD_TICKS, OVERHEAD_TICK_EVENTS = 12, 2500
MAX_WAL_OVERHEAD = 0.10

# Recovery guard: 10^4 one-event ticks at n=10k, small shards so every tick's
# replay re-solves exactly one cheap shard.
RECOVERY_N, RECOVERY_DIM, RECOVERY_P = 10_000, 4, 8
RECOVERY_SHARD_SIZE = 512
RECOVERY_TICKS = 10_000
MAX_RECOVERY_SECONDS = 60.0


def _stream_ticks(rng, n, shard_size, ticks, events_per_tick):
    """Deterministic mixed ticks clustered on two hot shards each."""
    batches = []
    num_shards = n // shard_size
    for _ in range(ticks):
        hot = rng.choice(num_shards, size=2, replace=False)
        builder = EventBatchBuilder()
        shards = rng.integers(0, 2, size=events_per_tick)
        offsets = rng.integers(0, shard_size, size=(events_per_tick, 2))
        kinds = rng.uniform(size=events_per_tick)
        values = rng.uniform(0.5, 2.0, size=events_per_tick)
        for i in range(events_per_tick):
            base = int(hot[shards[i]]) * shard_size
            element = min(base + int(offsets[i, 0]), n - 1)
            if kinds[i] < 0.85:
                builder.set_weight(element, float(values[i]))
            else:
                other = min(base + int(offsets[i, 1]), n - 1)
                if other != element:
                    builder.set_distance(element, other, float(values[i] + 0.5))
        batches.append(builder.build())
    return batches


def _apply_seconds(session, batches):
    started = time.perf_counter()
    for batch in batches:
        session.apply_events(batch)
    return time.perf_counter() - started


def test_wal_append_overhead(benchmark, tmp_path):
    """Durable (fsync="interval") stream within 10% of the plain stream."""
    rng = np.random.default_rng(51)
    points = rng.normal(size=(OVERHEAD_N, OVERHEAD_DIM))
    weights = rng.uniform(0.5, 2.0, OVERHEAD_N)
    batches = _stream_ticks(
        np.random.default_rng(53),
        OVERHEAD_N,
        OVERHEAD_SHARD_SIZE,
        OVERHEAD_TICKS,
        OVERHEAD_TICK_EVENTS,
    )

    plain = DynamicSession(
        weights, OVERHEAD_P, points=points, shard_size=OVERHEAD_SHARD_SIZE
    )
    durable = DynamicSession(
        weights,
        OVERHEAD_P,
        points=points,
        shard_size=OVERHEAD_SHARD_SIZE,
        durable_dir=str(tmp_path / "wal-overhead"),
        fsync="interval",
    )

    plain_seconds = _apply_seconds(plain, batches)

    def durable_stream():
        return _apply_seconds(durable, batches)

    durable_seconds = run_once(benchmark, durable_stream)
    durable.close()

    # identical streams through identical engines: the states must agree
    assert durable.solution == plain.solution
    assert durable.solution_value == plain.solution_value

    events = sum(batch.num_events for batch in batches)
    overhead = max(0.0, durable_seconds / max(plain_seconds, 1e-12) - 1.0)
    benchmark.extra_info["n"] = OVERHEAD_N
    benchmark.extra_info["ticks"] = OVERHEAD_TICKS
    benchmark.extra_info["events"] = events
    benchmark.extra_info["plain_events_per_sec"] = round(events / plain_seconds, 1)
    benchmark.extra_info["durable_events_per_sec"] = round(
        events / durable_seconds, 1
    )
    benchmark.extra_info["wal_overhead"] = round(overhead, 4)
    print(
        f"\nwal overhead n={OVERHEAD_N}: plain {plain_seconds:.3f}s, durable "
        f"{durable_seconds:.3f}s over {events} events "
        f"({overhead:+.1%} overhead, fsync=interval)"
    )
    assert overhead <= MAX_WAL_OVERHEAD, (
        f"journaling added {overhead:.1%} to the event stream "
        f"(budget {MAX_WAL_OVERHEAD:.0%})"
    )


def test_recovery_time_bounded(benchmark, tmp_path):
    """Recovering a 10^4-tick journal at n=10k stays under the wall bound."""
    rng = np.random.default_rng(61)
    points = rng.normal(size=(RECOVERY_N, RECOVERY_DIM))
    weights = rng.uniform(0.5, 2.0, RECOVERY_N)
    directory = str(tmp_path / "recovery")
    session = DynamicSession(
        weights,
        RECOVERY_P,
        points=points,
        shard_size=RECOVERY_SHARD_SIZE,
        durable_dir=directory,
        fsync="off",
    )

    event_rng = np.random.default_rng(63)
    elements = event_rng.integers(0, RECOVERY_N, size=RECOVERY_TICKS)
    values = event_rng.uniform(0.5, 2.0, size=RECOVERY_TICKS)
    journal_started = time.perf_counter()
    for element, value in zip(elements, values):
        session.apply_events(
            EventBatchBuilder().set_weight(int(element), float(value)).build()
        )
    journal_seconds = time.perf_counter() - journal_started
    reference_solution = session.solution
    reference_value = session.solution_value
    session.close()

    recovered = run_once(benchmark, DynamicSession.recover, directory)
    recovery_seconds = benchmark.stats.stats.min
    recovered.close()

    assert recovered.ticks == RECOVERY_TICKS
    assert recovered.solution == reference_solution
    assert recovered.solution_value == reference_value

    benchmark.extra_info["n"] = RECOVERY_N
    benchmark.extra_info["ticks"] = RECOVERY_TICKS
    benchmark.extra_info["journal_seconds"] = round(journal_seconds, 3)
    benchmark.extra_info["recovery_seconds"] = round(recovery_seconds, 3)
    benchmark.extra_info["recovered_ticks_per_sec"] = round(
        RECOVERY_TICKS / max(recovery_seconds, 1e-12), 1
    )
    print(
        f"\nrecovery n={RECOVERY_N}: {RECOVERY_TICKS} ticks journaled in "
        f"{journal_seconds:.2f}s, recovered bit-identically in "
        f"{recovery_seconds:.2f}s"
    )
    assert recovery_seconds <= MAX_RECOVERY_SECONDS, (
        f"recovery took {recovery_seconds:.1f}s "
        f"(budget {MAX_RECOVERY_SECONDS:.0f}s)"
    )
