"""Benchmark: reproduce Table 3 (improved Greedy A vs improved Greedy B, N = 50).

The improved variants fix the arbitrary choices (best final vertex for Greedy
A at odd p, best starting pair for Greedy B).  Paper reference: both factors
drop close to 1.0–1.06 and either algorithm can win a given cell, with Greedy
B still ahead overall.
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table3


def test_table3_improved_variants(benchmark):
    table = run_once(
        benchmark, table3, n=50, p_values=(3, 4, 5, 6, 7), trials=2, seed=2014
    )
    record_table(benchmark, table)

    for record in table.records:
        assert record["AF_GreedyA"] <= 1.5
        assert record["AF_GreedyB"] <= 1.5
        # Both stay within the theoretical guarantee.
        assert record["AF_GreedyB"] <= 2.0 + 1e-9
        assert record["AF_GreedyA"] <= 2.0 + 1e-9
