"""Ablation: single-swap vs 2-swap dynamic updates.

The paper's conclusion asks whether larger-cardinality swaps (or a
non-oblivious rule) can maintain a better ratio than 3 with few updates.
This bench runs the Section 7.3 mixed-perturbation experiment twice on the
same perturbation stream — once repairing with the oblivious single-swap rule
and once with the best swap of up to 2 elements — and compares the worst
exact approximation ratios observed.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.dynamic.update_rules import k_swap_update, oblivious_update
from repro.experiments.reporting import format_table
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix
from repro.data.synthetic import make_synthetic_instance
from repro.utils.rng import make_rng


def _simulate(n, p, tradeoff, steps, repeats, seed):
    """Return (worst ratio with 1-swap, worst ratio with ≤2-swap)."""
    worst_single = 1.0
    worst_double = 1.0
    for repeat in range(repeats):
        instance = make_synthetic_instance(n, tradeoff=tradeoff, seed=seed + repeat)
        weights = instance.weights.copy()
        distances = instance.distances
        rng = make_rng(seed + 1000 + repeat)

        def objective():
            return Objective(
                ModularFunction(weights),
                DistanceMatrix(distances, copy=False),
                tradeoff,
            )

        initial = set(greedy_diversify(objective(), p).selected)
        solution_single = set(initial)
        solution_double = set(initial)
        for _ in range(steps):
            if rng.uniform() < 0.5:
                element = int(rng.integers(0, n))
                weights[element] = rng.uniform(0.0, 1.0)
            else:
                u, v = map(int, rng.choice(n, size=2, replace=False))
                value = rng.uniform(1.0, 2.0)
                distances[u, v] = value
                distances[v, u] = value
            current = objective()
            solution_single = set(oblivious_update(current, solution_single).solution)
            solution_double = set(k_swap_update(current, solution_double, k=2).solution)
            optimum = exact_diversify(current, p).objective_value
            worst_single = max(worst_single, optimum / current.value(solution_single))
            worst_double = max(worst_double, optimum / current.value(solution_double))
    return worst_single, worst_double


def _sweep(tradeoffs, n, p, steps, repeats, seed):
    rows = []
    for tradeoff in tradeoffs:
        single, double = _simulate(n, p, tradeoff, steps, repeats, seed)
        rows.append(
            {
                "lambda": tradeoff,
                "worst_ratio_1swap": single,
                "worst_ratio_2swap": double,
            }
        )
    return rows


def test_ablation_kswap_dynamic_updates(benchmark):
    rows = run_once(
        benchmark,
        _sweep,
        tradeoffs=(0.2, 0.6, 1.0),
        n=12,
        p=4,
        steps=8,
        repeats=5,
        seed=314,
    )
    print()
    print(
        format_table(
            ["lambda", "worst_ratio_1swap", "worst_ratio_2swap"],
            [
                [r["lambda"], r["worst_ratio_1swap"], r["worst_ratio_2swap"]]
                for r in rows
            ],
            title="Ablation: single-swap vs 2-swap dynamic repair (worst OPT / value)",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 4) for k, v in row.items()} for row in rows
    ]

    for row in rows:
        # Both rules stay far below the provable bound of 3.
        assert row["worst_ratio_1swap"] <= 1.6
        assert row["worst_ratio_2swap"] <= 1.6
        # The larger neighbourhood is never (meaningfully) worse.
        assert row["worst_ratio_2swap"] <= row["worst_ratio_1swap"] + 0.05
