"""Benchmark: reproduce Table 1 (Greedy A vs Greedy B vs OPT, synthetic N = 50).

Paper reference values (N = 50, λ = 0.2, 5 trials): AF_GreedyB ≈ 1.02–1.03,
AF_GreedyA ≈ 1.05–1.13, and Greedy B beats Greedy A at every p.
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table1


def test_table1_synthetic_n50(benchmark):
    table = run_once(
        benchmark, table1, n=50, p_values=(3, 4, 5, 6, 7), trials=3, seed=2012
    )
    record_table(benchmark, table)

    for record in table.records:
        # Both greedies are far better than their worst-case factor of 2...
        assert record["AF_GreedyA"] <= 1.5
        assert record["AF_GreedyB"] <= 1.5
        # ...and within the provable bound.
        assert record["AF_GreedyB"] <= 2.0 + 1e-9
    # The headline observation: Greedy B is at least as good as Greedy A on
    # average across the sweep.
    mean_relative = sum(r["AF_B/A"] for r in table.records) / len(table.records)
    assert mean_relative >= 0.99
