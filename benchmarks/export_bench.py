"""Convert a pytest-benchmark JSON report into a compact ``BENCH_<sha>.json``.

CI runs the perf-guard benchmarks with ``--benchmark-json`` and then invokes
this script to distill the raw report into the trajectory artifact: one small
JSON per commit holding wall times and the headline guard numbers (speedup
ratios, parity) stashed in each benchmark's ``extra_info``.  The artifact is
uploaded per run, so the bench history can be reassembled from CI artifacts
instead of being thrown away with the job log.

Usage
-----
```
python benchmarks/export_bench.py raw.json BENCH_${GITHUB_SHA}.json --sha $GITHUB_SHA
```
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

#: extra_info keys that carry a guard headline worth surfacing at top level.
#: ``celf_fraction`` is the lazy-greedy evaluation ratio of the submodular
#: suite (fraction of candidates whose quality gain is re-evaluated after the
#: first greedy iteration — the CELF contract caps it at 0.25).
#: ``interrupted_solve_overhead`` is the fractional slowdown a generous
#: deadline adds to the greedy loop (capped at 0.05 by the deadline guard).
#: ``serve_qps`` / ``serve_p50_ms`` / ``serve_p99_ms`` are the serving-tier
#: load numbers (64 concurrent clients on an n=100k sharded corpus; the
#: guards demand ≥500 QPS and p99 ≤ 200 ms).
#: ``wal_overhead`` is the fractional slowdown write-ahead journaling
#: (fsync=interval) adds to the dynamic event stream (capped at 0.10);
#: ``recovery_seconds`` is the wall time to replay a 10⁴-tick journal at
#: n=10k back to bit-identical state.
#: ``obs_overhead`` is the fractional slowdown span tracing adds to the
#: n=100k sharded solve when *enabled* (capped at 0.05);
#: ``obs_overhead_disabled`` is the estimated fraction the no-op
#: instrumentation path costs when tracing is off (capped at 0.01).
_GUARD_KEYS = (
    "speedup",
    "parity",
    "celf_fraction",
    "interrupted_solve_overhead",
    "dynamic_events_per_sec",
    "dynamic_drift",
    "dynamic_tick_speedup",
    "serve_qps",
    "serve_p50_ms",
    "serve_p99_ms",
    "wal_overhead",
    "recovery_seconds",
    "obs_overhead",
    "obs_overhead_disabled",
)


def distill(report: dict, *, sha: Optional[str] = None) -> dict:
    """Reduce a pytest-benchmark report to the per-commit artifact payload."""
    benchmarks = []
    guards = {}
    obs = {}
    for bench in report.get("benchmarks", []):
        stats = bench.get("stats", {})
        extra = bench.get("extra_info", {})
        name = bench.get("name", "?")
        benchmarks.append(
            {
                "name": name,
                "min_seconds": stats.get("min"),
                "mean_seconds": stats.get("mean"),
                "rounds": stats.get("rounds"),
                "extra_info": extra,
            }
        )
        for key in _GUARD_KEYS:
            if key in extra:
                guards[f"{name}.{key}"] = extra[key]
        # Span-derived phase breakdowns (seconds per phase) surface in their
        # own section so the trajectory can chart where solve time goes.
        if isinstance(extra.get("obs"), dict):
            obs[name] = extra["obs"]
    return {
        "sha": sha,
        "machine": report.get("machine_info", {}).get("node"),
        "python": report.get("machine_info", {}).get("python_version"),
        "datetime": report.get("datetime"),
        "guards": guards,
        "obs": obs,
        "benchmarks": benchmarks,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("source", help="pytest-benchmark JSON report")
    parser.add_argument("target", help="output path (e.g. BENCH_<sha>.json)")
    parser.add_argument("--sha", default=None, help="commit SHA to embed")
    args = parser.parse_args(argv)

    with open(args.source, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    payload = distill(report, sha=args.sha)
    with open(args.target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"wrote {args.target}: {len(payload['benchmarks'])} benchmarks, "
        f"{len(payload['guards'])} guard numbers"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
