"""Ablation: approximation quality under a relaxed triangle inequality.

Section 8 of the paper discusses α-relaxed metrics (``d(x,y) + d(y,z) ≥
α·d(x,z)`` with α ≤ 1) and cites Sydow's 2/α-style guarantee for the
matching-based algorithm.  This bench generates distance structures with a
controlled relaxation parameter, measures the achieved α with
``repro.metrics.relaxed.relaxation_parameter``, and records the observed
approximation factors of Greedy B and Greedy A against the exact optimum as
the violation grows.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.baselines import gollapudi_sharma_greedy
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.experiments.reporting import format_table
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix
from repro.metrics.relaxed import relaxation_parameter
from repro.utils.rng import make_rng


def _relaxed_distance_matrix(n: int, stretch: float, seed: int) -> DistanceMatrix:
    """Random distances in [1, 1 + stretch]; α ≈ 2 / (1 + stretch) for stretch > 1."""
    rng = make_rng(seed)
    matrix = np.zeros((n, n))
    upper = np.triu_indices(n, k=1)
    matrix[upper] = rng.uniform(1.0, 1.0 + stretch, size=len(upper[0]))
    matrix = matrix + matrix.T
    return DistanceMatrix(matrix)


def _sweep(n, p, stretches, trials, seed):
    rows = []
    for stretch in stretches:
        alpha_total = 0.0
        af_greedy_b = 0.0
        af_greedy_a = 0.0
        for trial in range(trials):
            metric = _relaxed_distance_matrix(n, stretch, seed + 17 * trial)
            weights = ModularFunction(make_rng(seed + trial).uniform(0, 1, size=n))
            objective = Objective(weights, metric, tradeoff=0.2)
            alpha_total += min(relaxation_parameter(metric), 2.0)
            optimum = exact_diversify(objective, p, method="enumerate").objective_value
            af_greedy_b += optimum / greedy_diversify(objective, p).objective_value
            af_greedy_a += (
                optimum / gollapudi_sharma_greedy(objective, p).objective_value
            )
        rows.append(
            {
                "stretch": stretch,
                "alpha": alpha_total / trials,
                "AF_GreedyB": af_greedy_b / trials,
                "AF_GreedyA": af_greedy_a / trials,
            }
        )
    return rows


def test_ablation_relaxed_triangle_inequality(benchmark):
    rows = run_once(
        benchmark, _sweep, n=12, p=4, stretches=(1.0, 2.0, 4.0, 8.0), trials=3, seed=404
    )
    print()
    print(
        format_table(
            ["stretch", "alpha", "AF_GreedyB", "AF_GreedyA"],
            [
                [r["stretch"], r["alpha"], r["AF_GreedyB"], r["AF_GreedyA"]]
                for r in rows
            ],
            title="Ablation: approximation factor vs relaxed triangle inequality",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 4) for k, v in row.items()} for row in rows
    ]

    # stretch = 1 gives a true metric (α ≥ 1) and the Theorem 1 guarantee.
    assert rows[0]["alpha"] >= 1.0 - 1e-9
    assert rows[0]["AF_GreedyB"] <= 2.0 + 1e-9
    # α decreases as the stretch grows.
    alphas = [row["alpha"] for row in rows]
    assert all(b <= a + 1e-9 for a, b in zip(alphas, alphas[1:]))
    # Greedy B degrades gracefully: even at the strongest relaxation tested it
    # stays within the 2/α-style envelope.
    for row in rows:
        envelope = 2.0 / max(min(row["alpha"], 1.0), 1e-9)
        assert row["AF_GreedyB"] <= envelope + 0.25
