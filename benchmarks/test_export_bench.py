"""Tests for the ``BENCH_<sha>.json`` distiller used by the CI perf pipeline."""

from __future__ import annotations

import json

from . import export_bench


def _report() -> dict:
    return {
        "datetime": "2026-07-29T00:00:00",
        "machine_info": {"node": "ci-runner", "python_version": "3.12.0"},
        "benchmarks": [
            {
                "name": "test_swap_scan_speedup",
                "stats": {"min": 0.001, "mean": 0.002, "rounds": 20},
                "extra_info": {"speedup": 44.0, "n": 2000},
            },
            {
                "name": "test_sharded_coreset_parity_and_speedup",
                "stats": {"min": 0.1, "mean": 0.12, "rounds": 3},
                "extra_info": {"speedup": 12.0, "parity": 1.0},
            },
            {
                "name": "test_greedy_n2000_p50",
                "stats": {"min": 0.05, "mean": 0.06, "rounds": 1},
                "extra_info": {"objective_value": 123.4},
            },
            {
                "name": "test_greedy_facility_celf_speedup",
                "stats": {"min": 0.2, "mean": 0.21, "rounds": 3},
                "extra_info": {"speedup": 40.0, "celf_fraction": 0.07},
            },
        ],
    }


def test_distill_collects_guard_numbers():
    payload = export_bench.distill(_report(), sha="abc123")
    assert payload["sha"] == "abc123"
    assert payload["machine"] == "ci-runner"
    assert payload["guards"] == {
        "test_swap_scan_speedup.speedup": 44.0,
        "test_sharded_coreset_parity_and_speedup.speedup": 12.0,
        "test_sharded_coreset_parity_and_speedup.parity": 1.0,
        "test_greedy_facility_celf_speedup.speedup": 40.0,
        "test_greedy_facility_celf_speedup.celf_fraction": 0.07,
    }
    assert [b["name"] for b in payload["benchmarks"]] == [
        "test_swap_scan_speedup",
        "test_sharded_coreset_parity_and_speedup",
        "test_greedy_n2000_p50",
        "test_greedy_facility_celf_speedup",
    ]
    assert payload["benchmarks"][0]["min_seconds"] == 0.001


def test_distill_handles_empty_report():
    payload = export_bench.distill({})
    assert payload["benchmarks"] == []
    assert payload["guards"] == {}
    assert payload["obs"] == {}
    assert payload["sha"] is None


def test_main_round_trip(tmp_path):
    source = tmp_path / "raw.json"
    target = tmp_path / "BENCH_abc.json"
    source.write_text(json.dumps(_report()))
    assert export_bench.main([str(source), str(target), "--sha", "abc"]) == 0
    written = json.loads(target.read_text())
    assert written["sha"] == "abc"
    assert len(written["benchmarks"]) == 4
    assert written["guards"]["test_swap_scan_speedup.speedup"] == 44.0


def test_distill_collects_dynamic_guards():
    report = {
        "benchmarks": [
            {
                "name": "test_dynamic_events_per_sec",
                "stats": {"min": 1.0, "mean": 1.1, "rounds": 1},
                "extra_info": {
                    "dynamic_events_per_sec": 25000.0,
                    "dynamic_drift": 0.01,
                },
            },
            {
                "name": "test_dynamic_tick_speedup",
                "stats": {"min": 0.2, "mean": 0.2, "rounds": 1},
                "extra_info": {"dynamic_tick_speedup": 18.0},
            },
        ],
    }
    payload = export_bench.distill(report)
    assert payload["guards"] == {
        "test_dynamic_events_per_sec.dynamic_events_per_sec": 25000.0,
        "test_dynamic_events_per_sec.dynamic_drift": 0.01,
        "test_dynamic_tick_speedup.dynamic_tick_speedup": 18.0,
    }


def test_distill_collects_obs_section():
    timings = {"restrict": 0.01, "shard": 0.4, "final_solve": 0.02, "total": 0.5}
    report = {
        "benchmarks": [
            {
                "name": "test_tracing_overhead",
                "stats": {"min": 0.5, "mean": 0.5, "rounds": 1},
                "extra_info": {
                    "obs_overhead": 0.012,
                    "obs_overhead_disabled": 0.0003,
                    "obs": timings,
                },
            },
            {
                "name": "test_swap_scan_speedup",
                "stats": {"min": 0.001, "mean": 0.002, "rounds": 20},
                "extra_info": {"speedup": 44.0},
            },
        ],
    }
    payload = export_bench.distill(report)
    assert payload["guards"] == {
        "test_tracing_overhead.obs_overhead": 0.012,
        "test_tracing_overhead.obs_overhead_disabled": 0.0003,
        "test_swap_scan_speedup.speedup": 44.0,
    }
    # The span-derived phase breakdown surfaces in its own section, keyed by
    # benchmark, so trajectory tooling can chart where solve time goes.
    assert payload["obs"] == {"test_tracing_overhead": timings}
