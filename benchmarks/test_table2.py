"""Benchmark: reproduce Table 2 (Greedy A vs Greedy B vs LS with timings, N = 500).

Paper reference shape: Greedy B beats Greedy A by 1–5 % for every p, LS adds
at most a few per-cent on top of Greedy B, and Greedy B is substantially
faster than Greedy A (the gap narrowing as p grows).
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table2


def test_table2_synthetic_n500(benchmark):
    table = run_once(
        benchmark,
        table2,
        n=500,
        p_values=(5, 10, 15, 20, 25, 30, 40, 50, 60, 75),
        trials=2,
        seed=2013,
    )
    record_table(benchmark, table)

    relative = [record["AF_B/A"] for record in table.records]
    # Greedy B wins (or ties) on average, as in the paper.
    assert sum(relative) / len(relative) >= 0.995
    for record in table.records:
        # LS starts from Greedy B so it can never be worse.
        assert record["AF_LS/B"] >= 1.0 - 1e-9
        # Greedy B is the faster algorithm (vertex greedy vs edge greedy).
        assert record["Time_GreedyB_ms"] <= record["Time_GreedyA_ms"] * 1.5
