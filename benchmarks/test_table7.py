"""Benchmark: reproduce Table 7 (relative factors and timings averaged over queries).

Paper reference shape: the Greedy-B-over-Greedy-A advantage grows with p
(1.005 → ~1.15), LS adds at most ~0.3 %, and Greedy B is several times
faster than Greedy A.
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table7


def test_table7_letor_multi_query_all_docs(benchmark):
    table = run_once(
        benchmark,
        table7,
        num_queries=5,
        docs_per_query=370,
        p_values=(5, 15, 25, 40, 55, 75),
        seed=2018,
    )
    record_table(benchmark, table)

    for record in table.records:
        assert record["AF_B/A"] >= 0.99
        assert record["AF_LS/B"] >= 1.0 - 1e-9
        assert record["AF_LS/B"] <= 1.1
