"""Benchmark: reproduce Table 4 (Greedy A vs Greedy B vs OPT, LETOR-like top-50).

Paper reference shape: on the real-data (here LETOR-like) pool Greedy B's
advantage over Greedy A is more pronounced than on synthetic data, staying
between roughly 0 and 15 %, and Greedy B's factor stays very close to 1.
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table4


def test_table4_letor_top50(benchmark):
    table = run_once(benchmark, table4, top_k=50, p_values=(3, 4, 5, 6, 7), seed=2015)
    record_table(benchmark, table)

    for record in table.records:
        assert record["AF_GreedyB"] <= 2.0 + 1e-9
        assert record["AF_GreedyA"] <= 2.0 + 1e-9
        assert record["OPT"] >= record["GreedyB"] - 1e-9
    mean_relative = sum(r["AF_B/A"] for r in table.records) / len(table.records)
    assert mean_relative >= 0.99
