"""Ablation: the non-oblivious potential of Greedy B vs an oblivious greedy.

Greedy B maximizes φ'_u(S) = ½·f_u(S) + λ·d_u(S) rather than the true marginal
φ_u(S).  This ablation quantifies what the ½ factor buys: on workloads where
quality and dispersion pull in different directions the oblivious variant
over-commits to heavy elements early.  Both variants are compared against the
exact optimum on small instances and against each other at a larger size.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.experiments.reporting import format_table
from repro.utils.rng import derive_seed


def _sweep(n, p, trials, tradeoffs, seed):
    rows = []
    for tradeoff in tradeoffs:
        non_oblivious = 0.0
        oblivious = 0.0
        optimum = 0.0
        for trial in range(trials):
            instance = make_synthetic_instance(
                n, tradeoff=tradeoff, weight_high=3.0, seed=derive_seed(seed, trial)
            )
            objective = instance.objective
            non_oblivious += greedy_diversify(objective, p).objective_value
            oblivious += greedy_diversify(objective, p, oblivious=True).objective_value
            optimum += exact_diversify(objective, p).objective_value
        rows.append(
            {
                "lambda": tradeoff,
                "AF_non_oblivious": optimum / non_oblivious,
                "AF_oblivious": optimum / oblivious,
            }
        )
    return rows


def test_ablation_non_oblivious_potential(benchmark):
    rows = run_once(
        benchmark, _sweep, n=30, p=6, trials=4, tradeoffs=(0.05, 0.1, 0.2, 0.5), seed=77
    )
    print()
    print(
        format_table(
            ["lambda", "AF_non_oblivious", "AF_oblivious"],
            [[r["lambda"], r["AF_non_oblivious"], r["AF_oblivious"]] for r in rows],
            title="Ablation: Greedy B potential vs oblivious greedy (OPT / ALG)",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 4) for k, v in row.items()} for row in rows
    ]

    for row in rows:
        # Theorem 1 covers the non-oblivious variant only.
        assert row["AF_non_oblivious"] <= 2.0 + 1e-9
        # The oblivious variant is never dramatically better; report both.
        assert row["AF_oblivious"] >= 1.0 - 1e-9
