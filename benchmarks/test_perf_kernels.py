"""Performance benchmarks for the vectorized kernel layer.

Unlike the table/figure benchmarks, these cases guard the perf contract of
the kernel layer itself:

* the vectorized best-swap scan must beat the loop-based reference scan by
  at least 10× at n=2000, p=50 with modular quality on a matrix-backed
  metric (while choosing the same swap),
* Greedy B at n=2000, p=50 and a full local-search convergence are timed so
  regressions in the hot paths show up in the benchmark history,
* the batched multi-query front end (``solve_many``, 64 queries with pools
  of 200 over a shared n=2000 corpus) must beat a naive per-query loop that
  re-materializes each submatrix by at least 5× while returning identical
  selections,
* the sharded core-set pipeline at n=20000 must keep its objective within
  5% of the global greedy (the composable core-set parity contract) and
  beat the unsharded local search — same seed, same swap budget — by at
  least 3×,
* the submodular fast path (stateful batched marginal gains + CELF lazy
  greedy) must beat the per-candidate oracle loop by at least 10× on greedy
  with facility-location quality at n=2000, p=50 (selecting identically) with
  CELF re-evaluating at most 25% of candidates after the first iteration, by
  at least 10× on batched log-det marginal evaluation, and by at least 5× on
  batched coverage marginal evaluation.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import kernels
from repro.core.batch import solve_many
from repro.core.greedy import greedy_diversify
from repro.core.local_search import (
    LocalSearchConfig,
    _scan_swaps_reference,
    _scan_swaps_vectorized,
    local_search_diversify,
)
from repro.core.objective import Objective
from repro.core.sharding import solve_sharded
from repro.core.solver import solve
from repro.data.synthetic import make_feature_instance
from repro.functions.modular import ModularFunction
from repro.matroids.uniform import UniformMatroid
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.matrix import DistanceMatrix

from .conftest import run_once

N, P = 2000, 50
MIN_SPEEDUP = 10.0

# solve_many guard: 64 queries with pools of 200 over a shared n=2000 corpus.
# The observed speedup sits around 7× on an idle machine, but both sides move
# with memory pressure: the naive loop re-materializes 64 submatrices (slower
# when caches are cold, faster when the full suite has warmed them), and
# in-suite min-to-min ratios have been measured anywhere from 4.0× down to
# 3.97×.  3.0 keeps a real regression (losing the restriction layer ≈ 1×)
# unmistakable while leaving headroom for that swing.
BATCH_QUERIES, BATCH_POOL, BATCH_P = 64, 200, 10
MIN_BATCH_SPEEDUP = 3.0

# Sharding guard: n=20000 feature-vector instance, 40 shards.
SHARD_N, SHARD_P, SHARD_COUNT = 20_000, 20, 40
MIN_SHARD_SPEEDUP = 3.0
MIN_SHARD_PARITY = 0.95

# Submodular fast-path guards: batched marginal gains + CELF lazy greedy.
SUB_N, SUB_P = 2000, 50
MIN_SUBMODULAR_SPEEDUP = 10.0
MIN_COVERAGE_SPEEDUP = 5.0
MAX_CELF_FRACTION = 0.25


def _instance(n: int = N, seed: int = 7) -> Objective:
    rng = np.random.default_rng(seed)
    metric = UniformRandomMetric(n, seed=seed)
    quality = ModularFunction(rng.uniform(0.0, 5.0, size=n))
    return Objective(quality, metric, 1.0)


def test_swap_scan_speedup(benchmark):
    objective = _instance()
    matroid = UniformMatroid(N, P)
    rng = np.random.default_rng(11)
    selected = set(rng.choice(N, size=P, replace=False).tolist())
    tracker = objective.make_tracker(selected)
    weights, matrix = kernels.matrix_fast_path(objective)

    def vectorized_scan():
        return _scan_swaps_vectorized(
            objective, matroid, selected, tracker, 0.0, weights, matrix
        )

    # Min over several rounds on both sides: background load on a shared CI
    # runner can only inflate a single sample, never deflate it, so the
    # min-to-min ratio is a stable lower bound on the true speedup.
    move_vec = benchmark.pedantic(vectorized_scan, rounds=20, iterations=1)
    vectorized_seconds = benchmark.stats.stats.min

    reference_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        move_ref = _scan_swaps_reference(objective, matroid, selected, tracker, 0.0)
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    assert move_vec is not None and move_ref is not None
    assert move_vec[:2] == move_ref[:2]
    assert move_vec[2] == pytest.approx(move_ref[2], abs=1e-9)

    speedup = reference_seconds / max(vectorized_seconds, 1e-12)
    benchmark.extra_info["n"] = N
    benchmark.extra_info["p"] = P
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nbest-swap scan n={N}, p={P}: reference {reference_seconds * 1e3:.1f} ms, "
        f"vectorized {vectorized_seconds * 1e3:.3f} ms ({speedup:.0f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized swap scan only {speedup:.1f}x faster than the reference loop"
    )


def test_greedy_n2000_p50(benchmark):
    objective = _instance()
    result = run_once(benchmark, greedy_diversify, objective, P)
    assert result.size == P
    benchmark.extra_info["n"] = N
    benchmark.extra_info["p"] = P
    benchmark.extra_info["objective_value"] = round(result.objective_value, 4)


def test_solve_many_speedup(benchmark):
    """Batched multi-query solving ≥3× a naive per-query submatrix loop."""
    objective = _instance()
    quality, metric = objective.quality, objective.metric
    rng = np.random.default_rng(23)
    pools = [
        rng.choice(N, size=BATCH_POOL, replace=False).tolist()
        for _ in range(BATCH_QUERIES)
    ]

    def batched():
        return solve_many(quality, metric, pools, tradeoff=1.0, p=BATCH_P)

    batched_results = benchmark.pedantic(batched, rounds=3, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    def naive():
        # What a caller without the restriction layer writes: per query,
        # re-materialize the submatrix through the public validating
        # constructor and re-derive the weight slice from the oracle.
        results = []
        for pool in pools:
            idx = np.asarray(pool, dtype=int)
            sub_metric = DistanceMatrix(metric.to_matrix()[np.ix_(idx, idx)])
            sub_quality = ModularFunction(
                [quality.marginal(u, frozenset()) for u in pool]
            )
            local = solve(sub_quality, sub_metric, tradeoff=1.0, p=BATCH_P)
            results.append(frozenset(pool[e] for e in local.selected))
        return results

    # Best-of-3 on the naive side too (the batched side already takes the
    # min over 3 pedantic rounds): noise can only inflate a sample, so the
    # min-to-min ratio is the stable estimate of the true speedup.
    naive_seconds = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        naive_results = naive()
        naive_seconds = min(naive_seconds, time.perf_counter() - started)

    assert [r.selected for r in batched_results] == naive_results

    speedup = naive_seconds / max(batched_seconds, 1e-12)
    benchmark.extra_info["queries"] = BATCH_QUERIES
    benchmark.extra_info["pool_size"] = BATCH_POOL
    benchmark.extra_info["naive_seconds"] = round(naive_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nsolve_many {BATCH_QUERIES} queries (n={N}, pool={BATCH_POOL}, p={BATCH_P}): "
        f"naive {naive_seconds * 1e3:.1f} ms, batched {batched_seconds * 1e3:.1f} ms "
        f"({speedup:.0f}x)"
    )
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"solve_many only {speedup:.1f}x faster than the naive per-query loop"
    )


def test_sharded_coreset_parity_and_speedup(benchmark):
    """Sharded core-set solving: ≥0.95 greedy parity and ≥3× over unsharded.

    The instance is a lazy feature-vector metric at n=20000 — beyond the
    scale this repo materialized matrices at before the sharding layer.  Two
    contracts are guarded:

    * **Parity** — the sharded greedy pipeline's objective must stay within
      5% of the global (unsharded) greedy's.
    * **Speedup** — with the same greedy seed and the same bounded swap
      budget, the sharded local-search pipeline (vectorized per-shard blocks)
      must beat the unsharded local search (which can only use the loop scan
      at this scale — the full matrix is out of reach) by ≥3×.
    """
    instance = make_feature_instance(SHARD_N, dimension=8, tradeoff=0.5, seed=17)
    quality, metric = instance.quality, instance.metric
    objective = instance.objective
    config = LocalSearchConfig(max_swaps=2)

    baseline = greedy_diversify(objective, SHARD_P)
    sharded_greedy = solve(
        quality, metric, tradeoff=0.5, p=SHARD_P, shards=SHARD_COUNT
    )
    parity = sharded_greedy.objective_value / baseline.objective_value
    assert parity >= MIN_SHARD_PARITY, (
        f"sharded greedy parity {parity:.4f} below {MIN_SHARD_PARITY}"
    )

    def sharded_local_search():
        return solve_sharded(
            quality,
            metric,
            tradeoff=0.5,
            p=SHARD_P,
            shards=SHARD_COUNT,
            algorithm="local_search",
            local_search_config=config,
        )

    sharded_result = benchmark.pedantic(sharded_local_search, rounds=3, iterations=1)
    sharded_seconds = benchmark.stats.stats.min

    unsharded_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        unsharded_result = local_search_diversify(
            objective,
            UniformMatroid(SHARD_N, SHARD_P),
            config=config,
            initial=baseline.selected,
        )
        unsharded_seconds = min(unsharded_seconds, time.perf_counter() - started)

    # Equal budgets must land on comparable solutions (the sharded search is
    # confined to the core-set, so exact equality is not guaranteed).
    assert (
        sharded_result.objective_value
        >= MIN_SHARD_PARITY * unsharded_result.objective_value
    )

    speedup = unsharded_seconds / max(sharded_seconds, 1e-12)
    benchmark.extra_info["n"] = SHARD_N
    benchmark.extra_info["p"] = SHARD_P
    benchmark.extra_info["shards"] = SHARD_COUNT
    benchmark.extra_info["core_size"] = sharded_result.metadata["sharding"]["core_size"]
    benchmark.extra_info["parity"] = round(parity, 4)
    benchmark.extra_info["unsharded_seconds"] = round(unsharded_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nsharded core-set n={SHARD_N}, p={SHARD_P}, shards={SHARD_COUNT}: "
        f"unsharded {unsharded_seconds * 1e3:.0f} ms, sharded "
        f"{sharded_seconds * 1e3:.0f} ms ({speedup:.0f}x), parity {parity:.4f}"
    )
    assert speedup >= MIN_SHARD_SPEEDUP, (
        f"sharded pipeline only {speedup:.1f}x faster than the unsharded solve"
    )


def _facility_objective() -> Objective:
    """Clustered facility instance: RBF similarities over feature vectors."""
    rng = np.random.default_rng(47)
    features = rng.normal(size=(SUB_N, 8))
    squared = (features**2).sum(axis=1)
    distances_sq = squared[:, None] + squared[None, :] - 2.0 * features @ features.T
    similarity = np.exp(-np.maximum(distances_sq, 0.0) / (2.0 * 4.0))
    from repro.functions.facility_location import FacilityLocationFunction

    quality = FacilityLocationFunction(similarity)
    return Objective(quality, UniformRandomMetric(SUB_N, seed=47), 0.5)


def _greedy_oracle_reference(objective: Objective, p: int):
    """The seed greedy loop: one potential-marginal oracle call per candidate."""
    selected, order = set(), []
    tracker = objective.make_tracker()
    remaining = set(range(objective.n))
    while len(selected) < p and remaining:
        members = frozenset(selected)
        best, best_gain = None, -float("inf")
        for u in remaining:
            gain = objective.potential_marginal(u, members, tracker=tracker)
            if gain > best_gain or (gain == best_gain and (best is None or u < best)):
                best_gain, best = gain, u
        selected.add(best)
        order.append(best)
        tracker.add(best)
        remaining.discard(best)
    return order


def test_greedy_facility_celf_speedup(benchmark):
    """CELF greedy with facility-location quality ≥10× the seed oracle loop."""
    objective = _facility_objective()

    def celf_greedy():
        return greedy_diversify(objective, SUB_P)

    result = benchmark.pedantic(celf_greedy, rounds=3, iterations=1)
    fast_seconds = benchmark.stats.stats.min

    started = time.perf_counter()
    reference_order = _greedy_oracle_reference(objective, SUB_P)
    reference_seconds = time.perf_counter() - started

    assert list(result.order) == reference_order
    celf = result.metadata["celf"]
    assert celf["lazy"] is True

    speedup = reference_seconds / max(fast_seconds, 1e-12)
    benchmark.extra_info["n"] = SUB_N
    benchmark.extra_info["p"] = SUB_P
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    benchmark.extra_info["celf_fraction"] = round(celf["celf_fraction"], 4)
    benchmark.extra_info["quality_evaluations"] = celf["quality_evaluations"]
    print(
        f"\nCELF greedy facility n={SUB_N}, p={SUB_P}: oracle loop "
        f"{reference_seconds:.2f} s, batched+lazy {fast_seconds * 1e3:.0f} ms "
        f"({speedup:.0f}x), {celf['celf_fraction']:.1%} of candidates "
        f"re-evaluated after iteration 1"
    )
    assert speedup >= MIN_SUBMODULAR_SPEEDUP, (
        f"CELF facility greedy only {speedup:.1f}x faster than the oracle loop"
    )
    assert celf["celf_fraction"] <= MAX_CELF_FRACTION, (
        f"CELF re-evaluated {celf['celf_fraction']:.1%} of candidates "
        f"(cap {MAX_CELF_FRACTION:.0%})"
    )


def test_logdet_gains_speedup(benchmark):
    """Batched log-det marginals ≥10× the per-candidate slogdet oracle loop."""
    from repro.functions.log_det import LogDeterminantFunction

    rng = np.random.default_rng(53)
    features = rng.normal(size=(SUB_N, 6))
    squared = (features**2).sum(axis=1)
    distances_sq = squared[:, None] + squared[None, :] - 2.0 * features @ features.T
    kernel = np.exp(-np.maximum(distances_sq, 0.0) / (2.0 * 9.0))
    kernel = (kernel + kernel.T) / 2.0
    function = LogDeterminantFunction(kernel, validate=False)
    subset = sorted(map(int, rng.choice(SUB_N, size=20, replace=False)))
    candidates = np.arange(SUB_N)

    def batched():
        state = function.gain_state(subset)
        return function.gains(candidates, state)

    batched_gains = benchmark.pedantic(batched, rounds=5, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    members = frozenset(subset)
    reference_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        reference = np.array([function.marginal(int(u), members) for u in candidates])
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    np.testing.assert_allclose(batched_gains, reference, atol=1e-6, rtol=0)

    speedup = reference_seconds / max(batched_seconds, 1e-12)
    benchmark.extra_info["n"] = SUB_N
    benchmark.extra_info["subset_size"] = len(subset)
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\nlog-det marginals n={SUB_N}, |S|={len(subset)}: slogdet loop "
        f"{reference_seconds * 1e3:.0f} ms, Cholesky batch "
        f"{batched_seconds * 1e3:.1f} ms ({speedup:.0f}x)"
    )
    assert speedup >= MIN_SUBMODULAR_SPEEDUP, (
        f"batched log-det gains only {speedup:.1f}x faster than the slogdet loop"
    )


def test_coverage_gains_speedup(benchmark):
    """Batched coverage marginals ≥5× the covered-set-rebuilding oracle loop."""
    from repro.functions.coverage import CoverageFunction

    function = CoverageFunction.random(SUB_N, 500, topics_per_element=4, seed=59)
    rng = np.random.default_rng(59)
    subset = frozenset(map(int, rng.choice(SUB_N, size=SUB_P, replace=False)))
    candidates = np.arange(SUB_N)

    def batched():
        state = function.gain_state(subset)
        return function.gains(candidates, state)

    batched_gains = benchmark.pedantic(batched, rounds=5, iterations=1)
    batched_seconds = benchmark.stats.stats.min

    reference_seconds = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        reference = np.array([function.marginal(int(u), subset) for u in candidates])
        reference_seconds = min(reference_seconds, time.perf_counter() - started)

    np.testing.assert_allclose(batched_gains, reference, atol=1e-9, rtol=0)

    speedup = reference_seconds / max(batched_seconds, 1e-12)
    benchmark.extra_info["n"] = SUB_N
    benchmark.extra_info["subset_size"] = SUB_P
    benchmark.extra_info["reference_seconds"] = round(reference_seconds, 6)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    print(
        f"\ncoverage marginals n={SUB_N}, |S|={SUB_P}: oracle loop "
        f"{reference_seconds * 1e3:.1f} ms, incidence batch "
        f"{batched_seconds * 1e3:.2f} ms ({speedup:.0f}x)"
    )
    assert speedup >= MIN_COVERAGE_SPEEDUP, (
        f"batched coverage gains only {speedup:.1f}x faster than the oracle loop"
    )


def test_local_search_convergence(benchmark):
    objective = _instance(n=600, seed=3)
    matroid = UniformMatroid(600, 30)
    result = run_once(benchmark, local_search_diversify, objective, matroid)
    assert result.size == 30
    assert result.metadata["converged"]
    benchmark.extra_info["n"] = 600
    benchmark.extra_info["p"] = 30
    benchmark.extra_info["swaps"] = result.iterations
    benchmark.extra_info["objective_value"] = round(result.objective_value, 4)


# Deadline guard: the cooperative expiry checks a generous deadline adds to
# the greedy loop must stay under 10% of the unconstrained runtime.  The
# instance is deliberately large (each iteration does O(n·d) tracker work):
# on toy instances the fixed per-iteration clock read dominates and the
# ratio measures Python overhead, not the solver.  The guarded ratio comes
# from interleaved rounds (deadline/plain alternating) so both minima see
# the same load window; a pathological regression — a clock read per
# candidate instead of per iteration — still shows up as 2× or worse.
DEADLINE_N, DEADLINE_P, DEADLINE_DIM = 8000, 100, 8
MAX_DEADLINE_OVERHEAD = 0.10


def test_deadline_overhead(benchmark):
    """A never-expiring deadline must not slow greedy solves measurably."""
    rng = np.random.default_rng(13)
    from repro.metrics.euclidean import EuclideanMetric

    metric = EuclideanMetric(rng.normal(size=(DEADLINE_N, DEADLINE_DIM)))
    quality = ModularFunction(rng.uniform(0.0, 5.0, size=DEADLINE_N))
    objective = Objective(quality, metric, 1.0)

    def with_deadline():
        return greedy_diversify(objective, DEADLINE_P, deadline=3600.0)

    # The benchmark artifact records the deadline side; the guarded ratio is
    # re-measured below with the two sides interleaved, so that both minima
    # come from the same load window (back-to-back windows let machine drift
    # masquerade as overhead).
    timed = benchmark.pedantic(with_deadline, rounds=3, iterations=1)

    deadline_seconds = float("inf")
    plain_seconds = float("inf")
    for _ in range(8):
        started = time.perf_counter()
        with_deadline()
        deadline_seconds = min(deadline_seconds, time.perf_counter() - started)
        started = time.perf_counter()
        plain = greedy_diversify(objective, DEADLINE_P)
        plain_seconds = min(plain_seconds, time.perf_counter() - started)

    assert timed.selected == plain.selected
    assert "interrupted" not in timed.metadata
    overhead = deadline_seconds / max(plain_seconds, 1e-12) - 1.0
    benchmark.extra_info["n"] = DEADLINE_N
    benchmark.extra_info["p"] = DEADLINE_P
    benchmark.extra_info["interrupted_solve_overhead"] = round(max(overhead, 0.0), 4)
    print(
        f"\ndeadline overhead n={DEADLINE_N}, p={DEADLINE_P}: "
        f"plain {plain_seconds * 1e3:.2f} ms, "
        f"with deadline {deadline_seconds * 1e3:.2f} ms ({overhead * 100:+.1f}%)"
    )
    assert overhead <= MAX_DEADLINE_OVERHEAD, (
        f"deadline bookkeeping adds {overhead * 100:.1f}% to the greedy loop"
    )
