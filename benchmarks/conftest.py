"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures (or an
ablation) exactly once per run (``benchmark.pedantic`` with a single round —
these are experiment harnesses, not micro-benchmarks), prints the rendered
table so ``pytest benchmarks/ --benchmark-only -s`` reproduces the paper's
rows, and stores the headline numbers in ``benchmark.extra_info`` so they are
kept in the benchmark JSON.
"""

from __future__ import annotations

from typing import Callable


def run_once(benchmark, func: Callable, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def record_table(benchmark, table) -> None:
    """Print a reproduced table and stash its records in extra_info."""
    print()
    print(table.render())
    benchmark.extra_info["table"] = table.name
    benchmark.extra_info["records"] = [
        {key: (round(value, 4) if isinstance(value, float) else value)
         for key, value in record.items()}
        for record in table.records
    ]
