"""Ablation: objective composition as the trade-off λ sweeps.

The paper observes (Section 7.1) that as N grows the dispersion term
dominates the objective because it is supermodular — the number of pairs
grows quadratically in p.  This ablation quantifies the quality/dispersion
split of Greedy B's solution across λ and p, and checks the qualitative
statement: the dispersion share grows with both λ and p.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.greedy import greedy_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.experiments.reporting import format_table


def _sweep(n, p_values, tradeoffs, seed):
    rows = []
    instance_cache = {}
    for tradeoff in tradeoffs:
        for p in p_values:
            if tradeoff not in instance_cache:
                instance_cache[tradeoff] = make_synthetic_instance(
                    n, tradeoff=tradeoff, seed=seed
                )
            instance = instance_cache[tradeoff]
            result = greedy_diversify(instance.objective, p)
            dispersion_part = tradeoff * result.dispersion_value
            share = (
                dispersion_part / result.objective_value
                if result.objective_value
                else 0.0
            )
            rows.append(
                {
                    "lambda": tradeoff,
                    "p": p,
                    "quality": result.quality_value,
                    "weighted_dispersion": dispersion_part,
                    "dispersion_share": share,
                }
            )
    return rows


def test_ablation_lambda_composition(benchmark):
    rows = run_once(
        benchmark,
        _sweep,
        n=100,
        p_values=(5, 15, 30),
        tradeoffs=(0.05, 0.2, 1.0),
        seed=99,
    )
    print()
    print(
        format_table(
            ["lambda", "p", "quality", "weighted_dispersion", "dispersion_share"],
            [
                [
                    r["lambda"],
                    r["p"],
                    r["quality"],
                    r["weighted_dispersion"],
                    r["dispersion_share"],
                ]
                for r in rows
            ],
            title="Ablation: quality vs dispersion share of Greedy B's objective",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: round(v, 4) for k, v in row.items()} for row in rows
    ]

    # Dispersion share grows with p for each λ, and with λ for each p.
    by_lambda = {}
    for row in rows:
        by_lambda.setdefault(row["lambda"], []).append(
            (row["p"], row["dispersion_share"])
        )
    for shares in by_lambda.values():
        ordered = [share for _, share in sorted(shares)]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
    by_p = {}
    for row in rows:
        by_p.setdefault(row["p"], []).append((row["lambda"], row["dispersion_share"]))
    for shares in by_p.values():
        ordered = [share for _, share in sorted(shares)]
        assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
