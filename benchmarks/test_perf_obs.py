"""Performance guards for the observability layer.

Two contracts from the tracing/metrics subsystem:

* **Enabled tracing overhead ≤5%.**  Passing ``trace=Trace()`` into the
  n=100k sharded solve records a few dozen spans (restrict, per-shard
  solves, greedy phases, final solve) — bookkeeping that must stay in the
  noise next to the solve itself.  Guard key ``obs_overhead``.

* **Disabled instrumentation ≈0% (≤1%).**  With no trace attached every
  instrumented site runs ``maybe_span(None, ...)`` — a shared no-op handle
  — and a single ``enabled()`` check per metric.  The guard micro-times
  that no-op path, scales it by the span count an instrumented solve
  actually emits, and asserts the projected fraction of the untraced solve
  stays ≤1%.  Guard key ``obs_overhead_disabled``.

Both numbers are exported to ``BENCH_<sha>.json`` via ``extra_info`` and
ratcheted by ``compare_bench.py``; the traced run's per-phase breakdown
rides along under ``extra_info["obs"]``.
"""

from __future__ import annotations

import time

from repro.data.synthetic import make_feature_instance
from repro.obs.instrument import maybe_span
from repro.obs.trace import Trace

from .conftest import run_once

N, DIMENSION, P = 100_000, 8, 10
SHARDS, SHARD_WORKERS = 16, 2
REPEATS = 3
MAX_OBS_OVERHEAD = 0.05
MAX_OBS_OVERHEAD_DISABLED = 0.01
NULL_SPAN_CALLS = 100_000


def _solve_seconds(instance, trace=None):
    from repro import solve

    started = time.perf_counter()
    result = solve(
        instance.quality,
        instance.metric,
        tradeoff=instance.tradeoff,
        p=P,
        shards=SHARDS,
        shard_workers=SHARD_WORKERS,
        trace=trace,
    )
    return time.perf_counter() - started, result


def _null_span_seconds(calls: int) -> float:
    """Per-call cost of the no-op instrumentation path (trace is None)."""
    started = time.perf_counter()
    for _ in range(calls):
        with maybe_span(None, "noop", phase="bench"):
            pass
    return (time.perf_counter() - started) / calls


def test_tracing_overhead(benchmark):
    """Traced n=100k sharded solve within 5% of untraced; no-op path ≤1%."""
    instance = make_feature_instance(N, dimension=DIMENSION, seed=71)

    def best_of(trace_factory):
        best_seconds, best_result, best_trace = float("inf"), None, None
        for _ in range(REPEATS):
            trace = trace_factory()
            seconds, result = _solve_seconds(instance, trace=trace)
            if seconds < best_seconds:
                best_seconds, best_result, best_trace = seconds, result, trace
        return best_seconds, best_result, best_trace

    base_seconds, base_result, _ = best_of(lambda: None)

    def traced_runs():
        return best_of(Trace)

    traced_seconds, traced_result, trace = run_once(benchmark, traced_runs)

    # Tracing is observability, not behaviour: selections must be identical.
    assert traced_result.selected == base_result.selected
    assert traced_result.objective_value == base_result.objective_value

    span_count = len(trace.spans())
    assert span_count >= SHARDS, "expected at least one span per shard"
    timings = traced_result.metadata["timings"]
    assert "total" in timings and "shard" in timings

    overhead = max(0.0, traced_seconds / max(base_seconds, 1e-12) - 1.0)

    # Project the disabled cost: per-call no-op price x the number of spans
    # an instrumented solve emits, as a fraction of the untraced solve.
    null_per_call = _null_span_seconds(NULL_SPAN_CALLS)
    disabled = (null_per_call * span_count) / max(base_seconds, 1e-12)

    benchmark.extra_info["n"] = N
    benchmark.extra_info["shards"] = SHARDS
    benchmark.extra_info["span_count"] = span_count
    benchmark.extra_info["base_seconds"] = round(base_seconds, 4)
    benchmark.extra_info["traced_seconds"] = round(traced_seconds, 4)
    benchmark.extra_info["obs_overhead"] = round(overhead, 4)
    benchmark.extra_info["obs_overhead_disabled"] = round(disabled, 6)
    benchmark.extra_info["obs"] = {
        name: round(seconds, 6) for name, seconds in timings.items()
    }
    print(
        f"\nobs overhead n={N}: untraced {base_seconds:.3f}s, traced "
        f"{traced_seconds:.3f}s ({overhead:+.1%}, {span_count} spans); "
        f"no-op path {null_per_call * 1e9:.0f} ns/call "
        f"-> {disabled:.4%} disabled overhead"
    )
    assert overhead <= MAX_OBS_OVERHEAD, (
        f"enabled tracing added {overhead:.1%} to the sharded solve "
        f"(budget {MAX_OBS_OVERHEAD:.0%})"
    )
    assert disabled <= MAX_OBS_OVERHEAD_DISABLED, (
        f"disabled instrumentation projects to {disabled:.2%} "
        f"(budget {MAX_OBS_OVERHEAD_DISABLED:.0%})"
    )
