"""Performance guards for the batched dynamic event-stream tier.

Two throughput contracts from the dynamic-engine refactor:

* **Batched tick ≥10× the per-event path (n=10 000, dense).**  Applying a
  tick of mixed weight/distance events through ``apply_events`` — one
  vectorized instance mutation plus one repair pass — must beat replaying
  the same stream one event at a time (each paying its own full repair
  scan, the legacy cost model; the certificate is disabled so neither side
  can skip scans).  Per-event equivalence of the two paths is asserted
  separately by ``tests/test_dynamic_events.py``; this file only guards the
  speed.

* **≥10⁴ sustained events/sec at n=100 000 (sharded), parity ≥0.95.**  A
  point-backed :class:`~repro.dynamic.session.ShardedDynamicEngine` consumes
  mixed ticks (weight sets, distance overrides, inserts, deletes) clustered
  on a couple of hot shards per tick — the locality a real update stream
  has, and what shard-local repair exploits: a tick re-solves only the
  shards it dirtied.  After the stream, the maintained objective must stay
  within 5% of a full sharded re-solve (``resolve_full``), guarding
  incremental drift.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dynamic.engine import DynamicDiversifier
from repro.dynamic.events import EventBatchBuilder
from repro.dynamic.session import ShardedDynamicEngine

from .conftest import run_once

# Dense tick guard: n=10k, one 1024-event tick vs a 96-event per-event sample
# (the per-event side is linear in the event count by construction, so a
# sample prices it; the measured gap is ~3 orders of magnitude).
DENSE_N, DENSE_P = 10_000, 20
TICK_EVENTS, LEGACY_SAMPLE = 1024, 96
MIN_TICK_SPEEDUP = 10.0

# Sharded stream guard: n=100k points, 12 ticks x ~2500 mixed events on 2
# hot shards each.
STREAM_N, STREAM_DIM, STREAM_P = 100_000, 8, 10
STREAM_SHARD_SIZE = 4096
STREAM_TICKS, STREAM_TICK_EVENTS = 12, 2500
MIN_EVENTS_PER_SEC = 10_000.0
MIN_DYNAMIC_PARITY = 0.95


def _mixed_events(rng: np.random.Generator, n: int, count: int):
    """A stream of (kind, *payload) tuples: 50/50 weight and distance sets."""
    events = []
    while len(events) < count:
        if rng.uniform() < 0.5:
            events.append(("w", int(rng.integers(n)), float(rng.uniform(0.0, 5.0))))
        else:
            u, v = map(int, rng.choice(n, size=2, replace=False))
            events.append(("d", u, v, float(rng.uniform(1.0, 2.0))))
    return events


def _add_event(builder: EventBatchBuilder, event) -> None:
    if event[0] == "w":
        builder.set_weight(event[1], event[2])
    else:
        builder.set_distance(event[1], event[2], event[3])


def test_dynamic_tick_speedup(benchmark):
    """One batched 1024-event tick ≥10× the same stream applied per event."""
    rng = np.random.default_rng(31)
    weights = rng.uniform(0.0, 5.0, DENSE_N)
    matrix = rng.uniform(1.0, 2.0, (DENSE_N, DENSE_N))
    matrix = np.triu(matrix, 1)
    matrix = matrix + matrix.T  # d in [1,2]: a metric, no validation pass needed
    engine = DynamicDiversifier(weights, matrix, DENSE_P, use_certificate=False)

    stream = _mixed_events(
        np.random.default_rng(37), DENSE_N, LEGACY_SAMPLE + TICK_EVENTS
    )
    legacy_stream, tick_stream = stream[:LEGACY_SAMPLE], stream[LEGACY_SAMPLE:]

    started = time.perf_counter()
    for event in legacy_stream:
        single = EventBatchBuilder()
        _add_event(single, event)
        engine.apply_events(single.build())
    legacy_per_event = (time.perf_counter() - started) / len(legacy_stream)

    builder = EventBatchBuilder()
    for event in tick_stream:
        _add_event(builder, event)
    batch = builder.build()

    outcome = run_once(benchmark, engine.apply_events, batch)
    batched_seconds = benchmark.stats.stats.min
    batched_per_event = batched_seconds / batch.num_events

    assert len(outcome.solution) == DENSE_P
    speedup = legacy_per_event / max(batched_per_event, 1e-12)
    benchmark.extra_info["n"] = DENSE_N
    benchmark.extra_info["p"] = DENSE_P
    benchmark.extra_info["tick_events"] = batch.num_events
    benchmark.extra_info["legacy_events_per_sec"] = round(1.0 / legacy_per_event, 1)
    benchmark.extra_info["batched_events_per_sec"] = round(
        1.0 / max(batched_per_event, 1e-12), 1
    )
    benchmark.extra_info["dynamic_tick_speedup"] = round(speedup, 1)
    print(
        f"\ndynamic tick n={DENSE_N}, p={DENSE_P}: per-event "
        f"{1.0 / legacy_per_event:.0f} ev/s, batched tick of {batch.num_events} "
        f"{1.0 / batched_per_event:.0f} ev/s ({speedup:.0f}x)"
    )
    assert speedup >= MIN_TICK_SPEEDUP, (
        f"batched tick only {speedup:.1f}x faster than the per-event path"
    )


def _build_tick(
    rng: np.random.Generator,
    engine: ShardedDynamicEngine,
    previous_inserts,
) -> EventBatchBuilder:
    """~2500 mixed events clustered on two hot shards, plus 2 inserts and
    deletes of the previous tick's inserts (so the stream exercises slot
    reuse without ever touching a retired slot)."""
    n0 = STREAM_N  # original slots; retired slots only ever come from inserts
    hot = rng.choice(STREAM_N // STREAM_SHARD_SIZE, size=2, replace=False)
    builder = EventBatchBuilder()
    budget = STREAM_TICK_EVENTS - 2 - len(previous_inserts)
    shards = rng.integers(0, 2, size=budget)
    offsets = rng.integers(0, STREAM_SHARD_SIZE, size=(budget, 2))
    kinds = rng.uniform(size=budget)
    weight_values = rng.uniform(0.5, 2.0, size=budget)
    distance_values = rng.uniform(0.5, 3.0, size=budget)
    for i in range(budget):
        base = int(hot[shards[i]]) * STREAM_SHARD_SIZE
        element = min(base + int(offsets[i, 0]), n0 - 1)
        if kinds[i] < 0.85:
            builder.set_weight(element, float(weight_values[i]))
        else:
            other = min(base + int(offsets[i, 1]), n0 - 1)
            if other != element:
                builder.set_distance(element, other, float(distance_values[i]))
    for _ in range(2):
        builder.insert(float(rng.uniform(0.5, 2.0)), point=rng.normal(size=STREAM_DIM))
    for element in previous_inserts:
        builder.delete(element)
    return builder


def test_dynamic_events_per_sec(benchmark):
    """Sustained ≥10⁴ events/sec at n=100k with ≥0.95 full re-solve parity."""
    rng = np.random.default_rng(41)
    points = rng.normal(size=(STREAM_N, STREAM_DIM))
    weights = rng.uniform(0.5, 2.0, STREAM_N)
    engine = ShardedDynamicEngine(
        points, weights, STREAM_P, shard_size=STREAM_SHARD_SIZE
    )

    # Batch construction is Python-side setup; only apply_events is the
    # engine's contract, so the guard uses the accumulated apply time while
    # the benchmark clock records the whole stream.
    state = {"apply_seconds": 0.0, "events": 0, "inserted": ()}

    def stream():
        event_rng = np.random.default_rng(43)
        for _ in range(STREAM_TICKS):
            batch = _build_tick(event_rng, engine, state["inserted"]).build()
            started = time.perf_counter()
            outcome = engine.apply_events(batch)
            state["apply_seconds"] += time.perf_counter() - started
            state["events"] += outcome.metadata["num_events"]
            state["inserted"] = outcome.metadata.get("inserted", ())
        return engine.solution_value

    run_once(benchmark, stream)
    events_per_sec = state["events"] / max(state["apply_seconds"], 1e-12)

    full = engine.resolve_full(adopt=False)
    parity = engine.solution_value / full.objective_value
    drift = max(0.0, 1.0 - parity)

    benchmark.extra_info["n"] = STREAM_N
    benchmark.extra_info["p"] = STREAM_P
    benchmark.extra_info["shards"] = engine.num_shards
    benchmark.extra_info["ticks"] = STREAM_TICKS
    benchmark.extra_info["events"] = state["events"]
    benchmark.extra_info["dynamic_events_per_sec"] = round(events_per_sec, 1)
    benchmark.extra_info["dynamic_drift"] = round(drift, 4)
    print(
        f"\ndynamic stream n={STREAM_N}, shards={engine.num_shards}: "
        f"{state['events']} events in {state['apply_seconds']:.2f}s "
        f"({events_per_sec:.0f} ev/s), parity {parity:.4f}"
    )
    assert events_per_sec >= MIN_EVENTS_PER_SEC, (
        f"dynamic stream sustained only {events_per_sec:.0f} events/sec"
    )
    assert parity >= MIN_DYNAMIC_PARITY, (
        f"incremental solution drifted to {parity:.4f} of the full re-solve"
    )
