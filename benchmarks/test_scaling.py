"""Micro-benchmarks: scaling of the core algorithms with the universe size.

These complement the table reproductions with conventional pytest-benchmark
timings (multiple rounds) of the two greedy algorithms and the incremental
distance tracker, backing the complexity discussion after Theorem 1
(Greedy B is O(np) thanks to the marginal-distance bookkeeping, Greedy A
iterates over edges).

``test_scaling_sharded_200k`` is the huge-universe contract: the sharded
core-set pipeline must complete at n=200000 on a metric that *refuses* to
produce the global matrix, proving no solve path materializes O(n²) state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import gollapudi_sharma_greedy
from repro.core.greedy import greedy_diversify
from repro.core.solver import solve
from repro.data.synthetic import make_feature_instance
from repro.data.synthetic import make_synthetic_instance
from repro.metrics.aggregates import MarginalDistanceTracker
from repro.metrics.euclidean import EuclideanMetric


@pytest.fixture(scope="module")
def instance_300():
    return make_synthetic_instance(300, seed=31)


def test_scaling_greedy_b(benchmark, instance_300):
    objective = instance_300.objective
    result = benchmark(lambda: greedy_diversify(objective, 30))
    assert result.size == 30


def test_scaling_greedy_a(benchmark, instance_300):
    objective = instance_300.objective
    result = benchmark(lambda: gollapudi_sharma_greedy(objective, 30))
    assert result.size == 30


class _NoGlobalMatrixMetric(EuclideanMetric):
    """A Euclidean metric that refuses to materialize the global matrix.

    At n=200000 the full matrix would be 320 GB; any code path that asks for
    it is a bug, so it raises instead of allocating.
    """

    def to_matrix(self):
        raise AssertionError("solve path materialized the global O(n²) matrix")

    def restrict(self, elements):
        # The default restriction is fine (shard-sized), but keep the guard
        # on the *global* universe: only pools smaller than n may pass.
        idx = np.asarray(list(elements), dtype=int)
        if idx.size >= self.n:
            raise AssertionError("solve path materialized the global O(n²) matrix")
        return super().restrict(idx)


def test_scaling_sharded_200k(benchmark):
    """Sharded core-set solve at n=200000 without any O(n²) materialization."""
    instance = make_feature_instance(200_000, dimension=4, tradeoff=0.2, seed=5)
    metric = _NoGlobalMatrixMetric(instance.metric.points)
    quality = instance.quality

    def run():
        return solve(
            quality, metric, tradeoff=0.2, p=10, shards=100, algorithm="greedy"
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.size == 10
    assert result.metadata["sharding"]["shards"] == 100
    benchmark.extra_info["n"] = 200_000
    benchmark.extra_info["p"] = 10
    benchmark.extra_info["shards"] = 100
    benchmark.extra_info["core_size"] = result.metadata["sharding"]["core_size"]
    benchmark.extra_info["objective_value"] = round(result.objective_value, 4)


def test_scaling_tracker_updates(benchmark, instance_300):
    metric = instance_300.metric

    def run():
        tracker = MarginalDistanceTracker(metric)
        for element in range(0, 300, 10):
            tracker.add(element)
        for element in range(0, 300, 10):
            tracker.remove(element)
        return tracker

    tracker = benchmark(run)
    assert len(tracker) == 0
