"""Micro-benchmarks: scaling of the core algorithms with the universe size.

These complement the table reproductions with conventional pytest-benchmark
timings (multiple rounds) of the two greedy algorithms and the incremental
distance tracker, backing the complexity discussion after Theorem 1
(Greedy B is O(np) thanks to the marginal-distance bookkeeping, Greedy A
iterates over edges).
"""

from __future__ import annotations

import pytest

from repro.core.baselines import gollapudi_sharma_greedy
from repro.core.greedy import greedy_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.metrics.aggregates import MarginalDistanceTracker


@pytest.fixture(scope="module")
def instance_300():
    return make_synthetic_instance(300, seed=31)


def test_scaling_greedy_b(benchmark, instance_300):
    objective = instance_300.objective
    result = benchmark(lambda: greedy_diversify(objective, 30))
    assert result.size == 30


def test_scaling_greedy_a(benchmark, instance_300):
    objective = instance_300.objective
    result = benchmark(lambda: gollapudi_sharma_greedy(objective, 30))
    assert result.size == 30


def test_scaling_tracker_updates(benchmark, instance_300):
    metric = instance_300.metric

    def run():
        tracker = MarginalDistanceTracker(metric)
        for element in range(0, 300, 10):
            tracker.add(element)
        for element in range(0, 300, 10):
            tracker.remove(element)
        return tracker

    tracker = benchmark(run)
    assert len(tracker) == 0
