"""Ablation: genuinely submodular quality, where the Greedy A reduction does not apply.

The paper's Theorem 1 extends the 2-approximation to monotone submodular
quality functions, a case the Gollapudi–Sharma reduction cannot handle (no
per-element weights exist).  This bench runs Greedy B, the matroid local
search and MMR on coverage- and facility-location-quality instances and
compares them to the exact optimum.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.local_search import local_search_diversify
from repro.core.mmr import mmr_select
from repro.core.objective import Objective
from repro.experiments.reporting import format_table
from repro.functions.coverage import CoverageFunction
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.saturated import SaturatedCoverageFunction
from repro.matroids.uniform import UniformMatroid
from repro.metrics.discrete import UniformRandomMetric
from repro.utils.rng import make_rng


def _make_objectives(n, seed):
    rng = make_rng(seed)
    metric = UniformRandomMetric(n, seed=seed)
    coverage = CoverageFunction.random(n, num_topics=n, topics_per_element=3, seed=seed)
    facility = FacilityLocationFunction(rng.uniform(0.0, 1.0, size=(n, n)))
    saturated = SaturatedCoverageFunction.from_features(
        rng.uniform(0.1, 1.0, size=(n, 6)), saturation=0.3
    )
    return {
        "coverage": Objective(coverage, metric, 0.2),
        "facility_location": Objective(facility, metric, 0.2),
        "saturated_coverage": Objective(saturated, metric, 0.2),
    }


def _sweep(n, p, seed):
    rows = []
    for name, objective in _make_objectives(n, seed).items():
        optimum = exact_diversify(objective, p).objective_value
        greedy = greedy_diversify(objective, p).objective_value
        local = local_search_diversify(objective, UniformMatroid(n, p)).objective_value
        mmr = mmr_select(objective, p, theta=0.5).objective_value
        rows.append(
            {
                "quality": name,
                "AF_GreedyB": optimum / greedy,
                "AF_LocalSearch": optimum / local,
                "AF_MMR": optimum / mmr,
            }
        )
    return rows


def test_ablation_submodular_quality(benchmark):
    rows = run_once(benchmark, _sweep, n=22, p=6, seed=123)
    print()
    print(
        format_table(
            ["quality", "AF_GreedyB", "AF_LocalSearch", "AF_MMR"],
            [
                [r["quality"], r["AF_GreedyB"], r["AF_LocalSearch"], r["AF_MMR"]]
                for r in rows
            ],
            title="Ablation: submodular quality functions (OPT / ALG)",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in row.items()}
        for row in rows
    ]

    for row in rows:
        # Theorem 1 / Theorem 2 guarantees hold.
        assert row["AF_GreedyB"] <= 2.0 + 1e-9
        assert row["AF_LocalSearch"] <= 2.0 + 1e-9
        # The principled algorithms are at least as good as the MMR heuristic
        # up to a small tolerance.
        assert min(row["AF_GreedyB"], row["AF_LocalSearch"]) <= row["AF_MMR"] + 0.05
