"""Performance guards for the serving tier.

One load contract from the serving refactor:

* **≥500 sustained QPS with p99 ≤ 200 ms at 64 concurrent clients
  (n=100 000, sharded corpus).**  A lazy point-backed corpus is prepared
  once with a sharding config (so full-universe queries would run the
  core-set pipeline and pool restrictions stay O(k·d)); 64 client
  coroutines each submit 8 pool-restricted queries (pools of 256, p=10,
  half drawn from a shared hot-pool set so the restriction LRU cache is
  exercised) against an async :class:`~repro.serve.server.Server` that
  micro-batches them into solve windows.  The guard keys exported to the
  CI trajectory are ``serve_qps``, ``serve_p50_ms`` and ``serve_p99_ms``.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.data.synthetic import make_feature_instance
from repro.serve.corpus import PreparedCorpus
from repro.serve.server import Server

from .conftest import run_once

SERVE_N, SERVE_DIM = 100_000, 8
SERVE_SHARD_SIZE = 4096
SERVE_CLIENTS, SERVE_QUERIES_PER_CLIENT = 64, 8
SERVE_POOL_SIZE, SERVE_P = 256, 10
SERVE_HOT_POOLS = 16
SERVE_MAX_BATCH, SERVE_MAX_WAIT_S = 32, 0.002

MIN_SERVE_QPS = 500.0
MAX_SERVE_P99_MS = 200.0


def _client_pools(rng: np.random.Generator):
    """Per-client query pools: even queries hit a shared hot-pool set (LRU
    cache territory), odd queries are unique pools."""
    hot = [
        rng.choice(SERVE_N, size=SERVE_POOL_SIZE, replace=False).tolist()
        for _ in range(SERVE_HOT_POOLS)
    ]
    pools = []
    for _ in range(SERVE_CLIENTS):
        per_client = []
        for q in range(SERVE_QUERIES_PER_CLIENT):
            if q % 2 == 0:
                per_client.append(hot[int(rng.integers(SERVE_HOT_POOLS))])
            else:
                per_client.append(
                    rng.choice(SERVE_N, size=SERVE_POOL_SIZE, replace=False).tolist()
                )
        pools.append(per_client)
    return pools


def test_serve_load(benchmark):
    """64 concurrent clients sustain ≥500 QPS with p99 ≤ 200 ms (n=100k)."""
    rng = np.random.default_rng(53)
    instance = make_feature_instance(SERVE_N, dimension=SERVE_DIM, seed=53)
    corpus = PreparedCorpus(
        instance.quality,
        instance.metric,
        tradeoff=instance.tradeoff,
        shard_size=SERVE_SHARD_SIZE,
    )
    assert not corpus.materialized and corpus.sharded
    pools = _client_pools(rng)

    async def load() -> dict:
        async with Server(
            corpus, max_batch_size=SERVE_MAX_BATCH, max_wait_s=SERVE_MAX_WAIT_S
        ) as server:

            async def client(per_client) -> None:
                for pool in per_client:
                    result = await server.submit(pool, p=SERVE_P)
                    assert len(result.selected) == SERVE_P
                    assert "candidates" in result.metadata

            await asyncio.gather(*(client(per_client) for per_client in pools))
            return server.stats.snapshot()

    stats = run_once(benchmark, lambda: asyncio.run(load()))

    total = SERVE_CLIENTS * SERVE_QUERIES_PER_CLIENT
    assert stats["completed"] == total
    cache = corpus.cache_info()
    qps, p50_ms, p99_ms = stats["qps"], stats["p50_ms"], stats["p99_ms"]

    benchmark.extra_info["n"] = SERVE_N
    benchmark.extra_info["p"] = SERVE_P
    benchmark.extra_info["clients"] = SERVE_CLIENTS
    benchmark.extra_info["queries"] = total
    benchmark.extra_info["pool_size"] = SERVE_POOL_SIZE
    benchmark.extra_info["windows"] = int(stats["windows"])
    benchmark.extra_info["mean_window_size"] = round(stats["mean_window_size"], 2)
    benchmark.extra_info["cache_hits"] = cache["hits"]
    benchmark.extra_info["serve_qps"] = round(qps, 1)
    benchmark.extra_info["serve_p50_ms"] = round(p50_ms, 2)
    benchmark.extra_info["serve_p99_ms"] = round(p99_ms, 2)
    print(
        f"\nserve load n={SERVE_N} (sharded), {SERVE_CLIENTS} clients x "
        f"{SERVE_QUERIES_PER_CLIENT} queries, pools of {SERVE_POOL_SIZE}, "
        f"p={SERVE_P}: {qps:.0f} QPS over {int(stats['windows'])} windows "
        f"(mean {stats['mean_window_size']:.1f}/window), p50 {p50_ms:.1f} ms, "
        f"p99 {p99_ms:.1f} ms, {cache['hits']} cache hits"
    )
    assert qps >= MIN_SERVE_QPS, f"serving sustained only {qps:.0f} QPS"
    assert p99_ms <= MAX_SERVE_P99_MS, f"serving p99 latency {p99_ms:.1f} ms"
