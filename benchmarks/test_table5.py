"""Benchmark: reproduce Table 5 (Greedy A vs Greedy B vs LS, LETOR-like top-370).

Paper reference shape: Greedy B's advantage over Greedy A grows with p (up to
~15 % before levelling off around 12 %), the LS improvement over Greedy B is
tiny (≤ 0.2 %), and Greedy B remains the faster algorithm.
"""

from __future__ import annotations

from benchmarks.conftest import record_table, run_once
from repro.experiments.tables import table5


def test_table5_letor_top370(benchmark):
    table = run_once(
        benchmark,
        table5,
        top_k=370,
        p_values=(5, 10, 15, 20, 30, 40, 50, 60, 75),
        seed=2016,
    )
    record_table(benchmark, table)

    for record in table.records:
        assert record["AF_B/A"] >= 0.99  # Greedy B never loses meaningfully
        assert record["AF_LS/B"] >= 1.0 - 1e-9
    # LS gains stay small, as in the paper.
    assert max(record["AF_LS/B"] for record in table.records) <= 1.1
