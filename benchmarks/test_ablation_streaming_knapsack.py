"""Ablation benches for the two extension algorithms.

* **Streaming vs offline** — how much objective value the one-pass streaming
  diversifier gives up relative to the offline Greedy B and the optimum,
  and how many swaps it performs (the quantity Minack et al. optimize).
* **Knapsack greedy vs exact** — the empirical approximation factor of the
  cost-benefit greedy (with and without partial enumeration) on random
  budgets, addressing the paper's open question experimentally.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.core.greedy import greedy_diversify
from repro.core.knapsack import exact_knapsack_diversify, knapsack_greedy
from repro.core.streaming import streaming_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.experiments.reporting import format_table
from repro.utils.rng import derive_seed, make_rng


def _streaming_sweep(n, p, trials, seed):
    rows = []
    for trial in range(trials):
        instance = make_synthetic_instance(n, seed=derive_seed(seed, trial))
        objective = instance.objective
        offline = greedy_diversify(objective, p).objective_value
        order = [
            int(x) for x in make_rng(derive_seed(seed, 100 + trial)).permutation(n)
        ]
        online = streaming_diversify(objective, p, order)
        rows.append(
            {
                "trial": trial,
                "offline_greedy": offline,
                "streaming": online.objective_value,
                "streaming_over_offline": online.objective_value / offline,
                "swaps": online.metadata["swaps"],
            }
        )
    return rows


def test_ablation_streaming_vs_offline(benchmark):
    rows = run_once(benchmark, _streaming_sweep, n=200, p=15, trials=4, seed=55)
    print()
    print(
        format_table(
            ["trial", "offline_greedy", "streaming", "streaming_over_offline", "swaps"],
            [
                [
                    r["trial"],
                    r["offline_greedy"],
                    r["streaming"],
                    r["streaming_over_offline"],
                    r["swaps"],
                ]
                for r in rows
            ],
            title="Ablation: one-pass streaming vs offline Greedy B (N=200, p=15)",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in row.items()}
        for row in rows
    ]
    for row in rows:
        # The one-pass solution stays within a modest factor of offline greedy.
        assert row["streaming_over_offline"] >= 0.85
        # ...without an excessive number of swaps.
        assert row["swaps"] <= 200


def _knapsack_sweep(n, trials, seed):
    rows = []
    for trial in range(trials):
        instance = make_synthetic_instance(n, seed=derive_seed(seed, trial))
        objective = instance.objective
        rng = make_rng(derive_seed(seed, 200 + trial))
        costs = rng.uniform(0.5, 2.0, size=n)
        budget = float(np.sum(np.sort(costs)[:4]))  # roughly a 4-element budget
        plain = knapsack_greedy(objective, costs, budget)
        enumerated = knapsack_greedy(
            objective, costs, budget, partial_enumeration_size=2
        )
        optimum = exact_knapsack_diversify(objective, costs, budget)
        rows.append(
            {
                "trial": trial,
                "AF_plain": optimum.objective_value / max(plain.objective_value, 1e-12),
                "AF_enum2": optimum.objective_value
                / max(enumerated.objective_value, 1e-12),
            }
        )
    return rows


def test_ablation_knapsack_greedy_factor(benchmark):
    rows = run_once(benchmark, _knapsack_sweep, n=14, trials=4, seed=66)
    print()
    print(
        format_table(
            ["trial", "AF_plain", "AF_enum2"],
            [[r["trial"], r["AF_plain"], r["AF_enum2"]] for r in rows],
            title="Ablation: knapsack greedy vs exact optimum (OPT / ALG)",
        )
    )
    benchmark.extra_info["rows"] = [
        {k: (round(v, 4) if isinstance(v, float) else v) for k, v in row.items()}
        for row in rows
    ]
    for row in rows:
        # Empirically well within factor 2; partial enumeration never hurts.
        assert row["AF_plain"] <= 2.0 + 1e-9
        assert row["AF_enum2"] <= row["AF_plain"] + 1e-9
