"""Benchmark: reproduce Figure 1 (approximation ratio under dynamic updates).

Paper reference shape: for all three perturbation environments (V / E / M)
the worst ratio maintained by a single oblivious update per perturbation is
well below the provable 3 (the paper observes ≈ 1.11 at worst), and the
curves decrease towards 1 for λ ≳ 0.6.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.dynamic_fig import figure1


def test_figure1_dynamic_update_ratio(benchmark):
    result = run_once(
        benchmark,
        figure1,
        n=15,
        p=5,
        tradeoffs=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        steps=10,
        repeats=15,
        seed=2019,
    )
    print()
    print(result.render())
    benchmark.extra_info["curves"] = {
        name: {str(k): round(v, 4) for k, v in curve.items()}
        for name, curve in result.curves.items()
    }

    worst = result.worst_overall()
    # Far below the provable bound of 3 (the paper observes about 1.11).
    assert worst <= 1.5
    for curve in result.curves.values():
        # Ratios at large λ are no worse than (slightly above) the small-λ ones:
        # the dispersion term dominates and the update rule tracks it closely.
        high_lambda = max(curve[k] for k in (0.8, 1.0))
        low_lambda = max(curve[k] for k in (0.1, 0.2))
        assert high_lambda <= low_lambda + 0.05
