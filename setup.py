"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file only exists so
environments without the ``wheel`` package (no PEP 517 build isolation, e.g.
offline machines) can still run ``pip install -e . --no-use-pep517``.
"""

from setuptools import setup

setup()
