"""Tests for set-distance aggregates and the incremental marginal tracker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics.aggregates import (
    MarginalDistanceTracker,
    marginal_distance,
    set_cross_distance,
    set_distance,
)
from repro.metrics.discrete import UniformRandomMetric


class TestSetDistance:
    def test_small_example(self, small_matrix):
        assert set_distance(small_matrix, [0, 1, 2]) == pytest.approx(1.0 + 2.0 + 1.2)

    def test_empty_and_singleton(self, small_matrix):
        assert set_distance(small_matrix, []) == 0.0
        assert set_distance(small_matrix, [2]) == 0.0

    def test_duplicates_ignored(self, small_matrix):
        assert set_distance(small_matrix, [0, 1, 1]) == pytest.approx(1.0)

    def test_cross_distance(self, small_matrix):
        value = set_cross_distance(small_matrix, [0, 1], [2, 3])
        expected = 2.0 + 1.5 + 1.2 + 1.8
        assert value == pytest.approx(expected)

    def test_cross_distance_requires_disjoint(self, small_matrix):
        with pytest.raises(InvalidParameterError):
            set_cross_distance(small_matrix, [0, 1], [1, 2])

    def test_marginal_distance(self, small_matrix):
        assert marginal_distance(small_matrix, 0, [1, 2]) == pytest.approx(3.0)
        assert marginal_distance(small_matrix, 0, [0, 1]) == pytest.approx(1.0)

    def test_decomposition_identity(self, small_matrix):
        # d(A ∪ C) = d(A) + d(C) + d(A, C), equation (4) of the paper.
        a, c = [0, 1], [2, 3]
        total = set_distance(small_matrix, a + c)
        assert total == pytest.approx(
            set_distance(small_matrix, a)
            + set_distance(small_matrix, c)
            + set_cross_distance(small_matrix, a, c)
        )


class TestMarginalDistanceTracker:
    def test_add_updates_marginals(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix)
        assert tracker.marginal(1) == 0.0
        tracker.add(0)
        assert tracker.marginal(1) == pytest.approx(1.0)
        tracker.add(2)
        assert tracker.marginal(1) == pytest.approx(2.2)
        assert tracker.internal_dispersion == pytest.approx(2.0)

    def test_remove_restores_state(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix, initial=[0, 1, 2])
        before = tracker.marginals()
        tracker.add(3)
        tracker.remove(3)
        assert np.allclose(tracker.marginals(), before)
        assert tracker.members == frozenset({0, 1, 2})

    def test_swap_equals_remove_add(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix, initial=[0, 1])
        tracker.swap(incoming=3, outgoing=1)
        assert tracker.members == frozenset({0, 3})
        assert tracker.internal_dispersion == pytest.approx(small_matrix.distance(0, 3))

    def test_dispersion_matches_set_distance(self):
        metric = UniformRandomMetric(12, seed=7)
        tracker = MarginalDistanceTracker(metric)
        members = []
        for element in [3, 7, 1, 9, 0]:
            tracker.add(element)
            members.append(element)
            assert tracker.internal_dispersion == pytest.approx(
                set_distance(metric, members)
            )

    def test_marginal_matches_direct_computation(self):
        metric = UniformRandomMetric(10, seed=11)
        tracker = MarginalDistanceTracker(metric, initial=[2, 5, 8])
        for u in range(10):
            if u in (2, 5, 8):
                continue
            assert tracker.marginal(u) == pytest.approx(
                marginal_distance(metric, u, [2, 5, 8])
            )

    def test_double_add_rejected(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix, initial=[0])
        with pytest.raises(InvalidParameterError):
            tracker.add(0)

    def test_remove_missing_rejected(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix)
        with pytest.raises(InvalidParameterError):
            tracker.remove(1)

    def test_rebuild(self, small_matrix):
        tracker = MarginalDistanceTracker(small_matrix, initial=[0, 1])
        tracker.rebuild([2, 3])
        assert tracker.members == frozenset({2, 3})
        assert tracker.internal_dispersion == pytest.approx(1.0)
        assert len(tracker) == 2
        assert 2 in tracker and 0 not in tracker
