"""Property tests for the stateful batched marginal-gain protocol.

For every built-in family (and the generic fallback), batched
``gains(candidates, gain_state(S))`` must equal the looped ``marginal(u, S)``
to 1e-9 on random subsets — including candidates already inside ``S`` (whose
gain is 0 by definition) — and ``push`` must keep a state equivalent to a
freshly built one.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.functions import (
    CoverageFunction,
    FacilityLocationFunction,
    GainState,
    LogDeterminantFunction,
    MixtureFunction,
    ModularFunction,
    SaturatedCoverageFunction,
    ScaledFunction,
    SetFunction,
    ZeroFunction,
)
from repro.functions.restricted import RestrictedSetFunction
from repro.functions.weakly_submodular import DispersionFunction
from repro.metrics.matrix import DistanceMatrix

N = 36
TOLERANCE = 1e-9


class _OracleQuality(SetFunction):
    """Value-only oracle: exercises the generic protocol fallback."""

    def __init__(self, weights: np.ndarray) -> None:
        self._weights = np.asarray(weights, dtype=float)

    @property
    def n(self) -> int:
        return self._weights.size

    def value(self, subset: Iterable[int]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        return float(np.sqrt(self._weights[idx].sum()))


def _similarity(rng: np.random.Generator, n: int = N) -> np.ndarray:
    matrix = rng.uniform(0.0, 1.0, size=(n, n))
    return (matrix + matrix.T) / 2.0


def _distance_matrix(rng: np.random.Generator, n: int = N) -> DistanceMatrix:
    matrix = 0.5 + rng.uniform(0.0, 0.5, size=(n, n))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    return DistanceMatrix(matrix)


def _functions():
    rng = np.random.default_rng(17)
    similarity = _similarity(rng)
    features = rng.normal(size=(N, 4))
    facility = FacilityLocationFunction(similarity)
    coverage = CoverageFunction.random(N, 24, topics_per_element=3, seed=5)
    log_det = LogDeterminantFunction.from_features(features, bandwidth=1.5)
    cases = [
        ("modular", ModularFunction(rng.uniform(0.0, 5.0, size=N))),
        ("zero", ZeroFunction(N)),
        ("facility", facility),
        ("coverage", coverage),
        ("log_det", log_det),
        ("saturated", SaturatedCoverageFunction(similarity, saturation=0.3)),
        ("mixture", MixtureFunction([facility, coverage], [0.7, 1.3])),
        ("scaled", ScaledFunction(log_det, 2.5)),
        ("restricted", RestrictedSetFunction(facility, list(range(4, 32)))),
        ("dispersion", DispersionFunction(_distance_matrix(rng))),
        ("oracle", _OracleQuality(rng.uniform(0.5, 2.0, size=N))),
    ]
    return cases


FUNCTION_CASES = _functions()


@pytest.fixture(params=[case[0] for case in FUNCTION_CASES])
def function(request):
    return dict(FUNCTION_CASES)[request.param]


def _random_subset(rng: np.random.Generator, n: int, size: int) -> frozenset:
    return frozenset(map(int, rng.choice(n, size=size, replace=False)))


class TestBatchedGainsEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_gains_match_looped_marginal(self, function, seed):
        rng = np.random.default_rng(100 + seed)
        n = function.n
        for size in (0, 1, min(6, n - 1)):
            subset = _random_subset(rng, n, size)
            state = function.gain_state(subset)
            # Mix outside candidates with members (whose gain must be 0).
            candidates = np.unique(
                np.concatenate(
                    [
                        rng.choice(n, size=min(12, n), replace=False),
                        np.fromiter(subset, dtype=int, count=len(subset)),
                    ]
                ).astype(int)
            )
            batched = function.gains(candidates, state)
            looped = np.array(
                [function.marginal(int(u), subset) for u in candidates]
            )
            np.testing.assert_allclose(batched, looped, atol=TOLERANCE, rtol=0)

    def test_full_universe_state(self, function):
        n = function.n
        state = function.gain_state(range(n))
        gains = function.gains(np.arange(n), state)
        np.testing.assert_allclose(gains, np.zeros(n), atol=TOLERANCE, rtol=0)

    def test_empty_candidate_batch(self, function):
        state = function.gain_state({0, 1})
        assert function.gains(np.zeros(0, dtype=int), state).shape == (0,)

    @pytest.mark.parametrize("seed", range(3))
    def test_push_matches_fresh_state(self, function, seed):
        rng = np.random.default_rng(200 + seed)
        n = function.n
        subset = set(_random_subset(rng, n, min(4, n - 3)))
        state = function.gain_state(subset)
        outside = [u for u in range(n) if u not in subset]
        for element in outside[:3]:
            function.push(state, int(element))
            subset.add(int(element))
        candidates = np.arange(n)
        incremental = function.gains(candidates, state)
        rebuilt = function.gains(candidates, function.gain_state(subset))
        np.testing.assert_allclose(incremental, rebuilt, atol=TOLERANCE, rtol=0)
        looped = np.array(
            [function.marginal(int(u), frozenset(subset)) for u in candidates]
        )
        np.testing.assert_allclose(incremental, looped, atol=TOLERANCE, rtol=0)

    def test_push_duplicate_raises(self, function):
        state = function.gain_state({1, 2})
        with pytest.raises(InvalidParameterError):
            function.push(state, 1)
        # The failed push must not have corrupted the state.
        gains = function.gains(np.array([1, 2]), state)
        np.testing.assert_allclose(gains, np.zeros(2), atol=TOLERANCE, rtol=0)


class TestGainStateBasics:
    def test_generic_state_tracks_members(self):
        state = GainState({3, 5})
        assert state.members == {3, 5}
        assert sorted(state.member_indices().tolist()) == [3, 5]

    def test_mask_members_small_and_large_batches(self):
        state = GainState(range(10))
        small = np.arange(4)
        out = state.mask_members(small, np.ones(4))
        np.testing.assert_array_equal(out, np.zeros(4))
        large = np.arange(30)
        out = state.mask_members(large, np.ones(30))
        np.testing.assert_array_equal(out[:10], np.zeros(10))
        np.testing.assert_array_equal(out[10:], np.ones(20))

    def test_coverage_accepts_unorderable_topic_ids(self):
        # Topic ids are arbitrary hashables; mixed types must not break the
        # dense re-indexing behind the batched-gains path.
        function = CoverageFunction([{"sports", 3}, {3}], {"sports": 2.0})
        assert function.value({0}) == 3.0
        assert function.marginal(0, frozenset({1})) == 2.0
        state = function.gain_state({1})
        np.testing.assert_allclose(
            function.gains(np.array([0, 1]), state), [2.0, 0.0]
        )

    def test_coverage_incidence_cap_falls_back(self, monkeypatch):
        # Force the no-incidence path (the cap is applied at construction,
        # keeping gains a pure read) and check it still matches marginal.
        monkeypatch.setattr("repro.functions.coverage._INCIDENCE_LIMIT", 0)
        coverage = CoverageFunction.random(20, 12, seed=3)
        assert coverage._incidence is None
        state = coverage.gain_state({1, 2, 3})
        batched = coverage.gains(np.arange(20), state)
        looped = np.array(
            [coverage.marginal(u, frozenset({1, 2, 3})) for u in range(20)]
        )
        np.testing.assert_allclose(batched, looped, atol=TOLERANCE, rtol=0)


class TestLogDetValidation:
    def test_indefinite_kernel_rejected(self):
        kernel = np.array([[1.0, 2.0], [2.0, 1.0]])  # eigenvalues 3, -1
        with pytest.raises(InvalidParameterError):
            LogDeterminantFunction(kernel)

    def test_validate_false_skips_psd_check(self):
        kernel = np.array([[1.0, 2.0], [2.0, 1.0]])
        function = LogDeterminantFunction(kernel, validate=False)
        assert function.n == 2

    def test_near_psd_tolerated(self):
        # Slightly negative eigenvalue within the -1e-6 tolerance.
        kernel = np.diag([1.0, 1.0, -5e-7])
        function = LogDeterminantFunction(kernel)
        assert function.n == 3

    def test_empty_kernel(self):
        function = LogDeterminantFunction(np.zeros((0, 0)))
        assert function.n == 0


class TestVerificationUsesBatchedGains:
    def test_checker_routes_through_gains(self):
        """The submodularity checker calls gains batches, not marginal loops."""
        from repro.functions.verification import is_monotone, is_submodular

        calls = {"gains": 0, "marginal": 0}

        class _Instrumented(ModularFunction):
            def gains(self, candidates, state):
                calls["gains"] += 1
                return super().gains(candidates, state)

            def marginal(self, element, subset):
                calls["marginal"] += 1
                return super().marginal(element, subset)

        function = _Instrumented(np.linspace(0.1, 1.0, 6))
        assert is_monotone(function)
        assert is_submodular(function)
        assert calls["gains"] > 0
        assert calls["marginal"] == 0
