"""Tests for the solve() facade."""

from __future__ import annotations

import pytest

from repro.core.solver import ALGORITHMS, solve
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError, SolverError
from repro.functions.coverage import CoverageFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.discrete import UniformRandomMetric


@pytest.fixture
def instance():
    return make_synthetic_instance(15, seed=21)


class TestDispatch:
    def test_auto_cardinality_uses_greedy(self, instance):
        result = solve(instance.quality, instance.metric, tradeoff=0.2, p=4)
        assert result.algorithm.startswith("greedy_b")
        assert result.size == 4

    def test_auto_matroid_uses_local_search(self, instance):
        matroid = PartitionMatroid([i % 3 for i in range(15)], {0: 1, 1: 1, 2: 1})
        result = solve(
            instance.quality, instance.metric, tradeoff=0.2, matroid=matroid
        )
        assert result.algorithm == "local_search"
        assert matroid.is_independent(result.selected)

    @pytest.mark.parametrize(
        "algorithm",
        [
            "greedy",
            "greedy_best_pair",
            "greedy_a",
            "greedy_a_improved",
            "matching",
            "mmr",
            "exact",
            "local_search",
        ],
    )
    def test_all_cardinality_algorithms_run(self, instance, algorithm):
        result = solve(
            instance.quality, instance.metric, tradeoff=0.2, p=3, algorithm=algorithm
        )
        assert result.size == 3

    def test_exact_under_matroid(self, instance):
        matroid = PartitionMatroid(
            [i % 5 for i in range(15)], {j: 1 for j in range(5)}
        )
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=0.2,
            matroid=matroid,
            algorithm="exact",
        )
        assert result.algorithm == "exact"

    def test_every_listed_algorithm_is_dispatchable(self, instance):
        for algorithm in ALGORITHMS:
            if algorithm == "auto":
                continue
            # greedy_a variants require modular quality, which this instance has.
            result = solve(
                instance.quality,
                instance.metric,
                tradeoff=0.2,
                p=3,
                algorithm=algorithm,
            )
            assert result.size == 3


class TestValidation:
    def test_unknown_algorithm(self, instance):
        with pytest.raises(InvalidParameterError):
            solve(
                instance.quality, instance.metric, tradeoff=0.2, p=3, algorithm="magic"
            )

    def test_exactly_one_constraint(self, instance):
        with pytest.raises(InvalidParameterError):
            solve(instance.quality, instance.metric, tradeoff=0.2)
        matroid = PartitionMatroid([0] * 15, {0: 3})
        with pytest.raises(InvalidParameterError):
            solve(instance.quality, instance.metric, tradeoff=0.2, p=3, matroid=matroid)

    def test_matroid_with_candidates_restricts_both(self, instance):
        matroid = PartitionMatroid([i % 3 for i in range(15)], {0: 1, 1: 1, 2: 1})
        candidates = [0, 1, 2, 3, 4, 5]
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=0.2,
            matroid=matroid,
            candidates=candidates,
        )
        assert result.selected <= set(candidates)
        assert matroid.is_independent(result.selected)
        assert result.metadata["candidates"] == tuple(candidates)

    def test_local_search_honors_candidates(self, instance):
        # Regression: this used to silently ignore the pool (the solver built
        # a full-universe UniformMatroid and dropped `candidates`), returning
        # elements outside [0..4].
        candidates = [0, 1, 2, 3, 4]
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=0.2,
            p=3,
            algorithm="local_search",
            candidates=candidates,
        )
        assert result.selected <= set(candidates)
        assert result.size == 3

    def test_matroid_universe_mismatch_rejected(self, instance):
        # A pool that is valid for both universes must not mask the mismatch.
        matroid = PartitionMatroid([0] * 20, {0: 3})
        with pytest.raises(InvalidParameterError):
            solve(instance.quality, instance.metric, tradeoff=0.2, matroid=matroid)
        with pytest.raises(InvalidParameterError):
            solve(
                instance.quality,
                instance.metric,
                tradeoff=0.2,
                matroid=matroid,
                candidates=[0, 1, 2],
            )

    def test_cardinality_only_algorithm_with_matroid_rejected(self, instance):
        matroid = PartitionMatroid([0] * 15, {0: 3})
        with pytest.raises(SolverError):
            solve(
                instance.quality,
                instance.metric,
                tradeoff=0.2,
                matroid=matroid,
                algorithm="greedy_a",
            )

    def test_greedy_a_requires_modular_quality(self):
        metric = UniformRandomMetric(8, seed=0)
        coverage = CoverageFunction.random(8, 5, seed=0)
        with pytest.raises(SolverError):
            solve(coverage, metric, tradeoff=0.2, p=3, algorithm="greedy_a")

    def test_submodular_quality_with_default_greedy_works(self):
        metric = UniformRandomMetric(8, seed=0)
        coverage = CoverageFunction.random(8, 5, seed=0)
        result = solve(coverage, metric, tradeoff=0.2, p=3)
        assert result.size == 3
