"""Tests for the sharded core-set solver (repro.core.sharding)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import solve_many
from repro.core.local_search import LocalSearchConfig
from repro.core.sharding import shard_pool, solve_sharded
from repro.core.solver import solve
from repro.data.synthetic import make_feature_instance, make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.matroids.uniform import UniformMatroid
from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanMetric


class OracleMetric(Metric):
    """Matrix distances served only through the pairwise oracle interface."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._backing = np.asarray(matrix, dtype=float)

    @property
    def n(self) -> int:
        return self._backing.shape[0]

    def distance(self, u, v) -> float:
        return float(self._backing[u, v])


@pytest.fixture
def feature_instance():
    return make_feature_instance(120, dimension=3, tradeoff=0.5, seed=3)


@pytest.fixture
def matrix_instance():
    return make_synthetic_instance(90, seed=21)


# ----------------------------------------------------------------------
# Pool partitioning
# ----------------------------------------------------------------------
class TestShardPool:
    def test_partitions_whole_pool(self):
        parts = shard_pool(np.arange(10), shards=3)
        assert [part.tolist() for part in parts] == [
            [0, 1, 2, 3],
            [4, 5, 6],
            [7, 8, 9],
        ]

    def test_shard_size_drives_count(self):
        parts = shard_pool(np.arange(10), shard_size=4)
        assert len(parts) == 3
        assert np.concatenate(parts).tolist() == list(range(10))

    def test_more_shards_than_elements(self):
        parts = shard_pool(np.arange(4), shards=9)
        assert len(parts) == 4
        assert all(part.size == 1 for part in parts)

    def test_empty_pool(self):
        assert shard_pool(np.zeros(0, dtype=int), shards=5) == []
        assert shard_pool(np.zeros(0, dtype=int), shard_size=5) == []

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            shard_pool(np.arange(5))
        with pytest.raises(InvalidParameterError):
            shard_pool(np.arange(5), shards=0)
        with pytest.raises(InvalidParameterError):
            shard_pool(np.arange(5), shard_size=0)


# ----------------------------------------------------------------------
# Shard-count edge cases
# ----------------------------------------------------------------------
class TestShardCountEdges:
    def test_one_shard_is_plain_solve(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        plain = solve(quality, metric, tradeoff=0.5, p=6)
        sharded = solve(quality, metric, tradeoff=0.5, p=6, shards=1)
        assert sharded.selected == plain.selected
        assert sharded.order == plain.order
        assert sharded.objective_value == plain.objective_value
        assert sharded.metadata["sharding"]["degenerate"] is True

    def test_one_shard_matrix_backed(self, matrix_instance):
        quality, metric = matrix_instance.quality, matrix_instance.metric
        plain = solve(quality, metric, tradeoff=0.2, p=5)
        sharded = solve(quality, metric, tradeoff=0.2, p=5, shards=1)
        assert sharded.selected == plain.selected
        assert sharded.objective_value == plain.objective_value

    def test_shards_exceeding_n(self, feature_instance):
        # Every shard collapses to a singleton, the core-set is the whole
        # universe, and the final stage becomes the plain solve.
        quality, metric = feature_instance.quality, feature_instance.metric
        plain = solve(quality, metric, tradeoff=0.5, p=4)
        sharded = solve_sharded(
            quality, metric, tradeoff=0.5, p=4, shards=feature_instance.n * 3
        )
        info = sharded.metadata["sharding"]
        assert info["shards"] == feature_instance.n
        assert info["core_size"] == feature_instance.n
        assert sharded.selected == plain.selected
        assert sharded.objective_value == pytest.approx(plain.objective_value)

    def test_empty_shards_after_restriction(self, feature_instance):
        # A candidate pool smaller than the requested shard count: the empty
        # splits are dropped and the partition covers exactly the pool.
        quality, metric = feature_instance.quality, feature_instance.metric
        pool = [5, 17, 3]
        sharded = solve_sharded(
            quality, metric, tradeoff=0.5, p=2, shards=8, candidates=pool
        )
        info = sharded.metadata["sharding"]
        assert info["shards"] == 3
        # The recorded pool keeps the user's first-seen order, matching the
        # unsharded restriction convention (sorting is internal to sharding).
        assert sharded.metadata["candidates"] == (5, 17, 3)
        assert sharded.selected <= {3, 5, 17}
        assert len(sharded.selected) == 2

    def test_empty_candidate_pool(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        sharded = solve_sharded(
            quality, metric, tradeoff=0.5, p=3, shards=4, candidates=[]
        )
        assert sharded.selected == frozenset()

    def test_oracle_metric_fallback(self, matrix_instance):
        # A pure oracle metric has no lazy tier and no matrix view: shards
        # fall back to the O(k²) pairwise restriction and still agree with
        # the plain solve on the materialized matrix.
        oracle = OracleMetric(matrix_instance.metric.to_matrix())
        quality = matrix_instance.quality
        plain = solve(quality, matrix_instance.metric, tradeoff=0.2, p=5)
        sharded = solve_sharded(quality, oracle, tradeoff=0.2, p=5, shards=4)
        assert sharded.objective_value >= 0.95 * plain.objective_value
        assert sharded.metadata["sharding"]["shards"] == 4


# ----------------------------------------------------------------------
# Pipeline behavior
# ----------------------------------------------------------------------
class TestSolveSharded:
    def test_parity_with_global_greedy(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        plain = solve(quality, metric, tradeoff=0.5, p=8)
        for shards in (2, 5, 10):
            sharded = solve_sharded(
                quality, metric, tradeoff=0.5, p=8, shards=shards
            )
            assert sharded.objective_value >= 0.95 * plain.objective_value
            assert len(sharded.selected) == 8

    def test_metadata_records_layout(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        sharded = solve_sharded(quality, metric, tradeoff=0.5, p=4, shards=6)
        info = sharded.metadata["sharding"]
        assert info["shards"] == 6
        assert sum(info["shard_sizes"]) == feature_instance.n
        assert info["core_size"] == 6 * 4
        assert info["per_shard_p"] == 4
        assert info["shard_algorithm"] == "greedy"
        assert info["shard_seconds"] >= 0.0
        assert "candidates" not in sharded.metadata

    def test_per_shard_p_grows_core(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        small = solve_sharded(quality, metric, tradeoff=0.5, p=3, shards=4)
        big = solve_sharded(
            quality, metric, tradeoff=0.5, p=3, shards=4, per_shard_p=9
        )
        assert small.metadata["sharding"]["core_size"] == 12
        assert big.metadata["sharding"]["core_size"] == 36
        assert big.objective_value >= small.objective_value - 1e-9

    def test_local_search_final_stage(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        greedy = solve_sharded(quality, metric, tradeoff=0.5, p=6, shards=4)
        refined = solve_sharded(
            quality,
            metric,
            tradeoff=0.5,
            p=6,
            shards=4,
            algorithm="local_search",
            local_search_config=LocalSearchConfig(max_swaps=4),
        )
        assert refined.algorithm == "local_search"
        # The final search is seeded with the core-set greedy solution, so it
        # can only improve on it.
        assert refined.objective_value >= greedy.objective_value - 1e-9

    def test_materialized_shards_match_lazy(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        lazy = solve_sharded(
            quality, metric, tradeoff=0.5, p=5, shards=4, materialize_shards=False
        )
        materialized = solve_sharded(
            quality, metric, tradeoff=0.5, p=5, shards=4, materialize_shards=True
        )
        assert materialized.selected == lazy.selected
        assert materialized.objective_value == pytest.approx(lazy.objective_value)

    def test_materialized_cosine_shards_high_dimension(self):
        # GEMM-based cosine blocks carry ulp-level asymmetry at high
        # dimension; the materializing path must symmetrize before the
        # DistanceMatrix axiom check instead of raising MetricError.
        from repro.metrics.cosine import CosineMetric

        rng = np.random.default_rng(19)
        features = np.abs(rng.normal(size=(120, 1024))) + 0.01
        metric = CosineMetric(features, shift=0.05)
        quality = ModularFunction(rng.uniform(0, 1, size=120))
        result = solve_sharded(
            quality,
            metric,
            tradeoff=1.0,
            p=4,
            shards=4,
            materialize_shards=True,
        )
        assert len(result.selected) == 4

    def test_thread_pool_matches_sequential(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        sequential = solve_sharded(quality, metric, tradeoff=0.5, p=5, shards=5)
        threaded = solve_sharded(
            quality, metric, tradeoff=0.5, p=5, shards=5, max_workers=3
        )
        assert threaded.selected == sequential.selected
        assert threaded.metadata["sharding"]["executor"] == "thread"
        assert threaded.metadata["sharding"]["shard_seconds"] > 0.0

    def test_process_pool_matches_sequential(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        sequential = solve_sharded(quality, metric, tradeoff=0.5, p=5, shards=5)
        multiproc = solve_sharded(
            quality,
            metric,
            tradeoff=0.5,
            p=5,
            shards=5,
            max_workers=2,
            executor="process",
        )
        assert multiproc.selected == sequential.selected
        assert multiproc.metadata["sharding"]["executor"] == "process"
        assert multiproc.metadata["sharding"]["shard_seconds"] > 0.0

    def test_oracle_quality_disables_thread_pool(self, feature_instance):
        metric = feature_instance.metric

        class OracleQuality(ModularFunction):
            """A user-oracle stand-in: no array view, no thread-safety promise."""

            def weights_view(self):  # pretend there is no array view
                return None

            @property
            def parallel_safe(self):  # and no parallel-safety declaration
                return False

        quality = OracleQuality(feature_instance.weights)
        result = solve_sharded(
            quality, metric, tradeoff=0.5, p=4, shards=4, max_workers=4
        )
        assert result.metadata["sharding"]["executor"] is None

    def test_submodular_parallel_safe_quality_enables_thread_pool(
        self, feature_instance
    ):
        from repro.functions import FacilityLocationFunction

        metric = feature_instance.metric
        rng = np.random.default_rng(9)
        n = metric.n
        similarity = rng.uniform(0.0, 1.0, size=(n, n))
        quality = FacilityLocationFunction((similarity + similarity.T) / 2.0)
        sequential = solve_sharded(quality, metric, tradeoff=0.5, p=4, shards=4)
        threaded = solve_sharded(
            quality, metric, tradeoff=0.5, p=4, shards=4, max_workers=4
        )
        assert threaded.metadata["sharding"]["executor"] == "thread"
        assert threaded.selected == sequential.selected

    def test_candidates_restrict_selection(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        pool = list(range(10, 80))
        sharded = solve_sharded(
            quality, metric, tradeoff=0.5, p=5, shards=4, candidates=pool
        )
        assert sharded.selected <= set(pool)
        assert sharded.metadata["candidates"] == tuple(pool)

    def test_invalid_parameters(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        with pytest.raises(InvalidParameterError):
            solve_sharded(quality, metric, tradeoff=0.5, p=3)
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality, metric, tradeoff=0.5, p=3, shards=2, executor="fleet"
            )
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality, metric, tradeoff=0.5, p=3, shards=2, max_workers=0
            )
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality, metric, tradeoff=0.5, p=3, shards=2, per_shard_p=0
            )
        with pytest.raises(InvalidParameterError):
            solve_sharded(quality, metric, tradeoff=0.5, p=-1, shards=2)
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality, metric, tradeoff=0.5, p=3, shards=2, algorithm="nope"
            )
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality,
                metric,
                tradeoff=0.5,
                p=3,
                shards=2,
                shard_algorithm="nope",
            )


# ----------------------------------------------------------------------
# solve() / solve_many() wiring
# ----------------------------------------------------------------------
class TestSolverWiring:
    def test_solve_rejects_matroid_with_shards(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        with pytest.raises(InvalidParameterError):
            solve(
                quality,
                metric,
                tradeoff=0.5,
                matroid=UniformMatroid(feature_instance.n, 4),
                shards=4,
            )

    def test_solve_shard_size(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        result = solve(quality, metric, tradeoff=0.5, p=4, shard_size=30)
        assert result.metadata["sharding"]["shards"] == 4

    def test_solve_many_sharded(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        pools = [range(0, 60), range(60, 120), []]
        results = solve_many(
            quality, metric, pools, tradeoff=0.5, p=4, shards=3
        )
        assert len(results) == 3
        assert results[0].selected <= set(range(0, 60))
        assert results[1].selected <= set(range(60, 120))
        assert results[2].selected == frozenset()
        for result in results[:2]:
            assert result.metadata["sharding"]["shards"] == 3

    def test_solve_many_sharded_forwards_workers(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        results = solve_many(
            quality,
            metric,
            [range(0, 120)],
            tradeoff=0.5,
            p=4,
            shards=3,
            max_workers=3,
        )
        # The worker budget reaches the per-query shard map.
        assert results[0].metadata["sharding"]["executor"] == "thread"

    def test_solve_many_sharded_rejects_matroid(self, feature_instance):
        quality, metric = feature_instance.quality, feature_instance.metric
        with pytest.raises(InvalidParameterError):
            solve_many(
                quality,
                metric,
                [range(10)],
                tradeoff=0.5,
                matroid=UniformMatroid(feature_instance.n, 3),
                shards=2,
            )

    def test_solve_many_sharded_skips_materialization(self, feature_instance):
        quality = feature_instance.quality

        class NoMaterialize(EuclideanMetric):
            def to_matrix(self):
                raise AssertionError("corpus matrix materialized")

        metric = NoMaterialize(feature_instance.metric.points)
        results = solve_many(
            quality, metric, [range(0, 50)], tradeoff=0.5, p=3, shards=2
        )
        assert len(results[0].selected) == 3


class TestShardFailureFeasibility:
    """Shard loss shrinks the core; the final solve must stay feasible."""

    def test_partial_shard_loss_clips_p_to_surviving_core(self):
        from repro.testing.faults import FaultyMetric

        class ShardSizeCrash(FaultyMetric):
            """Crash every oracle query made on a 4-element restriction.

            ``n=14, shards=4`` partitions into sizes ``(4, 4, 3, 3)`` and
            ``per_shard_p=3`` makes the two 3-element shards trivial winners
            (no oracle calls) while the two 4-element shards must actually
            solve — and die, on the pool attempt and the serial retry alike.
            The surviving 6-element core (and the 14-element corpus metric)
            never match the trigger, so only the shard map is faulty.
            """

            def _fault(self):
                if self.n == 4:
                    raise RuntimeError("injected shard fault")

        rng = np.random.default_rng(5)
        quality = ModularFunction(rng.uniform(1.0, 2.0, size=14))
        metric = EuclideanMetric(rng.normal(size=(14, 2)))
        result = solve_sharded(
            quality,
            ShardSizeCrash(metric),
            tradeoff=0.5,
            p=10,
            shards=4,
            per_shard_p=3,
            shard_retries=1,
            retry_backoff_s=0.0,
        )
        sharding = result.metadata["sharding"]
        assert len(sharding["failed_shards"]) == 2
        assert sharding["core_size"] == 6
        # p=10 exceeds the surviving core: the final solve clips rather
        # than raising an infeasibility error.
        assert len(result.selected) == 6
        assert result.metadata["degraded"] is True
        assert result.selected <= set(range(14))

    def test_full_shard_loss_reports_every_shard(self, feature_instance):
        from repro.testing.faults import CrashingMetric

        faulty = CrashingMetric(feature_instance.metric)
        result = solve_sharded(
            feature_instance.quality,
            faulty,
            tradeoff=0.5,
            p=4,
            shards=3,
            shard_retries=0,
            retry_backoff_s=0.0,
        )
        assert result.selected == frozenset()
        assert result.metadata["sharding"]["failed_shards"] == [0, 1, 2]
        assert result.metadata["degraded"] is True
