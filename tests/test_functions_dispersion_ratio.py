"""Tests for DispersionFunction and the submodularity-ratio diagnostic."""

from __future__ import annotations

import pytest

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.verification import check_normalized, is_monotone, is_submodular
from repro.functions.weakly_submodular import DispersionFunction, submodularity_ratio
from repro.metrics.aggregates import set_distance
from repro.metrics.discrete import UniformRandomMetric


class TestDispersionFunction:
    def test_value_matches_set_distance(self, small_matrix):
        g = DispersionFunction(small_matrix)
        for subset in ({0, 1}, {0, 1, 2}, set(), {3}):
            assert g.value(subset) == pytest.approx(set_distance(small_matrix, subset))

    def test_marginal_matches_difference(self, small_matrix):
        g = DispersionFunction(small_matrix)
        subset = {0, 2}
        for u in (1, 3):
            assert g.marginal(u, subset) == pytest.approx(
                g.value(subset | {u}) - g.value(subset)
            )
        assert g.marginal(0, subset) == 0.0

    def test_monotone_normalized_but_not_submodular(self):
        metric = UniformRandomMetric(7, seed=2)
        g = DispersionFunction(metric)
        check_normalized(g)
        assert is_monotone(g)
        assert not is_submodular(g)
        assert not g.declares_submodular

    def test_objective_equivalence(self):
        """φ(S) = f(S) + λ·d(S) can equivalently be built from the wrapper."""
        metric = UniformRandomMetric(8, seed=3)
        weights = ModularFunction([0.1 * i for i in range(8)])
        objective = Objective(weights, metric, tradeoff=0.4)
        dispersion = DispersionFunction(metric)
        subset = {1, 4, 6}
        assert objective.value(subset) == pytest.approx(
            weights.value(subset) + 0.4 * dispersion.value(subset)
        )


class TestSubmodularityRatio:
    def test_modular_function_has_ratio_one(self):
        f = ModularFunction([0.5, 1.0, 2.0, 0.2, 0.9])
        assert submodularity_ratio(f) == pytest.approx(1.0)

    def test_submodular_function_has_ratio_at_least_one(self):
        f = CoverageFunction.random(6, 5, seed=1)
        assert submodularity_ratio(f) >= 1.0 - 1e-9

    def test_dispersion_ratio_zero_with_empty_base(self):
        g = DispersionFunction(UniformRandomMetric(6, seed=4))
        assert submodularity_ratio(g, min_base_size=0) == pytest.approx(0.0)

    def test_dispersion_ratio_positive_with_nonempty_base(self):
        g = DispersionFunction(UniformRandomMetric(6, seed=5))
        ratio = submodularity_ratio(g, min_base_size=1)
        assert 0.0 < ratio < 1.0

    def test_sampled_mode(self):
        g = DispersionFunction(UniformRandomMetric(15, seed=6))
        ratio = submodularity_ratio(
            g, min_base_size=1, exhaustive_limit=5, samples=100, seed=0
        )
        assert 0.0 < ratio <= 1.0 + 1e-9

    def test_validation(self):
        f = ModularFunction([1.0, 2.0, 3.0])
        with pytest.raises(InvalidParameterError):
            submodularity_ratio(f, min_base_size=-1)
        with pytest.raises(InvalidParameterError):
            submodularity_ratio(f, max_extension=1)
