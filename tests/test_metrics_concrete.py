"""Tests for the concrete metric families (Euclidean, cosine, discrete, random)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics.cosine import CosineMetric
from repro.metrics.discrete import DiscreteMetric, UniformRandomMetric, one_two_metric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.validation import is_metric


class TestEuclidean:
    def test_basic_distance(self):
        metric = EuclideanMetric(np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 1.0]]))
        assert metric.distance(0, 1) == pytest.approx(5.0)
        assert metric.distance(0, 2) == pytest.approx(1.0)

    def test_one_dimensional_input_promoted(self):
        metric = EuclideanMetric(np.array([0.0, 2.0, 5.0]))
        assert metric.dimension == 1
        assert metric.distance(1, 2) == pytest.approx(3.0)

    def test_is_a_metric(self):
        rng = np.random.default_rng(0)
        metric = EuclideanMetric(rng.normal(size=(8, 3)))
        assert is_metric(metric)

    def test_distances_from_matches_pairwise(self):
        rng = np.random.default_rng(1)
        metric = EuclideanMetric(rng.normal(size=(6, 2)))
        bulk = metric.distances_from(2, range(6))
        assert np.allclose(bulk, [metric.distance(2, v) for v in range(6)])

    def test_rejects_3d_input(self):
        with pytest.raises(InvalidParameterError):
            EuclideanMetric(np.zeros((2, 2, 2)))


class TestCosine:
    def test_identical_vectors_distance_zero(self):
        metric = CosineMetric(np.array([[1.0, 2.0], [2.0, 4.0]]))
        assert metric.distance(0, 1) == pytest.approx(0.0, abs=1e-9)

    def test_orthogonal_vectors(self):
        metric = CosineMetric(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert metric.distance(0, 1) == pytest.approx(1.0)

    def test_shift_makes_metric(self):
        rng = np.random.default_rng(3)
        features = rng.uniform(0.1, 1.0, size=(10, 5))
        shifted = CosineMetric(features, shift=1.0)
        assert is_metric(shifted)

    def test_self_distance_zero_despite_shift(self):
        metric = CosineMetric(np.array([[1.0, 0.0], [0.0, 1.0]]), shift=1.0)
        assert metric.distance(0, 0) == 0.0

    def test_rejects_zero_vector(self):
        with pytest.raises(InvalidParameterError):
            CosineMetric(np.array([[0.0, 0.0], [1.0, 1.0]]))

    def test_distances_from_matches_pairwise(self):
        rng = np.random.default_rng(4)
        metric = CosineMetric(rng.uniform(0.1, 1.0, size=(7, 4)), shift=0.3)
        bulk = metric.distances_from(3, range(7))
        assert np.allclose(bulk, [metric.distance(3, v) for v in range(7)])


class TestDiscrete:
    def test_range_enforced(self):
        bad = np.array([[0.0, 3.0], [3.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            DiscreteMetric(bad, base=1.0)

    def test_one_two_metric_from_graph(self):
        adjacency = np.array([[0, 1, 0], [1, 0, 0], [0, 0, 0]])
        metric = one_two_metric(adjacency)
        assert metric.distance(0, 1) == 1.0
        assert metric.distance(0, 2) == 2.0
        assert is_metric(metric)

    def test_one_two_metric_rejects_asymmetric(self):
        with pytest.raises(InvalidParameterError):
            one_two_metric(np.array([[0, 1], [0, 0]]))

    def test_uniform_random_metric_is_metric(self):
        metric = UniformRandomMetric(15, seed=5)
        assert is_metric(metric)
        off_diagonal = metric.to_matrix()[~np.eye(15, dtype=bool)]
        assert off_diagonal.min() >= 1.0
        assert off_diagonal.max() <= 2.0

    def test_uniform_random_metric_reproducible(self):
        a = UniformRandomMetric(10, seed=9).to_matrix()
        b = UniformRandomMetric(10, seed=9).to_matrix()
        assert np.allclose(a, b)

    def test_uniform_random_metric_rejects_bad_range(self):
        with pytest.raises(InvalidParameterError):
            UniformRandomMetric(5, low=1.0, high=3.0)
        with pytest.raises(InvalidParameterError):
            UniformRandomMetric(5, low=0.0, high=0.0)
