"""Regression tests: timers must be reusable inside pool workers.

The sharded core-set solver fans shard solves out to thread and process
pools; its per-shard timing relies on :class:`~repro.utils.timing.Stopwatch`
accumulating correctly under concurrency and carrying no shared mutable
state across process boundaries.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.utils.timing import Stopwatch, timed


def _worker_elapsed(seconds: float) -> float:
    """Process-pool worker: time a sleep with a fresh local stopwatch."""
    watch = Stopwatch()
    with watch.measure():
        time.sleep(seconds)
    return watch.elapsed_seconds


class TestStopwatchThreadSafety:
    def test_concurrent_measures_all_accumulate(self):
        watch = Stopwatch()
        workers, per_worker = 8, 25

        def tick():
            for _ in range(per_worker):
                with watch.measure():
                    pass

        threads = [threading.Thread(target=tick) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Every one of the 200 measured intervals must land in the total; the
        # unlocked read-modify-write would lose updates under contention.
        assert watch.elapsed_seconds > 0.0

    def test_add_is_locked_against_measure(self):
        watch = Stopwatch()
        stop = threading.Event()

        def add_loop():
            while not stop.is_set():
                watch.add(0.001)

        thread = threading.Thread(target=add_loop)
        thread.start()
        for _ in range(50):
            with watch.measure():
                pass
        stop.set()
        thread.join()
        assert watch.elapsed_seconds > 0.0

    def test_shared_watch_in_thread_pool(self):
        watch = Stopwatch()

        def task(_):
            with watch.measure():
                time.sleep(0.002)
            return True

        with ThreadPoolExecutor(max_workers=4) as pool:
            assert all(pool.map(task, range(8)))
        assert watch.elapsed_seconds >= 8 * 0.002


class TestStopwatchAcrossProcesses:
    def test_pickle_round_trip_is_independent(self):
        watch = Stopwatch()
        watch.add(1.5)
        clone = pickle.loads(pickle.dumps(watch))
        assert clone.elapsed_seconds == 1.5
        # The clone has its own lock and its own accumulator: mutating it
        # must not leak back into the parent (and vice versa).
        clone.add(1.0)
        watch.add(0.25)
        assert clone.elapsed_seconds == 2.5
        assert watch.elapsed_seconds == 1.75
        with clone.measure():
            pass
        clone.reset()
        assert clone.elapsed_seconds == 0.0

    def test_worker_durations_merge_into_parent(self):
        watch = Stopwatch()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for elapsed in pool.map(_worker_elapsed, [0.01, 0.01]):
                watch.add(elapsed)
        assert watch.elapsed_seconds >= 0.02

    def test_merge_combines_stopwatches(self):
        parent, child = Stopwatch(), Stopwatch()
        child.add(0.5)
        parent.add(0.25)
        parent.merge(child)
        assert parent.elapsed_seconds == 0.75
        assert child.elapsed_seconds == 0.5


def test_timed_returns_value_and_duration():
    value, seconds = timed(lambda: 6 * 7)
    assert value == 42
    assert seconds >= 0.0
