"""Tests for the lazy metric tier: block(), restrict_lazy(), parallel_safe."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.base import Metric
from repro.metrics.cosine import CosineMetric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import DistanceMatrix


class OracleMetric(Metric):
    """Distances served only through the pairwise oracle interface."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._backing = np.asarray(matrix, dtype=float)

    @property
    def n(self) -> int:
        return self._backing.shape[0]

    def distance(self, u, v) -> float:
        return float(self._backing[u, v])


def _metrics(rng):
    points = rng.normal(size=(23, 4))
    features = np.abs(rng.normal(size=(23, 6))) + 0.1
    euclidean = EuclideanMetric(points)
    return {
        "euclidean": euclidean,
        "cosine": CosineMetric(features, shift=0.05),
        "matrix": DistanceMatrix(euclidean.to_matrix()),
        "oracle": OracleMetric(euclidean.to_matrix()),
    }


@pytest.mark.parametrize("kind", ["euclidean", "cosine", "matrix", "oracle"])
def test_block_matches_distance_oracle(kind):
    metric = _metrics(np.random.default_rng(1))[kind]
    rows = [3, 0, 11, 3]  # repeats and unsorted on purpose
    cols = [7, 3, 19, 0, 5]
    block = metric.block(rows, cols)
    assert block.shape == (4, 5)
    for i, u in enumerate(rows):
        for j, v in enumerate(cols):
            assert block[i, j] == pytest.approx(metric.distance(u, v), abs=1e-12)


@pytest.mark.parametrize("kind", ["euclidean", "cosine", "matrix", "oracle"])
def test_block_empty_edges(kind):
    metric = _metrics(np.random.default_rng(2))[kind]
    assert metric.block([], [1, 2]).shape == (0, 2)
    assert metric.block([1, 2], []).shape == (2, 0)


def test_euclidean_block_chunking_consistent(monkeypatch):
    # Force tiny chunks and verify the chunked result is bitwise identical to
    # the one-shot row computation.
    from repro.metrics import euclidean as euclidean_module

    metric = EuclideanMetric(np.random.default_rng(3).normal(size=(40, 5)))
    rows = np.arange(40)
    full = metric.block(rows, rows)
    monkeypatch.setattr(euclidean_module, "_BLOCK_CHUNK_FLOATS", 16)
    chunked = metric.block(rows, rows)
    assert np.array_equal(full, chunked)
    expected = np.stack([metric.row(u) for u in range(40)])
    assert np.array_equal(chunked, expected)


def test_cosine_block_chunking_consistent(monkeypatch):
    from repro.metrics import cosine as cosine_module

    features = np.abs(np.random.default_rng(4).normal(size=(30, 4))) + 0.1
    metric = CosineMetric(features, shift=0.1)
    rows = np.arange(30)
    full = metric.block(rows, rows)
    monkeypatch.setattr(cosine_module, "_BLOCK_CHUNK_FLOATS", 8)
    chunked = metric.block(rows, rows)
    # BLAS picks different kernels per chunk shape, so agreement is to the
    # last ulp rather than bitwise (unlike the euclidean subtract-square-sum
    # pipeline, whose reductions are shape-independent).
    np.testing.assert_allclose(full, chunked, rtol=0.0, atol=1e-15)
    np.testing.assert_allclose(chunked, chunked.T, atol=1e-12)
    assert np.all(np.diag(chunked) == 0.0)


def test_square_blocks_are_valid_distance_matrices():
    # The sharded solver wraps pool×pool blocks in DistanceMatrix, which
    # validates symmetry, non-negativity and a zero diagonal.
    for metric in _metrics(np.random.default_rng(5)).values():
        pool = np.array([2, 5, 7, 11, 13])
        DistanceMatrix(metric.block(pool, pool), copy=False)


class TestRestrictLazy:
    def test_euclidean(self):
        metric = EuclideanMetric(np.random.default_rng(6).normal(size=(15, 3)))
        pool = [9, 2, 5]
        lazy = metric.restrict_lazy(pool)
        assert isinstance(lazy, EuclideanMetric)
        assert lazy.n == 3
        for i, u in enumerate(pool):
            for j, v in enumerate(pool):
                assert lazy.distance(i, j) == metric.distance(u, v)

    def test_cosine_bitwise_consistent(self):
        features = np.abs(np.random.default_rng(7).normal(size=(15, 4))) + 0.1
        metric = CosineMetric(features, shift=0.2)
        pool = [14, 0, 8, 3]
        lazy = metric.restrict_lazy(pool)
        assert isinstance(lazy, CosineMetric)
        assert lazy.shift == metric.shift
        for i, u in enumerate(pool):
            for j, v in enumerate(pool):
                assert lazy.distance(i, j) == metric.distance(u, v)

    def test_default_is_none(self):
        oracle = OracleMetric(np.zeros((4, 4)))
        assert oracle.restrict_lazy([0, 1]) is None
        matrix = DistanceMatrix(np.zeros((4, 4)))
        assert matrix.restrict_lazy([0, 1]) is None


def test_parallel_safe_flags():
    metrics = _metrics(np.random.default_rng(8))
    assert metrics["euclidean"].parallel_safe
    assert metrics["cosine"].parallel_safe
    assert metrics["matrix"].parallel_safe
    assert not metrics["oracle"].parallel_safe
