"""Property-based tests (hypothesis) for the matroid substrate.

Random instances of every concrete matroid family are checked against the
matroid axioms (hereditary + augmentation), rank consistency, the exchange
bijection of Lemma 2, and the consistency of swap_candidates with the
independence oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.matroids.base import Matroid
from repro.matroids.exchange import exchange_bijection
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.partition import PartitionMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.truncation import TruncatedMatroid
from repro.matroids.uniform import UniformMatroid

seeds = st.integers(min_value=0, max_value=10_000)


def _random_partition(seed: int) -> PartitionMatroid:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    num_blocks = int(rng.integers(1, 4))
    blocks = [int(rng.integers(0, num_blocks)) for _ in range(n)]
    capacities = {b: int(rng.integers(1, 3)) for b in range(num_blocks)}
    return PartitionMatroid(blocks, capacities)


def _random_transversal(seed: int) -> TransversalMatroid:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    num_collections = int(rng.integers(1, 4))
    collections = [
        list(map(int, rng.choice(n, size=int(rng.integers(1, n + 1)), replace=False)))
        for _ in range(num_collections)
    ]
    return TransversalMatroid(n, collections)


def _random_graphic(seed: int) -> GraphicMatroid:
    rng = np.random.default_rng(seed)
    vertices = int(rng.integers(2, 6))
    num_edges = int(rng.integers(1, 8))
    edges = [
        (int(rng.integers(0, vertices)), int(rng.integers(0, vertices)))
        for _ in range(num_edges)
    ]
    return GraphicMatroid(vertices, edges)


def _random_uniform(seed: int) -> UniformMatroid:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(1, 9))
    return UniformMatroid(n, int(rng.integers(0, n + 1)))


def _random_truncated(seed: int) -> TruncatedMatroid:
    return TruncatedMatroid(
        _random_partition(seed), int(np.random.default_rng(seed).integers(1, 4))
    )


FAMILIES = {
    "uniform": _random_uniform,
    "partition": _random_partition,
    "transversal": _random_transversal,
    "graphic": _random_graphic,
    "truncated": _random_truncated,
}


def _check_swap_candidates(matroid: Matroid) -> None:
    basis = matroid.a_basis()
    for incoming in range(matroid.n):
        if incoming in basis:
            continue
        claimed = set(matroid.swap_candidates(basis, incoming))
        actual = {
            outgoing
            for outgoing in basis
            if matroid.is_independent((set(basis) - {outgoing}) | {incoming})
        }
        # swap_candidates may over-approximate only if every yielded swap is
        # actually feasible — require exact agreement.
        assert claimed == actual


class TestMatroidAxiomsProperty:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_axioms_hold(self, family, seed):
        FAMILIES[family](seed).check_axioms()

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_rank_equals_basis_size(self, family, seed):
        matroid = FAMILIES[family](seed)
        basis = matroid.a_basis()
        assert len(basis) == matroid.rank()
        assert matroid.is_basis(basis)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_swap_candidates_match_oracle(self, family, seed):
        _check_swap_candidates(FAMILIES[family](seed))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_exchange_bijection_between_random_bases(self, family, seed):
        matroid = FAMILIES[family](seed)
        rng = np.random.default_rng(seed + 1)
        # Build two (possibly different) bases by extending from random orders.
        order_a = list(rng.permutation(matroid.n))
        order_b = list(rng.permutation(matroid.n))
        basis_a = matroid.extend_to_basis(
            frozenset(), preference=[int(x) for x in order_a]
        )
        basis_b = matroid.extend_to_basis(
            frozenset(), preference=[int(x) for x in order_b]
        )
        mapping = exchange_bijection(matroid, basis_a, basis_b)
        assert set(mapping.keys()) == set(basis_a) - set(basis_b)
        assert set(mapping.values()) == set(basis_b) - set(basis_a)
        for x, y in mapping.items():
            assert matroid.is_independent((set(basis_a) - {x}) | {y})
