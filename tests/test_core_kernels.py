"""Kernel/reference equivalence tests.

Every vectorized kernel (pair seeding, best-swap scan, aggregates, streaming
arrival rule, dynamic best swap, blocked triangle check) must agree with the
loop-based reference path to 1e-9 on random instances.  The reference path is
exercised by wrapping the same distance matrix in an oracle-only adapter that
hides :meth:`~repro.metrics.base.Metric.matrix_view`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro._types import Element
from repro.core import kernels
from repro.core.greedy import _best_pair, greedy_diversify
from repro.core.local_search import (
    _scan_swaps_reference,
    _scan_swaps_submodular,
    _scan_swaps_vectorized,
    local_search_diversify,
)
from repro.core.objective import Objective
from repro.core.streaming import streaming_diversify
from repro.dynamic.update_rules import best_swap
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.modular import ModularFunction
from repro.matroids.base import restriction_feasible_pairs
from repro.matroids.partition import PartitionMatroid
from repro.matroids.uniform import UniformMatroid
from repro.metrics.aggregates import (
    MarginalDistanceTracker,
    marginal_distance,
    set_cross_distance,
    set_distance,
)
from repro.metrics.base import Metric
from repro.metrics.matrix import DistanceMatrix
from repro.metrics.validation import triangle_violations


class OracleOnlyMetric(Metric):
    """Hide a matrix behind the pairwise oracle to force the reference path."""

    def __init__(self, inner: Metric) -> None:
        self._inner = inner

    @property
    def n(self) -> int:
        return self._inner.n

    def distance(self, u: Element, v: Element) -> float:
        return self._inner.distance(u, v)


def random_instance(seed: int, n: int = 40):
    rng = np.random.default_rng(seed)
    metric = DistanceMatrix.from_points(rng.normal(size=(n, 3)))
    weights = rng.uniform(0.0, 5.0, size=n)
    quality = ModularFunction(weights)
    tradeoff = float(rng.uniform(0.2, 2.0))
    return metric, quality, tradeoff


def paired_objectives(seed: int, n: int = 40):
    metric, quality, tradeoff = random_instance(seed, n)
    fast = Objective(quality, metric, tradeoff)
    slow = Objective(quality, OracleOnlyMetric(metric), tradeoff)
    return fast, slow


class TestFastPathDetection:
    def test_matrix_modular_is_eligible(self):
        fast, slow = paired_objectives(0)
        assert kernels.matrix_fast_path(fast) is not None
        assert kernels.matrix_fast_path(slow) is None

    def test_submodular_quality_is_not_eligible(self):
        metric, _, tradeoff = random_instance(1)
        quality = FacilityLocationFunction.from_distances(metric.to_matrix())
        objective = Objective(quality, metric, tradeoff)
        assert kernels.matrix_fast_path(objective) is None
        assert not kernels.swap_kernel_supported(objective, UniformMatroid(metric.n, 5))

    def test_swap_kernel_needs_closed_form_matroid(self):
        fast, _ = paired_objectives(2)
        assert kernels.swap_kernel_supported(fast, UniformMatroid(fast.n, 5))
        blocks = [u % 4 for u in range(fast.n)]
        assert kernels.swap_kernel_supported(
            fast, PartitionMatroid(blocks, {b: 2 for b in range(4)})
        )


class TestPairSeeding:
    @pytest.mark.parametrize("seed", range(5))
    def test_best_pair_matches_loop(self, seed):
        fast, slow = paired_objectives(seed)
        pool = list(range(fast.n))
        assert _best_pair(fast, pool) == _best_pair(slow, pool)

    @pytest.mark.parametrize("seed", range(3))
    def test_best_pair_on_restricted_pool(self, seed):
        fast, slow = paired_objectives(seed)
        rng = np.random.default_rng(seed + 100)
        pool = list(rng.choice(fast.n, size=17, replace=False))
        assert _best_pair(fast, pool) == _best_pair(slow, pool)

    @pytest.mark.parametrize("seed", range(3))
    def test_pair_argmax_respects_partition_mask(self, seed):
        fast, _ = paired_objectives(seed)
        blocks = [u % 3 for u in range(fast.n)]
        matroid = PartitionMatroid(blocks, {0: 1, 1: 2, 2: 1})
        weights, matrix = kernels.matrix_fast_path(fast)
        move = kernels.pair_argmax(
            weights,
            matrix,
            fast.tradeoff,
            range(fast.n),
            mask=matroid.pair_feasibility_mask(),
        )
        best_loop = max(
            restriction_feasible_pairs(matroid),
            key=lambda pair: fast.pair_value(*pair),
        )
        assert (move[0], move[1]) == best_loop
        assert move[2] == pytest.approx(fast.pair_value(*best_loop), abs=1e-9)


class TestSwapScanEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_matroid_scan(self, seed):
        fast, slow = paired_objectives(seed)
        rng = np.random.default_rng(seed)
        selected = set(rng.choice(fast.n, size=8, replace=False).tolist())
        matroid = UniformMatroid(fast.n, len(selected))
        weights, matrix = kernels.matrix_fast_path(fast)
        vec = _scan_swaps_vectorized(
            fast, matroid, selected, fast.make_tracker(selected), 0.0, weights, matrix
        )
        ref = _scan_swaps_reference(
            slow, matroid, selected, slow.make_tracker(selected), 0.0
        )
        assert (vec is None) == (ref is None)
        if vec is not None:
            assert vec[:2] == ref[:2]
            assert vec[2] == pytest.approx(ref[2], abs=1e-9)
            # The reported gain must be the true objective delta.
            assert vec[2] == pytest.approx(
                fast.swap_gain(selected, vec[0], vec[1]), abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_partition_matroid_scan(self, seed):
        fast, slow = paired_objectives(seed)
        blocks = [u % 4 for u in range(fast.n)]
        matroid = PartitionMatroid(blocks, {b: 2 for b in range(4)})
        selected = set(matroid.extend_to_basis(frozenset()))
        weights, matrix = kernels.matrix_fast_path(fast)
        vec = _scan_swaps_vectorized(
            fast, matroid, selected, fast.make_tracker(selected), 0.0, weights, matrix
        )
        ref = _scan_swaps_reference(
            slow, matroid, selected, slow.make_tracker(selected), 0.0
        )
        assert (vec is None) == (ref is None)
        if vec is not None:
            assert vec[:2] == ref[:2]
            assert vec[2] == pytest.approx(ref[2], abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_threshold_respected(self, seed):
        fast, slow = paired_objectives(seed)
        rng = np.random.default_rng(seed)
        selected = set(rng.choice(fast.n, size=6, replace=False).tolist())
        matroid = UniformMatroid(fast.n, len(selected))
        weights, matrix = kernels.matrix_fast_path(fast)
        huge = 1e9
        assert (
            _scan_swaps_vectorized(
                fast,
                matroid,
                selected,
                fast.make_tracker(selected),
                huge,
                weights,
                matrix,
            )
            is None
        )


class TestSubmodularSwapScanEquivalence:
    """The protocol-backed kernel scan must match the reference loop scan."""

    @staticmethod
    def _submodular_objective(seed: int, n: int = 30):
        metric, _, tradeoff = random_instance(seed, n)
        rng = np.random.default_rng(seed + 41)
        if seed % 2 == 0:
            quality = FacilityLocationFunction.from_distances(metric.to_matrix())
        else:
            from repro.functions.saturated import SaturatedCoverageFunction

            similarity = rng.uniform(0.0, 1.0, size=(n, n))
            quality = SaturatedCoverageFunction(
                (similarity + similarity.T) / 2.0, saturation=0.3
            )
        return Objective(quality, metric, tradeoff)

    @pytest.mark.parametrize("seed", range(6))
    def test_uniform_matroid_scan(self, seed):
        objective = self._submodular_objective(seed)
        rng = np.random.default_rng(seed)
        selected = set(rng.choice(objective.n, size=7, replace=False).tolist())
        matroid = UniformMatroid(objective.n, len(selected))
        tracker = objective.make_tracker(selected)
        vec = _scan_swaps_submodular(
            objective,
            matroid,
            selected,
            tracker,
            0.0,
            objective.metric.matrix_view(),
        )
        ref = _scan_swaps_reference(objective, matroid, selected, tracker, 0.0)
        assert (vec is None) == (ref is None)
        if vec is not None:
            assert vec[:2] == ref[:2]
            assert vec[2] == pytest.approx(ref[2], abs=1e-9)
            # The reported gain must be the true objective delta.
            assert vec[2] == pytest.approx(
                objective.swap_gain(selected, vec[0], vec[1]), abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_partition_matroid_scan(self, seed):
        objective = self._submodular_objective(seed, n=24)
        blocks = [u % 4 for u in range(objective.n)]
        matroid = PartitionMatroid(blocks, {b: 2 for b in range(4)})
        selected = set(matroid.extend_to_basis(frozenset()))
        tracker = objective.make_tracker(selected)
        vec = _scan_swaps_submodular(
            objective,
            matroid,
            selected,
            tracker,
            0.0,
            objective.metric.matrix_view(),
        )
        ref = _scan_swaps_reference(objective, matroid, selected, tracker, 0.0)
        assert (vec is None) == (ref is None)
        if vec is not None:
            assert vec[:2] == ref[:2]
            assert vec[2] == pytest.approx(ref[2], abs=1e-9)

    def test_threshold_respected(self):
        objective = self._submodular_objective(0)
        rng = np.random.default_rng(0)
        selected = set(rng.choice(objective.n, size=5, replace=False).tolist())
        matroid = UniformMatroid(objective.n, len(selected))
        assert (
            _scan_swaps_submodular(
                objective,
                matroid,
                selected,
                objective.make_tracker(selected),
                1e9,
                objective.metric.matrix_view(),
            )
            is None
        )


class TestEndToEndEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_greedy_matches_oracle_path(self, seed):
        fast, slow = paired_objectives(seed)
        for start in ("potential", "best_pair"):
            a = greedy_diversify(fast, 8, start=start)
            b = greedy_diversify(slow, 8, start=start)
            assert a.selected == b.selected
            assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_local_search_matches_oracle_path(self, seed):
        fast, slow = paired_objectives(seed, n=25)
        matroid = UniformMatroid(fast.n, 6)
        a = local_search_diversify(fast, matroid)
        b = local_search_diversify(slow, matroid)
        assert a.selected == b.selected
        assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_local_search_partition_matches_oracle_path(self, seed):
        fast, slow = paired_objectives(seed, n=24)
        blocks = [u % 3 for u in range(fast.n)]
        matroid = PartitionMatroid(blocks, {b: 2 for b in range(3)})
        a = local_search_diversify(fast, matroid)
        b = local_search_diversify(slow, matroid)
        assert a.selected == b.selected
        assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_submodular_local_search_still_correct(self, seed):
        metric, _, tradeoff = random_instance(seed, n=18)
        quality = FacilityLocationFunction.from_distances(metric.to_matrix())
        fast = Objective(quality, metric, tradeoff)
        slow = Objective(quality, OracleOnlyMetric(metric), tradeoff)
        matroid = UniformMatroid(metric.n, 5)
        a = local_search_diversify(fast, matroid)
        b = local_search_diversify(slow, matroid)
        assert a.selected == b.selected
        assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_streaming_matches_oracle_path(self, seed):
        fast, slow = paired_objectives(seed)
        rng = np.random.default_rng(seed + 7)
        order = rng.permutation(fast.n).tolist()
        a = streaming_diversify(fast, 7, order)
        b = streaming_diversify(slow, 7, order)
        assert a.selected == b.selected
        assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_dynamic_best_swap_matches_oracle_path(self, seed):
        fast, slow = paired_objectives(seed)
        rng = np.random.default_rng(seed + 13)
        solution = set(rng.choice(fast.n, size=6, replace=False).tolist())
        a = best_swap(fast, solution)
        b = best_swap(slow, solution)
        assert (a is None) == (b is None)
        if a is not None:
            assert a[:2] == b[:2]
            assert a[2] == pytest.approx(b[2], abs=1e-9)


class TestAggregateEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_set_distances(self, seed):
        metric, _, _ = random_instance(seed)
        oracle = OracleOnlyMetric(metric)
        rng = np.random.default_rng(seed + 3)
        subset = rng.choice(metric.n, size=9, replace=False).tolist()
        first, second = subset[:4], subset[4:]
        assert set_distance(metric, subset) == pytest.approx(
            set_distance(oracle, subset), abs=1e-9
        )
        assert set_cross_distance(metric, first, second) == pytest.approx(
            set_cross_distance(oracle, first, second), abs=1e-9
        )
        for u in range(0, metric.n, 5):
            assert marginal_distance(metric, u, subset) == pytest.approx(
                marginal_distance(oracle, u, subset), abs=1e-9
            )

    @pytest.mark.parametrize("seed", range(3))
    def test_tracker_updates(self, seed):
        metric, _, _ = random_instance(seed)
        oracle = OracleOnlyMetric(metric)
        fast_tracker = MarginalDistanceTracker(metric)
        slow_tracker = MarginalDistanceTracker(oracle)
        rng = np.random.default_rng(seed + 5)
        members = rng.choice(metric.n, size=10, replace=False).tolist()
        for element in members:
            fast_tracker.add(element)
            slow_tracker.add(element)
        for element in members[:4]:
            fast_tracker.remove(element)
            slow_tracker.remove(element)
        assert np.allclose(
            fast_tracker.marginals(), slow_tracker.marginals(), atol=1e-9
        )
        assert fast_tracker.internal_dispersion == pytest.approx(
            slow_tracker.internal_dispersion, abs=1e-9
        )

    def test_marginal_distance_counts_duplicates_on_both_tiers(self):
        metric, _, _ = random_instance(0)
        oracle = OracleOnlyMetric(metric)
        subset = [1, 1, 2, 0]  # duplicates and the element itself
        assert marginal_distance(metric, 0, subset) == pytest.approx(
            marginal_distance(oracle, 0, subset), abs=1e-9
        )

    def test_marginals_view_is_read_only_and_live(self):
        metric, _, _ = random_instance(0)
        tracker = MarginalDistanceTracker(metric)
        view = tracker.marginals_view()
        with pytest.raises(ValueError):
            view[0] = 1.0
        tracker.add(3)
        assert view[0] == pytest.approx(metric.distance(0, 3))

    def test_matrix_view_and_row_are_read_only(self):
        metric, _, _ = random_instance(1)
        view = metric.matrix_view()
        with pytest.raises(ValueError):
            view[0, 1] = 99.0
        with pytest.raises(ValueError):
            metric.row(0)[1] = 99.0
        # ...while the sanctioned mutation path still works and is reflected.
        metric.set_distance(0, 1, 0.5)
        assert view[0, 1] == 0.5

    def test_zero_function_uses_fast_path_and_matches_oracle(self):
        from repro.functions.modular import ZeroFunction

        metric, _, tradeoff = random_instance(2)
        fast = Objective(ZeroFunction(metric.n), metric, tradeoff)
        slow = Objective(ZeroFunction(metric.n), OracleOnlyMetric(metric), tradeoff)
        assert kernels.matrix_fast_path(fast) is not None
        a = streaming_diversify(fast, 6)
        b = streaming_diversify(slow, 6)
        assert a.selected == b.selected
        assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)


class TestFeasibilityMasks:
    @pytest.mark.parametrize("seed", range(4))
    def test_partition_swap_feasibility_matches_candidates(self, seed):
        rng = np.random.default_rng(seed)
        n = 20
        blocks = rng.integers(0, 4, size=n).tolist()
        matroid = PartitionMatroid(
            blocks, {b: int(rng.integers(1, 3)) for b in range(4)}
        )
        basis = set(matroid.extend_to_basis(frozenset()))
        inside = np.array(sorted(basis), dtype=int)
        outside = np.array([u for u in range(n) if u not in basis], dtype=int)
        mask = matroid.swap_feasibility(basis, outside, inside)
        for i, incoming in enumerate(outside):
            allowed = set(matroid.swap_candidates(basis, int(incoming)))
            assert {int(inside[j]) for j in np.nonzero(mask[i])[0]} == allowed

    @pytest.mark.parametrize("seed", range(4))
    def test_partition_pair_mask_matches_is_independent(self, seed):
        rng = np.random.default_rng(seed)
        n = 14
        blocks = rng.integers(0, 3, size=n).tolist()
        matroid = PartitionMatroid(
            blocks, {b: int(rng.integers(1, 3)) for b in range(3)}
        )
        mask = matroid.pair_feasibility_mask()
        for x in range(n):
            for y in range(n):
                if x == y:
                    continue
                assert mask[x, y] == matroid.is_independent({x, y})

    def test_uniform_masks(self):
        matroid = UniformMatroid(6, 3)
        assert matroid.pair_feasibility_mask().all()
        assert not UniformMatroid(6, 1).pair_feasibility_mask().any()
        mask = matroid.swap_feasibility(
            {0, 1, 2}, np.array([3, 4]), np.array([0, 1, 2])
        )
        assert mask.shape == (2, 3) and mask.all()


class TestBlockedTriangleCheck:
    @staticmethod
    def _brute_force(matrix: np.ndarray, tolerance: float = 1e-9):
        n = matrix.shape[0]
        found = []
        for y in range(n):
            for x in range(n):
                for z in range(n):
                    if len({x, y, z}) != 3:
                        continue
                    gap = matrix[x, z] - matrix[x, y] - matrix[y, z]
                    if gap > tolerance:
                        found.append((x, y, z))
        return found

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force(self, seed, monkeypatch):
        # Small block size so the blocked path actually iterates.
        monkeypatch.setattr(
            "repro.metrics.validation._TRIANGLE_BLOCK_ELEMENTS", 3 * 12 * 12
        )
        rng = np.random.default_rng(seed)
        matrix = rng.uniform(0.0, 3.0, size=(12, 12))
        matrix = (matrix + matrix.T) / 2.0
        np.fill_diagonal(matrix, 0.0)
        metric = DistanceMatrix(matrix)
        expected = set(self._brute_force(matrix))
        got = {
            (x, y, z)
            for x, y, z, _ in triangle_violations(metric, max_violations=10**6)
        }
        assert got == expected

    def test_violation_gap_values(self):
        matrix = np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 1.0],
                [5.0, 1.0, 0.0],
            ]
        )
        violations = triangle_violations(DistanceMatrix(matrix))
        assert violations
        for x, y, z, gap in violations:
            assert gap == pytest.approx(matrix[x, z] - matrix[x, y] - matrix[y, z])
