"""Tests for the genuinely submodular quality families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.log_det import LogDeterminantFunction
from repro.functions.mixtures import MixtureFunction, ScaledFunction
from repro.functions.modular import ModularFunction
from repro.functions.saturated import SaturatedCoverageFunction
from repro.functions.verification import (
    check_normalized,
    is_monotone,
    is_submodular,
)


class TestCoverage:
    def test_value_counts_covered_topics(self):
        f = CoverageFunction([[0, 1], [1, 2], [3]])
        assert f.value({0}) == pytest.approx(2.0)
        assert f.value({0, 1}) == pytest.approx(3.0)
        assert f.value({0, 1, 2}) == pytest.approx(4.0)

    def test_weighted_topics(self):
        f = CoverageFunction([[0], [1]], {0: 2.0, 1: 0.5})
        assert f.value({0, 1}) == pytest.approx(2.5)

    def test_marginal_only_new_topics(self):
        f = CoverageFunction([[0, 1], [1]])
        assert f.marginal(1, {0}) == 0.0
        assert f.marginal(0, {1}) == pytest.approx(1.0)

    def test_rejects_negative_topic_weight(self):
        with pytest.raises(InvalidParameterError):
            CoverageFunction([[0]], {0: -1.0})

    def test_random_generator_properties(self):
        f = CoverageFunction.random(8, 10, topics_per_element=3, seed=0)
        check_normalized(f)
        assert is_monotone(f)
        assert is_submodular(f)

    def test_covered_topics(self):
        f = CoverageFunction([[0, 1], [2]])
        assert f.covered_topics({0, 1}) == {0, 1, 2}
        assert f.topics_of(1) == frozenset({2})


class TestSaturatedCoverage:
    def _similarity(self):
        rng = np.random.default_rng(1)
        features = rng.uniform(0.1, 1.0, size=(8, 4))
        unit = features / np.linalg.norm(features, axis=1)[:, None]
        return np.clip(unit @ unit.T, 0.0, 1.0)

    def test_normalized_monotone_submodular(self):
        f = SaturatedCoverageFunction(self._similarity(), saturation=0.3)
        check_normalized(f)
        assert is_monotone(f)
        assert is_submodular(f)

    def test_saturation_caps_value(self):
        similarity = self._similarity()
        f = SaturatedCoverageFunction(similarity, saturation=0.25)
        full_value = f.value(range(8))
        assert full_value <= 0.25 * similarity.sum() + 1e-9

    def test_marginal_matches_difference(self):
        f = SaturatedCoverageFunction(self._similarity(), saturation=0.5)
        subset = {1, 3}
        for u in (0, 2, 5):
            assert f.marginal(u, subset) == pytest.approx(
                f.value(subset | {u}) - f.value(subset)
            )

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            SaturatedCoverageFunction(np.ones((2, 3)))
        with pytest.raises(InvalidParameterError):
            SaturatedCoverageFunction(np.ones((2, 2)), saturation=0.0)
        with pytest.raises(InvalidParameterError):
            SaturatedCoverageFunction(-np.ones((2, 2)))

    def test_from_features(self):
        rng = np.random.default_rng(2)
        f = SaturatedCoverageFunction.from_features(rng.uniform(0.1, 1, (6, 3)))
        assert f.n == 6
        assert is_submodular(f)


class TestFacilityLocation:
    def test_value_is_sum_of_best_similarity(self):
        similarity = np.array(
            [
                [1.0, 0.2, 0.5],
                [0.2, 1.0, 0.1],
                [0.5, 0.1, 1.0],
            ]
        )
        f = FacilityLocationFunction(similarity)
        assert f.value({0}) == pytest.approx(1.0 + 0.2 + 0.5)
        assert f.value({0, 1}) == pytest.approx(1.0 + 1.0 + 0.5)

    def test_monotone_submodular(self):
        rng = np.random.default_rng(3)
        f = FacilityLocationFunction(rng.uniform(0, 1, size=(7, 7)))
        assert is_monotone(f)
        assert is_submodular(f)

    def test_marginal_matches_difference(self):
        rng = np.random.default_rng(4)
        f = FacilityLocationFunction(rng.uniform(0, 1, size=(6, 6)))
        subset = {0, 4}
        for u in (1, 2, 3, 5):
            assert f.marginal(u, subset) == pytest.approx(
                f.value(subset | {u}) - f.value(subset)
            )

    def test_from_distances(self):
        distances = np.array([[0.0, 2.0], [2.0, 0.0]])
        f = FacilityLocationFunction.from_distances(distances)
        assert f.value({0}) == pytest.approx(2.0)  # self similarity 2, other 0

    def test_rejects_negative_similarity(self):
        with pytest.raises(InvalidParameterError):
            FacilityLocationFunction(np.array([[0.0, -1.0], [-1.0, 0.0]]))


class TestLogDeterminant:
    def test_monotone_submodular(self):
        rng = np.random.default_rng(5)
        f = LogDeterminantFunction.from_features(rng.normal(size=(7, 3)), bandwidth=1.5)
        check_normalized(f)
        assert is_monotone(f)
        assert is_submodular(f)

    def test_orthogonal_kernel_is_additive(self):
        f = LogDeterminantFunction(np.eye(4))
        assert f.value({0, 1}) == pytest.approx(2 * np.log(2.0), rel=1e-6)

    def test_rejects_non_psd(self):
        bad = np.array([[0.0, 2.0], [2.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            LogDeterminantFunction(bad)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(InvalidParameterError):
            LogDeterminantFunction.from_features(np.zeros((3, 2)), bandwidth=0.0)


class TestMixtures:
    def test_scaled_function(self):
        f = ScaledFunction(ModularFunction([1.0, 2.0]), 3.0)
        assert f.value({0, 1}) == pytest.approx(9.0)
        assert f.marginal(1, set()) == pytest.approx(6.0)
        assert f.is_modular

    def test_scale_must_be_non_negative(self):
        with pytest.raises(InvalidParameterError):
            ScaledFunction(ModularFunction([1.0]), -1.0)

    def test_mixture_value_and_marginal(self):
        modular = ModularFunction([1.0, 0.0, 0.0])
        coverage = CoverageFunction([[0], [0], [1]])
        mixture = MixtureFunction([modular, coverage], [2.0, 1.0])
        assert mixture.value({0}) == pytest.approx(2.0 + 1.0)
        assert mixture.marginal(1, {0}) == pytest.approx(0.0)
        assert mixture.marginal(2, {0}) == pytest.approx(1.0)

    def test_mixture_of_submodular_is_submodular(self):
        rng = np.random.default_rng(6)
        facility = FacilityLocationFunction(rng.uniform(0, 1, size=(6, 6)))
        coverage = CoverageFunction.random(6, 5, seed=1)
        mixture = MixtureFunction([facility, coverage])
        assert is_monotone(mixture)
        assert is_submodular(mixture)

    def test_mixture_validation(self):
        with pytest.raises(InvalidParameterError):
            MixtureFunction([])
        with pytest.raises(InvalidParameterError):
            MixtureFunction([ModularFunction([1.0]), ModularFunction([1.0, 2.0])])
        with pytest.raises(InvalidParameterError):
            MixtureFunction([ModularFunction([1.0])], [1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            MixtureFunction([ModularFunction([1.0])], [-1.0])

    def test_mixture_is_modular_flag(self):
        modular_mix = MixtureFunction(
            [ModularFunction([1.0, 2.0]), ModularFunction([0.0, 1.0])]
        )
        assert modular_mix.is_modular
        nonmodular_mix = MixtureFunction(
            [ModularFunction([1.0, 2.0]), CoverageFunction([[0], [0]])]
        )
        assert not nonmodular_mix.is_modular
