"""Tests for the ``python -m repro.experiments`` command-line entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import TARGETS, main


class TestCli:
    def test_table_target_prints_rows(self, capsys):
        assert main(["table1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "GreedyB" in output

    def test_figure_target(self, capsys):
        assert main(["figure1", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "VPERTURBATION" in output

    def test_appendix_target(self, capsys):
        assert main(["appendix", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "greedy_ratio" in output

    def test_multiquery_target(self, capsys):
        assert main(["multiquery", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Multi-query serving" in output
        assert "Speedup" in output
        assert "False" not in output  # batched and naive selections agree

    def test_coreset_target(self, capsys):
        assert main(["coreset", "--quick"]) == 0
        output = capsys.readouterr().out
        assert "Sharded core-set solving" in output
        assert "Parity" in output

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["table99"])

    def test_targets_list_is_complete(self):
        assert set(TARGETS) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "table7",
            "table8",
            "figure1",
            "appendix",
            "multiquery",
            "coreset",
            "serve",
            "all",
        }
