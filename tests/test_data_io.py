"""Tests for instance serialization (save_instance / load_instance)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import greedy_diversify
from repro.data.io import load_instance, save_instance
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError


class TestRoundTrip:
    def test_arrays_and_tradeoff_preserved(self, tmp_path):
        instance = make_synthetic_instance(12, seed=1)
        path = save_instance(
            tmp_path / "instance", instance.weights, instance.metric, instance.tradeoff
        )
        loaded = load_instance(path)
        assert loaded.n == 12
        assert loaded.tradeoff == pytest.approx(instance.tradeoff)
        assert np.allclose(loaded.weights, instance.weights)
        assert np.allclose(loaded.distances, instance.distances)

    def test_npz_suffix_added(self, tmp_path):
        instance = make_synthetic_instance(5, seed=2)
        path = save_instance(
            tmp_path / "noext", instance.weights, instance.distances, 0.2
        )
        assert path.suffix == ".npz"
        assert path.exists()

    def test_labels_and_metadata_round_trip(self, tmp_path):
        instance = make_synthetic_instance(4, seed=3)
        labels = [f"doc-{i}" for i in range(4)]
        path = save_instance(
            tmp_path / "labelled",
            instance.weights,
            instance.distances,
            0.5,
            labels=labels,
            metadata={"query": "q17", "source": "unit-test"},
        )
        loaded = load_instance(path)
        assert loaded.labels == labels
        assert loaded.metadata == {"query": "q17", "source": "unit-test"}

    def test_objective_reassembly_gives_same_solution(self, tmp_path):
        instance = make_synthetic_instance(15, seed=4)
        path = save_instance(
            tmp_path / "solve", instance.weights, instance.distances, instance.tradeoff
        )
        loaded = load_instance(path)
        original = greedy_diversify(instance.objective, 5)
        reloaded = greedy_diversify(loaded.objective, 5)
        assert original.selected == reloaded.selected
        assert original.objective_value == pytest.approx(reloaded.objective_value)


class TestValidation:
    def test_mismatched_sizes_rejected(self, tmp_path):
        instance = make_synthetic_instance(6, seed=5)
        with pytest.raises(InvalidParameterError):
            save_instance(
                tmp_path / "bad", instance.weights[:-1], instance.distances, 0.2
            )

    def test_bad_labels_rejected(self, tmp_path):
        instance = make_synthetic_instance(6, seed=6)
        with pytest.raises(InvalidParameterError):
            save_instance(
                tmp_path / "bad",
                instance.weights,
                instance.distances,
                0.2,
                labels=["only-one"],
            )

    def test_negative_tradeoff_rejected(self, tmp_path):
        instance = make_synthetic_instance(6, seed=7)
        with pytest.raises(InvalidParameterError):
            save_instance(tmp_path / "bad", instance.weights, instance.distances, -0.1)

    def test_invalid_distances_rejected(self, tmp_path):
        with pytest.raises(Exception):
            save_instance(
                tmp_path / "bad", [1.0, 2.0], np.array([[0.0, -1.0], [-1.0, 0.0]]), 0.2
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_instance(tmp_path / "does-not-exist.npz")

    def test_non_instance_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(InvalidParameterError):
            load_instance(path)
