"""Tests for the dynamic-update machinery (Section 6)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.dynamic.engine import DynamicDiversifier
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    PerturbationType,
    WeightDecrease,
    WeightIncrease,
    describe,
)
from repro.dynamic.update_rules import (
    best_swap,
    oblivious_update,
    required_updates_for_weight_decrease,
    update_until_stable,
)
from repro.exceptions import InvalidParameterError, PerturbationError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix


class TestPerturbationModel:
    def test_kinds(self):
        assert WeightIncrease(0, 1.0).kind is PerturbationType.WEIGHT_INCREASE
        assert WeightDecrease(0, 1.0).kind is PerturbationType.WEIGHT_DECREASE
        assert DistanceIncrease(0, 1, 1.0).kind is PerturbationType.DISTANCE_INCREASE
        assert DistanceDecrease(0, 1, 1.0).kind is PerturbationType.DISTANCE_DECREASE

    def test_deltas_must_be_positive(self):
        with pytest.raises(PerturbationError):
            WeightIncrease(0, 0.0)
        with pytest.raises(PerturbationError):
            WeightDecrease(0, -1.0)
        with pytest.raises(PerturbationError):
            DistanceIncrease(0, 1, 0.0)

    def test_distance_perturbation_needs_distinct_endpoints(self):
        with pytest.raises(PerturbationError):
            DistanceIncrease(2, 2, 1.0)

    def test_describe(self):
        assert "Type I" in describe(WeightIncrease(3, 0.5))
        assert "Type IV" in describe(DistanceDecrease(0, 1, 0.25))


class TestUpdateRules:
    def _objective(self):
        weights = ModularFunction([1.0, 0.2, 0.3, 0.1])
        metric = DistanceMatrix(
            np.array(
                [
                    [0.0, 1.0, 1.0, 1.0],
                    [1.0, 0.0, 1.5, 1.2],
                    [1.0, 1.5, 0.0, 1.9],
                    [1.0, 1.2, 1.9, 0.0],
                ]
            )
        )
        return Objective(weights, metric, tradeoff=1.0)

    def test_best_swap_finds_improving_move(self):
        objective = self._objective()
        solution = {0, 1}
        move = best_swap(objective, solution)
        assert move is not None
        incoming, outgoing, gain = move
        assert gain == pytest.approx(
            objective.value(solution - {outgoing} | {incoming})
            - objective.value(solution)
        )
        assert gain > 0

    def test_best_swap_none_at_local_optimum(self):
        objective = self._objective()
        # {2, 3} has the largest pairwise distance and decent weight; check if
        # it is locally optimal, otherwise walk to the local optimum first.
        outcome = update_until_stable(objective, {2, 3})
        assert best_swap(objective, set(outcome.solution)) is None

    def test_oblivious_update_single_swap_only(self):
        objective = self._objective()
        outcome = oblivious_update(objective, {1, 3})
        assert outcome.num_swaps <= 1
        assert outcome.objective_value == pytest.approx(
            objective.value(outcome.solution)
        )

    def test_update_until_stable_improves_monotonically(self):
        objective = self._objective()
        outcome = update_until_stable(objective, {1, 3})
        gains = [gain for _, _, gain in outcome.swaps]
        assert all(g > 0 for g in gains)
        assert outcome.objective_value >= objective.value({1, 3})

    def test_update_until_stable_respects_cap(self):
        objective = self._objective()
        outcome = update_until_stable(objective, {1, 3}, max_updates=0)
        assert outcome.num_swaps == 0
        with pytest.raises(InvalidParameterError):
            update_until_stable(objective, {1, 3}, max_updates=-1)


class TestTheorem4Schedule:
    def test_small_decrease_single_update(self):
        assert required_updates_for_weight_decrease(10.0, 1.0, p=6) == 1

    def test_threshold_is_w_over_p_minus_2(self):
        w, p = 12.0, 6
        assert required_updates_for_weight_decrease(w, w / (p - 2), p) == 1
        assert required_updates_for_weight_decrease(w, w / (p - 2) + 0.5, p) >= 1

    def test_formula_matches_paper(self):
        w, delta, p = 10.0, 5.0, 7
        expected = math.ceil(math.log(w / (w - delta), (p - 2) / (p - 3)))
        assert required_updates_for_weight_decrease(w, delta, p) == expected

    def test_p_at_most_three_needs_single_update(self):
        assert required_updates_for_weight_decrease(10.0, 9.0, p=3) == 1

    def test_zero_delta_needs_no_update(self):
        assert required_updates_for_weight_decrease(10.0, 0.0, p=5) == 0

    def test_invalid_inputs(self):
        with pytest.raises(InvalidParameterError):
            required_updates_for_weight_decrease(-1.0, 0.5, 5)
        with pytest.raises(InvalidParameterError):
            required_updates_for_weight_decrease(1.0, -0.5, 5)
        with pytest.raises(InvalidParameterError):
            required_updates_for_weight_decrease(1.0, 2.0, 5)


class TestDynamicDiversifier:
    def _engine(self, n=10, p=4, seed=0, **kwargs) -> DynamicDiversifier:
        instance = make_synthetic_instance(n, seed=seed)
        return DynamicDiversifier(
            instance.weights,
            instance.distances,
            p,
            tradeoff=instance.tradeoff,
            **kwargs,
        )

    def test_initial_solution_is_greedy(self):
        instance = make_synthetic_instance(10, seed=0)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 4, tradeoff=instance.tradeoff
        )
        greedy = greedy_diversify(instance.objective, 4)
        assert engine.solution == greedy.selected

    def test_explicit_initial_solution(self):
        instance = make_synthetic_instance(8, seed=1)
        engine = DynamicDiversifier(
            instance.weights,
            instance.distances,
            3,
            tradeoff=instance.tradeoff,
            initial_solution=[0, 1, 2],
        )
        assert engine.solution == frozenset({0, 1, 2})

    def test_initial_solution_size_validated(self):
        instance = make_synthetic_instance(8, seed=1)
        with pytest.raises(InvalidParameterError):
            DynamicDiversifier(
                instance.weights,
                instance.distances,
                3,
                initial_solution=[0, 1],
            )

    def test_weight_increase_applied(self):
        engine = self._engine()
        element = next(iter(set(range(engine.n)) - engine.solution))
        before = engine.weight(element)
        engine.apply(WeightIncrease(element, 0.7))
        assert engine.weight(element) == pytest.approx(before + 0.7)

    def test_weight_decrease_cannot_go_negative(self):
        engine = self._engine()
        element = 0
        with pytest.raises(PerturbationError):
            engine.apply(WeightDecrease(element, engine.weight(element) + 1.0))

    def test_distance_perturbations_applied(self):
        engine = self._engine()
        before = engine.distance(0, 1)
        engine.apply(DistanceIncrease(0, 1, 0.05))
        assert engine.distance(0, 1) == pytest.approx(before + 0.05)
        engine.apply(DistanceDecrease(0, 1, 0.03))
        assert engine.distance(0, 1) == pytest.approx(before + 0.02)

    def test_metric_validation_rejects_triangle_breaking_change(self):
        engine = self._engine(validate_metric=True)
        before = engine.distance(0, 1)
        with pytest.raises(PerturbationError):
            engine.apply(DistanceIncrease(0, 1, 10.0))
        # rolled back
        assert engine.distance(0, 1) == pytest.approx(before)

    def test_update_improves_or_keeps_value(self):
        engine = self._engine()
        element = next(iter(set(range(engine.n)) - engine.solution))
        value_before = engine.solution_value
        outcome = engine.apply(WeightIncrease(element, 1.5))
        assert outcome.objective_value >= value_before - 1e-9

    def test_history_records_everything(self):
        engine = self._engine()
        engine.apply(WeightIncrease(1, 0.2))
        engine.apply(DistanceDecrease(0, 1, 0.01))
        assert len(engine.history) == 2
        assert isinstance(engine.history[0][0], WeightIncrease)

    def test_history_is_bounded(self):
        # Regression: an unbounded history list grew without limit on long
        # streams; the deque must cap at history_limit, keeping the newest.
        engine = self._engine(history_limit=5)
        assert engine.history_limit == 5
        for _ in range(12):
            engine.apply(WeightIncrease(1, 0.01))
        assert len(engine.history) == 5
        assert engine.applied_events == 12

    def test_history_limit_none_keeps_everything(self):
        engine = self._engine(history_limit=None)
        for _ in range(8):
            engine.apply(WeightIncrease(1, 0.01))
        assert len(engine.history) == 8

    def test_rebuild_recomputes_greedy(self):
        engine = self._engine()
        engine.apply(WeightIncrease(0, 2.0))
        rebuilt = engine.rebuild()
        greedy = greedy_diversify(engine.objective, engine.p)
        assert rebuilt == greedy.selected

    def test_p_validation(self):
        instance = make_synthetic_instance(5, seed=2)
        with pytest.raises(InvalidParameterError):
            DynamicDiversifier(instance.weights, instance.distances, 0)
        with pytest.raises(InvalidParameterError):
            DynamicDiversifier(instance.weights, instance.distances, 6)

    def test_external_mutation_does_not_leak_into_engine(self):
        # Aliasing regression: the engine must own independent copies of both
        # the weight vector and the distance matrix.
        weights = np.array([1.0, 0.2, 0.3, 0.1])
        distances = np.array(
            [
                [0.0, 1.0, 1.0, 1.0],
                [1.0, 0.0, 1.5, 1.2],
                [1.0, 1.5, 0.0, 1.9],
                [1.0, 1.2, 1.9, 0.0],
            ]
        )
        engine = DynamicDiversifier(weights, distances, 2, tradeoff=1.0)
        weights[0] = 99.0
        distances[0, 1] = 99.0
        distances[1, 0] = 99.0
        assert engine.weight(0) == pytest.approx(1.0)
        assert engine.distance(0, 1) == pytest.approx(1.0)

    def test_engine_mutation_does_not_leak_out(self):
        weights = np.array([1.0, 0.2, 0.3, 0.1])
        distances = np.array(
            [
                [0.0, 1.0, 1.0, 1.0],
                [1.0, 0.0, 1.5, 1.2],
                [1.0, 1.5, 0.0, 1.9],
                [1.0, 1.2, 1.9, 0.0],
            ]
        )
        engine = DynamicDiversifier(weights, distances, 2, tradeoff=1.0)
        engine.apply(WeightIncrease(0, 0.5))
        engine.apply(DistanceIncrease(0, 1, 0.05))
        assert weights[0] == pytest.approx(1.0)
        assert distances[0, 1] == pytest.approx(1.0)

    def test_distance_matrix_input_is_copied(self):
        from repro.metrics.matrix import DistanceMatrix as DM

        matrix = DM(
            np.array(
                [
                    [0.0, 1.0, 1.0],
                    [1.0, 0.0, 1.5],
                    [1.0, 1.5, 0.0],
                ]
            )
        )
        engine = DynamicDiversifier([1.0, 0.2, 0.3], matrix, 2, tradeoff=1.0)
        matrix.set_distance(0, 1, 1.3)
        assert engine.distance(0, 1) == pytest.approx(1.0)

    def test_weights_accept_plain_lists_and_arrays(self):
        distances = np.array([[0.0, 1.0], [1.0, 0.0]])
        from_list = DynamicDiversifier([1.0, 0.5], distances, 1, tradeoff=1.0)
        from_array = DynamicDiversifier(
            np.array([1.0, 0.5]), distances, 1, tradeoff=1.0
        )
        assert from_list.weight(1) == from_array.weight(1) == pytest.approx(0.5)


class TestUpdateRuleCandidates:
    def _objective(self):
        weights = ModularFunction([1.0, 0.2, 0.3, 0.1, 0.6])
        metric = DistanceMatrix(
            np.array(
                [
                    [0.0, 1.0, 1.0, 1.0, 1.1],
                    [1.0, 0.0, 1.5, 1.2, 1.4],
                    [1.0, 1.5, 0.0, 1.9, 1.0],
                    [1.0, 1.2, 1.9, 0.0, 1.3],
                    [1.1, 1.4, 1.0, 1.3, 0.0],
                ]
            )
        )
        return Objective(weights, metric, tradeoff=1.0)

    def test_best_swap_respects_pool(self):
        objective = self._objective()
        solution = {0, 1}
        move = best_swap(objective, solution, candidates=[0, 1, 4])
        if move is not None:
            incoming, outgoing, gain = move
            assert incoming in {0, 1, 4}
            assert gain == pytest.approx(
                objective.value(solution - {outgoing} | {incoming})
                - objective.value(solution)
            )

    def test_best_swap_pool_equals_restricted_instance(self):
        objective = self._objective()
        solution = {0, 1}
        pool = [0, 1, 2, 4]
        restricted = objective.restrict(pool)
        local_move = best_swap(
            restricted.objective, set(restricted.to_local(solution))
        )
        pooled_move = best_swap(objective, solution, candidates=pool)
        if local_move is None:
            assert pooled_move is None
        else:
            lifted = (
                pool[local_move[0]],
                pool[local_move[1]],
                local_move[2],
            )
            assert pooled_move[:2] == lifted[:2]
            assert pooled_move[2] == pytest.approx(lifted[2])

    def test_solution_outside_pool_rejected(self):
        objective = self._objective()
        with pytest.raises(InvalidParameterError):
            best_swap(objective, {0, 3}, candidates=[0, 1, 2])

    def test_update_until_stable_stays_in_pool(self):
        objective = self._objective()
        pool = [0, 1, 2]
        outcome = update_until_stable(objective, {0, 1}, candidates=pool)
        assert outcome.solution <= set(pool)
        assert best_swap(objective, set(outcome.solution), candidates=pool) is None


class TestRatioMaintenance:
    """Corollary 4: starting from a good solution, a single oblivious update
    keeps the approximation ratio at most 3 for all four perturbation types
    (with the Type II magnitude restriction)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_weight_increase_keeps_ratio_3(self, seed):
        instance = make_synthetic_instance(9, seed=seed)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 4, tradeoff=instance.tradeoff
        )
        rng = np.random.default_rng(seed)
        element = int(rng.integers(0, 9))
        engine.apply(WeightIncrease(element, float(rng.uniform(0.1, 1.0))), updates=1)
        assert engine.approximation_ratio() <= 3.0 + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_bounded_weight_decrease_keeps_ratio_3(self, seed):
        instance = make_synthetic_instance(9, seed=seed)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 4, tradeoff=instance.tradeoff
        )
        rng = np.random.default_rng(seed + 100)
        element = int(rng.integers(0, 9))
        # Restrict the decrease to w/(p-2) of the current solution value
        # (Theorem 4's single-update regime), and to the element's weight.
        cap = min(engine.solution_value / (engine.p - 2), engine.weight(element))
        if cap <= 0:
            pytest.skip("element has zero weight")
        engine.apply(WeightDecrease(element, float(cap * 0.9)), updates=1)
        assert engine.approximation_ratio() <= 3.0 + 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_distance_perturbations_keep_ratio_3(self, seed):
        instance = make_synthetic_instance(9, seed=seed)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 4, tradeoff=instance.tradeoff
        )
        rng = np.random.default_rng(seed + 200)
        u, v = map(int, rng.choice(9, size=2, replace=False))
        current = engine.distance(u, v)
        target = float(rng.uniform(1.0, 2.0))
        if target > current:
            engine.apply(DistanceIncrease(u, v, target - current), updates=1)
        elif target < current:
            engine.apply(DistanceDecrease(u, v, current - target), updates=1)
        assert engine.approximation_ratio() <= 3.0 + 1e-9

    def test_large_weight_decrease_with_theorem4_schedule(self):
        instance = make_synthetic_instance(9, seed=7)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 5, tradeoff=instance.tradeoff
        )
        # Decrease a solution element's weight by a large fraction and let the
        # engine apply the Theorem 4 multi-update schedule automatically.
        element = next(iter(engine.solution))
        delta = engine.weight(element) * 0.95
        if delta <= 0:
            pytest.skip("element has zero weight")
        engine.apply(WeightDecrease(element, delta))
        assert engine.approximation_ratio() <= 3.0 + 1e-9
