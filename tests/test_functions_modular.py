"""Tests for modular quality functions (ModularFunction, ZeroFunction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction, ZeroFunction
from repro.functions.verification import (
    check_normalized,
    is_monotone,
    is_submodular,
)


class TestModularFunction:
    def test_value_is_sum_of_weights(self):
        f = ModularFunction([1.0, 2.0, 3.0])
        assert f.value({0, 2}) == pytest.approx(4.0)
        assert f.value([]) == 0.0

    def test_marginal_is_weight(self):
        f = ModularFunction([1.0, 2.0, 3.0])
        assert f.marginal(1, {0}) == pytest.approx(2.0)
        assert f.marginal(1, {1, 0}) == 0.0

    def test_is_modular_flag(self):
        assert ModularFunction([1.0]).is_modular
        assert ZeroFunction(3).is_modular

    def test_rejects_negative_weights(self):
        with pytest.raises(InvalidParameterError):
            ModularFunction([1.0, -0.5])

    def test_rejects_2d_weights(self):
        with pytest.raises(InvalidParameterError):
            ModularFunction(np.zeros((2, 2)))

    def test_set_weight_and_copy(self):
        f = ModularFunction([1.0, 2.0])
        clone = f.copy()
        f.set_weight(0, 5.0)
        assert f.weight(0) == 5.0
        assert clone.weight(0) == 1.0
        with pytest.raises(InvalidParameterError):
            f.set_weight(0, -1.0)

    def test_weights_property_is_copy(self):
        f = ModularFunction([1.0, 2.0])
        w = f.weights
        w[0] = 99.0
        assert f.weight(0) == 1.0

    def test_is_normalized_monotone_submodular(self):
        f = ModularFunction([0.5, 1.5, 0.0, 2.0])
        check_normalized(f)
        assert is_monotone(f)
        assert is_submodular(f)


class TestZeroFunction:
    def test_always_zero(self):
        f = ZeroFunction(5)
        assert f.value({0, 1, 2}) == 0.0
        assert f.marginal(3, {0}) == 0.0

    def test_n(self):
        assert ZeroFunction(7).n == 7
        assert len(ZeroFunction(7)) == 7

    def test_rejects_negative_n(self):
        with pytest.raises(InvalidParameterError):
            ZeroFunction(-1)
