"""Integration tests: end-to-end flows across subsystems and the examples."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

from repro import (
    DynamicDiversifier,
    PartitionMatroid,
    SyntheticLetorCorpus,
    UniformMatroid,
    WeightIncrease,
    greedy_diversify,
    local_search_diversify,
    make_portfolio_instance,
    make_synthetic_instance,
    refine_with_local_search,
    solve,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestEndToEnd:
    def test_search_pipeline_greedy_then_ls(self):
        """The paper's main experimental pipeline on LETOR-like data."""
        corpus = SyntheticLetorCorpus(num_queries=1, docs_per_query=40, seed=0)
        query = corpus.query(0).top_documents(30)
        objective = query.objective(tradeoff=0.2)
        greedy = greedy_diversify(objective, 8)
        refined = refine_with_local_search(objective, greedy, p=8)
        assert refined.objective_value >= greedy.objective_value - 1e-9
        assert refined.size == 8

    def test_matroid_pipeline_portfolio(self):
        """Submodular quality + partition matroid, solved by local search."""
        instance = make_portfolio_instance(18, sector_capacity=1, seed=3)
        result = local_search_diversify(instance.objective, instance.matroid)
        assert instance.matroid.is_independent(result.selected)
        sectors = {instance.sectors[i] for i in result.selected}
        assert len(sectors) == len(result.selected)  # one stock per sector

    def test_dynamic_pipeline(self):
        """Initial greedy solution maintained across a perturbation stream."""
        instance = make_synthetic_instance(12, seed=5)
        engine = DynamicDiversifier(
            instance.weights, instance.distances, 4, tradeoff=instance.tradeoff
        )
        for element in (0, 3, 7):
            engine.apply(WeightIncrease(element, 0.4))
        assert len(engine.history) == 3
        assert engine.approximation_ratio() <= 3.0 + 1e-9

    def test_solve_facade_matches_direct_calls(self):
        instance = make_synthetic_instance(15, seed=8)
        via_facade = solve(instance.quality, instance.metric, tradeoff=0.2, p=5)
        direct = greedy_diversify(instance.objective, 5)
        assert via_facade.selected == direct.selected

    def test_uniform_matroid_and_cardinality_agree(self):
        instance = make_synthetic_instance(12, seed=9)
        objective = instance.objective
        greedy = greedy_diversify(objective, 4)
        local = local_search_diversify(
            objective, UniformMatroid(12, 4), initial=greedy.selected
        )
        assert local.objective_value >= greedy.objective_value - 1e-9

    def test_partition_matroid_blocks_respected_in_facade(self):
        instance = make_synthetic_instance(12, seed=10)
        blocks = [i % 4 for i in range(12)]
        matroid = PartitionMatroid(blocks, {b: 1 for b in range(4)})
        result = solve(instance.quality, instance.metric, tradeoff=0.2, matroid=matroid)
        chosen_blocks = [blocks[i] for i in result.selected]
        assert len(chosen_blocks) == len(set(chosen_blocks))


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "document_search.py",
        "portfolio_selection.py",
        "facility_placement.py",
        "dynamic_stream.py",
        "streaming_ranking.py",
    ],
)
def test_examples_run(script, monkeypatch, capsys):
    """Every example script must execute end-to-end and print something."""
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path), "--quick"])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"example {script} produced no output"
