"""Event batches and the batched engine tick.

The load-bearing properties:

* a single-event batch through :meth:`DynamicDiversifier.apply_events` is
  *exactly* the legacy :meth:`DynamicDiversifier.apply` path — same solution,
  same swaps, same objective;
* the no-swap certificate never changes results (engines with the
  certificate on and off agree event for event);
* a multi-event tick applies the same instance mutations as the equivalent
  sequential stream and leaves a swap-stable solution when given budget;
* inserts and deletes round-trip the universe size and keep the solution
  feasible.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.dynamic.engine import DynamicDiversifier
from repro.dynamic.events import EventBatch, EventBatchBuilder
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    WeightDecrease,
    WeightIncrease,
)
from repro.exceptions import PerturbationError

seeds = st.integers(min_value=0, max_value=10_000)


def _instance(n: int, seed: int):
    """Coarse-valued random instance: weights in {0.00 … 10.00}, distances in
    [1, 2] rounded to 2 decimals, so true swap gains are either exactly zero
    or ≥ ~1e-3 — far beyond the certificate's 1e-9 tolerance."""
    rng = np.random.default_rng(seed)
    weights = np.round(rng.uniform(0, 10, n), 2)
    distances = np.round(rng.uniform(1, 2, (n, n)), 2)
    distances = (distances + distances.T) / 2
    np.fill_diagonal(distances, 0.0)
    return weights, distances


def _random_perturbation(engine, rng):
    kind = rng.integers(0, 4)
    if kind == 0:
        return WeightIncrease(
            int(rng.integers(engine.n)), round(float(rng.uniform(0.1, 2)), 2)
        )
    if kind == 1:
        element = int(rng.integers(engine.n))
        current = engine.weight(element)
        if current < 0.05:
            return WeightIncrease(element, 0.5)
        return WeightDecrease(element, round(min(current * 0.5, 1.0), 3))
    u, v = map(int, rng.choice(engine.n, size=2, replace=False))
    if kind == 2:
        return DistanceIncrease(u, v, round(float(rng.uniform(0.01, 0.2)), 2))
    current = engine.distance(u, v)
    if current < 0.05:
        return DistanceIncrease(u, v, 0.1)
    return DistanceDecrease(u, v, round(min(current * 0.25, 0.2), 2))


class TestBuilderValidation:
    def test_rejects_bad_values(self):
        builder = EventBatchBuilder()
        with pytest.raises(PerturbationError):
            builder.set_weight(0, -1.0)
        with pytest.raises(PerturbationError):
            builder.set_weight(0, float("nan"))
        with pytest.raises(PerturbationError):
            builder.change_weight(0, 0.0)
        with pytest.raises(PerturbationError):
            builder.set_distance(1, 1, 2.0)
        with pytest.raises(PerturbationError):
            builder.change_distance(0, 1, float("inf"))
        with pytest.raises(PerturbationError):
            builder.insert(1.0, distances=np.ones(3), point=np.ones(2))

    def test_rejects_mixed_insert_representations(self):
        builder = EventBatchBuilder()
        builder.insert(1.0, distances=np.ones(3))
        builder.insert(1.0, point=np.ones(2))
        with pytest.raises(PerturbationError):
            builder.build()

    def test_counts_and_touched(self):
        builder = EventBatchBuilder()
        builder.change_weight(3, 1.0).set_weight(5, 2.0)
        builder.change_distance(1, 7, 0.5).set_distance(2, 4, 1.5)
        builder.delete(9)
        batch = builder.build()
        assert len(builder) == batch.num_events == 5
        assert not batch.is_empty
        assert batch.touched_elements().tolist() == [1, 2, 3, 4, 5, 7, 9]

    def test_from_perturbations_uses_deltas(self):
        batch = EventBatch.from_perturbations(
            [
                WeightIncrease(0, 1.0),
                WeightDecrease(1, 0.5),
                DistanceIncrease(2, 3, 0.1),
            ]
        )
        assert batch.weight_deltas.tolist() == [1.0, -0.5]
        assert batch.weight_set_elements.size == 0
        assert batch.distance_delta_pairs.tolist() == [[2, 3]]

    def test_batch_arrays_are_readonly(self):
        batch = EventBatch.from_perturbations([WeightIncrease(0, 1.0)])
        with pytest.raises(ValueError):
            batch.weight_deltas[0] = 2.0


class TestSingleEventEquivalence:
    @given(n=st.integers(min_value=8, max_value=16), seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_batched_tick_matches_legacy_apply(self, n, seed):
        weights, distances = _instance(n, seed)
        p = max(4, n // 3)
        legacy = DynamicDiversifier(weights, distances, p)
        batched = DynamicDiversifier(weights, distances, p)
        uncertified = DynamicDiversifier(weights, distances, p, use_certificate=False)
        rng = np.random.default_rng(seed + 1)
        for _ in range(30):
            perturbation = _random_perturbation(legacy, rng)
            expected = legacy.apply(perturbation)
            via_batch = batched.apply_events(
                EventBatch.from_perturbations([perturbation])
            )
            plain_scan = uncertified.apply(perturbation)
            assert via_batch.solution == expected.solution
            assert via_batch.swaps == expected.swaps
            assert via_batch.objective_value == pytest.approx(
                expected.objective_value, abs=1e-9
            )
            # The certificate can only skip scans it proves fruitless; the
            # certificate-free engine must land on the same trajectory.
            assert plain_scan.solution == expected.solution
            assert plain_scan.swaps == expected.swaps

    @given(n=st.integers(min_value=8, max_value=14), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_explicit_update_budget_matches(self, n, seed):
        weights, distances = _instance(n, seed)
        p = max(3, n // 3)
        legacy = DynamicDiversifier(weights, distances, p)
        batched = DynamicDiversifier(weights, distances, p)
        rng = np.random.default_rng(seed + 2)
        for _ in range(15):
            perturbation = _random_perturbation(legacy, rng)
            expected = legacy.apply(perturbation, updates=1)
            actual = batched.apply_events(
                EventBatch.from_perturbations([perturbation]), updates=1
            )
            assert actual.solution == expected.solution
            assert actual.swaps == expected.swaps


class TestMultiEventTicks:
    @given(n=st.integers(min_value=10, max_value=16), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_tick_instance_state_matches_sequential(self, n, seed):
        """One multi-event tick mutates the instance exactly like the same
        events applied one at a time (resolution order: sets, then deltas)."""
        weights, distances = _instance(n, seed)
        p = 4
        ticked = DynamicDiversifier(weights, distances, p)
        stepped = DynamicDiversifier(weights, distances, p)
        rng = np.random.default_rng(seed + 3)
        builder = EventBatchBuilder()
        perturbations = []
        for _ in range(12):
            perturbation = _random_perturbation(stepped, rng)
            builder.add(perturbation)
            perturbations.append(perturbation)
            stepped.apply(perturbation)
        ticked.apply_events(builder.build(), updates=3 * p)
        for element in range(n):
            assert ticked.weight(element) == pytest.approx(
                stepped.weight(element), abs=1e-9
            )
        for u in range(n):
            for v in range(u + 1, n):
                assert ticked.distance(u, v) == pytest.approx(
                    stepped.distance(u, v), abs=1e-9
                )

    @given(n=st.integers(min_value=10, max_value=16), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_tick_with_budget_reaches_swap_stability(self, n, seed):
        weights, distances = _instance(n, seed)
        p = 4
        engine = DynamicDiversifier(weights, distances, p)
        # Generate against a sequentially-updated twin: repeated decreases on
        # one element must see each other, or their batched sum can push a
        # weight below zero and the tick correctly rejects it.
        shadow = DynamicDiversifier(weights, distances, p)
        rng = np.random.default_rng(seed + 4)
        builder = EventBatchBuilder()
        for _ in range(10):
            perturbation = _random_perturbation(shadow, rng)
            builder.add(perturbation)
            shadow.apply(perturbation)
        engine.apply_events(builder.build(), updates=5 * p)
        # No strictly improving single swap may remain.
        matrix = np.array([[engine.distance(u, v) for v in range(engine.n)]
                           for u in range(engine.n)])
        w = np.array([engine.weight(e) for e in range(engine.n)])
        inside, outside = kernels.solution_split(engine.n, engine.solution)
        margins = kernels.set_margins(matrix, inside)
        gains = kernels.swap_gain_matrix(
            w, matrix, engine.tradeoff, margins, outside, inside
        )
        assert kernels.best_swap_scan_from_gains(gains, outside, inside) is None


class TestInsertDelete:
    @given(n=st.integers(min_value=8, max_value=14), seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_insert_delete_round_trips_universe(self, n, seed):
        weights, distances = _instance(n, seed)
        p = 3
        engine = DynamicDiversifier(weights, distances, p)
        rng = np.random.default_rng(seed + 5)
        builder = EventBatchBuilder()
        inserts = int(rng.integers(1, 4))
        for i in range(inserts):
            row = np.round(rng.uniform(1, 2, n + i), 2)
            builder.insert(round(float(rng.uniform(0, 10)), 2), distances=row)
        outcome = engine.apply_events(builder.build())
        new_ids = outcome.metadata["inserted"]
        assert engine.n == n + inserts
        assert engine.active_count == n + inserts
        assert len(engine.solution) == p

        remover = EventBatchBuilder()
        for element in new_ids:
            remover.delete(element)
        outcome = engine.apply_events(remover.build())
        assert engine.active_count == n
        assert len(engine.solution) == p
        assert not set(new_ids) & engine.solution
        # Retired slots can never re-enter the solution until revived.
        assert set(engine.active_elements().tolist()) == set(range(n))

    def test_insert_reuses_retired_slot(self):
        weights, distances = _instance(10, 0)
        engine = DynamicDiversifier(weights, distances, 3)
        row = np.round(np.random.default_rng(1).uniform(1, 2, 10), 2)
        first = engine.apply_events(
            EventBatchBuilder().insert(5.0, distances=row).build()
        ).metadata["inserted"][0]
        engine.apply_events(EventBatchBuilder().delete(first).build())
        revived = engine.apply_events(
            EventBatchBuilder()
            .insert(2.0, distances=np.concatenate([row, [0.0]]))
            .build()
        ).metadata["inserted"][0]
        assert revived == first
        assert engine.weight(first) == 2.0

    def test_member_delete_refills_to_p(self):
        weights, distances = _instance(12, 3)
        engine = DynamicDiversifier(weights, distances, 4)
        victim = sorted(engine.solution)[0]
        outcome = engine.apply_events(EventBatchBuilder().delete(victim).build())
        assert victim not in engine.solution
        assert len(engine.solution) == 4
        assert outcome.metadata["refills"]

    def test_delete_below_p_rejected(self):
        weights, distances = _instance(5, 4)
        engine = DynamicDiversifier(weights, distances, 4)
        builder = EventBatchBuilder()
        builder.delete(0)
        builder.delete(1)
        with pytest.raises(PerturbationError):
            engine.apply_events(builder.build())

    def test_events_on_retired_slot_rejected(self):
        weights, distances = _instance(8, 5)
        engine = DynamicDiversifier(weights, distances, 3)
        engine.apply_events(EventBatchBuilder().delete(7).build())
        with pytest.raises(PerturbationError):
            engine.apply_events(EventBatchBuilder().change_weight(7, 1.0).build())
        with pytest.raises(PerturbationError):
            engine.apply_events(EventBatchBuilder().change_distance(0, 7, 0.1).build())

    def test_point_insert_rejected_by_dense_engine(self):
        weights, distances = _instance(8, 6)
        engine = DynamicDiversifier(weights, distances, 3)
        batch = EventBatchBuilder().insert(1.0, point=np.ones(3)).build()
        with pytest.raises(PerturbationError):
            engine.apply_events(batch)


class TestTickValidationRollsBack:
    def test_failed_distance_event_leaves_state_unchanged(self):
        weights, distances = _instance(10, 7)
        engine = DynamicDiversifier(weights, distances, 3)
        before_w = [engine.weight(e) for e in range(10)]
        before_d01 = engine.distance(0, 1)
        builder = EventBatchBuilder()
        builder.change_weight(2, 1.0)
        builder.change_distance(0, 1, -before_d01 - 5.0)  # would go negative
        with pytest.raises(PerturbationError):
            engine.apply_events(builder.build())
        assert [engine.weight(e) for e in range(10)] == before_w
        assert engine.distance(0, 1) == pytest.approx(before_d01)

    def test_weight_overdecrease_rejected_and_rolled_back(self):
        weights, distances = _instance(10, 8)
        engine = DynamicDiversifier(weights, distances, 3)
        target = int(np.argmax([engine.weight(e) for e in range(10)]))
        before = engine.weight(target)
        builder = EventBatchBuilder()
        builder.change_weight(target, -(before + 1.0))
        with pytest.raises(PerturbationError):
            engine.apply_events(builder.build())
        assert engine.weight(target) == pytest.approx(before)

    def test_aggregate_weight_decrease_schedules_multiple_updates(self):
        weights, distances = _instance(20, 9)
        engine = DynamicDiversifier(weights, distances, 6)
        members = sorted(engine.solution)[:3]
        builder = EventBatchBuilder()
        for member in members:
            current = engine.weight(member)
            if current > 0.1:
                builder.change_weight(member, -round(current * 0.9, 3))
        if not len(builder):
            pytest.skip("all sampled members had negligible weight")
        outcome = engine.apply_events(builder.build())
        assert outcome.metadata["planned_updates"] >= 1
