"""Tests for the concrete matroid families and the generic Matroid machinery."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    InfeasibleError,
    InvalidParameterError,
    MatroidError,
    NotIndependentError,
)
from repro.matroids.base import restriction_feasible_pairs
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.partition import PartitionMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.truncation import TruncatedMatroid
from repro.matroids.uniform import UniformMatroid


class TestUniformMatroid:
    def test_independence(self):
        matroid = UniformMatroid(5, 2)
        assert matroid.is_independent(set())
        assert matroid.is_independent({0, 4})
        assert not matroid.is_independent({0, 1, 2})

    def test_rank(self):
        matroid = UniformMatroid(5, 2)
        assert matroid.rank() == 2
        assert matroid.rank({0}) == 1
        assert matroid.rank({0, 1, 2, 3}) == 2

    def test_out_of_range_elements_dependent(self):
        assert not UniformMatroid(3, 2).is_independent({0, 5})

    def test_p_clamped_to_n(self):
        assert UniformMatroid(3, 10).p == 3

    def test_swap_candidates_all_members(self):
        matroid = UniformMatroid(5, 3)
        assert set(matroid.swap_candidates({0, 1, 2}, 4)) == {0, 1, 2}
        assert list(matroid.swap_candidates({0, 1, 2}, 1)) == []

    def test_axioms(self):
        UniformMatroid(6, 3).check_axioms()

    def test_basis_and_extension(self):
        matroid = UniformMatroid(5, 3)
        basis = matroid.extend_to_basis({1}, preference=[4, 3, 2, 1, 0])
        assert basis == frozenset({1, 4, 3})
        assert matroid.is_basis(basis)
        assert not matroid.is_basis({0})

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            UniformMatroid(-1, 2)
        with pytest.raises(InvalidParameterError):
            UniformMatroid(3, -1)


class TestPartitionMatroid:
    def _matroid(self) -> PartitionMatroid:
        return PartitionMatroid(["a", "a", "b", "b", "b"], {"a": 1, "b": 2})

    def test_independence(self):
        matroid = self._matroid()
        assert matroid.is_independent({0, 2, 3})
        assert not matroid.is_independent({0, 1})
        assert not matroid.is_independent({2, 3, 4})

    def test_rank(self):
        assert self._matroid().rank() == 3
        assert self._matroid().rank({0, 1}) == 1

    def test_default_capacity_is_one(self):
        matroid = PartitionMatroid(["x", "x", "y"])
        assert not matroid.is_independent({0, 1})
        assert matroid.is_independent({0, 2})

    def test_swap_candidates_respect_blocks(self):
        matroid = self._matroid()
        basis = {0, 2, 3}
        # incoming 1 is in block "a" which is full: only 0 can leave.
        assert set(matroid.swap_candidates(basis, 1)) == {0}
        # incoming 4 is in block "b" which is full: only 2 or 3 can leave.
        assert set(matroid.swap_candidates(basis, 4)) == {2, 3}

    def test_axioms(self):
        self._matroid().check_axioms()

    def test_uniform_blocks_constructor(self):
        matroid = PartitionMatroid.uniform_blocks([2, 3], [1, 2])
        assert matroid.n == 5
        assert matroid.rank() == 3
        assert matroid.capacity(0) == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            PartitionMatroid(["a"], {"a": -1})
        with pytest.raises(InvalidParameterError):
            PartitionMatroid.uniform_blocks([2], [1, 2])


class TestTransversalMatroid:
    def _matroid(self) -> TransversalMatroid:
        # Collections: C1 = {0, 1}, C2 = {1, 2}, C3 = {3}
        return TransversalMatroid(5, [[0, 1], [1, 2], [3]])

    def test_independence_via_matching(self):
        matroid = self._matroid()
        assert matroid.is_independent({0, 1, 3})
        assert matroid.is_independent({1, 2})
        assert not matroid.is_independent({0, 1, 2})  # only two sets cover {0,1,2}
        assert not matroid.is_independent({4})  # element in no collection

    def test_representatives_certificate(self):
        matroid = self._matroid()
        assignment = matroid.representatives({0, 1, 3})
        assert assignment is not None
        assert set(assignment.keys()) == {0, 1, 3}
        assert len(set(assignment.values())) == 3
        for element, collection in assignment.items():
            assert element in matroid.collections[collection]

    def test_representatives_none_when_dependent(self):
        assert self._matroid().representatives({0, 1, 2}) is None

    def test_rank(self):
        assert self._matroid().rank() == 3

    def test_axioms(self):
        self._matroid().check_axioms()

    def test_out_of_range_collection_rejected(self):
        with pytest.raises(InvalidParameterError):
            TransversalMatroid(2, [[0, 5]])


class TestGraphicMatroid:
    def _matroid(self) -> GraphicMatroid:
        # Triangle 0-1-2 plus a pendant edge 2-3.
        return GraphicMatroid(4, [(0, 1), (1, 2), (0, 2), (2, 3)])

    def test_forest_independent_cycle_dependent(self):
        matroid = self._matroid()
        assert matroid.is_independent({0, 1, 3})
        assert not matroid.is_independent({0, 1, 2})

    def test_self_loop_dependent(self):
        matroid = GraphicMatroid(2, [(0, 0), (0, 1)])
        assert not matroid.is_independent({0})
        assert matroid.is_independent({1})

    def test_rank_is_spanning_forest_size(self):
        assert self._matroid().rank() == 3

    def test_axioms(self):
        self._matroid().check_axioms()

    def test_edge_accessor(self):
        assert self._matroid().edge(3) == (2, 3)

    def test_invalid_edge_rejected(self):
        with pytest.raises(InvalidParameterError):
            GraphicMatroid(2, [(0, 5)])


class TestTruncatedMatroid:
    def test_cardinality_cap_applied(self):
        inner = PartitionMatroid(["a", "a", "b", "b"], {"a": 2, "b": 2})
        truncated = TruncatedMatroid(inner, 3)
        assert truncated.is_independent({0, 1, 2})
        assert not truncated.is_independent({0, 1, 2, 3})
        assert truncated.rank() == 3

    def test_inner_constraint_still_applies(self):
        inner = PartitionMatroid(["a", "a", "b"], {"a": 1, "b": 1})
        truncated = TruncatedMatroid(inner, 3)
        assert not truncated.is_independent({0, 1})

    def test_axioms(self):
        inner = PartitionMatroid(["a", "a", "b", "b"], {"a": 2, "b": 2})
        TruncatedMatroid(inner, 2).check_axioms()

    def test_swap_candidates_delegate(self):
        inner = UniformMatroid(4, 3)
        truncated = TruncatedMatroid(inner, 2)
        assert set(truncated.swap_candidates({0, 1}, 3)) == {0, 1}

    def test_negative_cap_rejected(self):
        with pytest.raises(InvalidParameterError):
            TruncatedMatroid(UniformMatroid(3, 2), -1)


class TestGenericMachinery:
    def test_extend_to_basis_rejects_dependent_input(self):
        with pytest.raises(NotIndependentError):
            UniformMatroid(4, 2).extend_to_basis({0, 1, 2})

    def test_bases_enumeration(self):
        matroid = UniformMatroid(4, 2)
        bases = list(matroid.bases())
        assert len(bases) == 6
        assert all(len(b) == 2 for b in bases)

    def test_independent_sets_enumeration(self):
        matroid = PartitionMatroid(["a", "a"], {"a": 1})
        independents = set(matroid.independent_sets())
        assert independents == {frozenset(), frozenset({0}), frozenset({1})}

    def test_feasible_pairs(self):
        matroid = PartitionMatroid(["a", "a", "b"], {"a": 1, "b": 1})
        pairs = set(restriction_feasible_pairs(matroid))
        assert pairs == {(0, 2), (1, 2)}

    def test_require_rank_at_least(self):
        with pytest.raises(InfeasibleError):
            UniformMatroid(3, 1).require_rank_at_least(2)
        UniformMatroid(3, 2).require_rank_at_least(2)

    def test_check_axioms_catches_non_matroid(self):
        class FakeMatroid(UniformMatroid):
            """Independence = sets of size != 1 up to 2 — violates hereditary."""

            def is_independent(self, subset):
                members = set(subset)
                return len(members) != 1 and len(members) <= 2

        with pytest.raises(MatroidError):
            FakeMatroid(4, 2).check_axioms()
