"""Tests for Greedy B (the paper's non-oblivious greedy, Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.modular import ModularFunction, ZeroFunction
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.matrix import DistanceMatrix

import numpy as np


class TestBasics:
    def test_selects_requested_cardinality(self, synthetic_objective_20):
        result = greedy_diversify(synthetic_objective_20, 6)
        assert result.size == 6
        assert len(result.order) == 6
        assert set(result.order) == set(result.selected)

    def test_p_zero_returns_empty(self, synthetic_objective_20):
        result = greedy_diversify(synthetic_objective_20, 0)
        assert result.size == 0
        assert result.objective_value == 0.0

    def test_p_larger_than_universe_clamped(self, small_objective):
        result = greedy_diversify(small_objective, 10)
        assert result.size == 4

    def test_p_one_picks_best_potential_element(self, small_objective):
        result = greedy_diversify(small_objective, 1)
        # With S = ∅ the potential is ½·w(u); element 0 has the largest weight.
        assert result.selected == frozenset({0})

    def test_objective_value_matches_reported_components(self, synthetic_objective_20):
        result = greedy_diversify(synthetic_objective_20, 5)
        assert result.objective_value == pytest.approx(
            result.quality_value
            + synthetic_objective_20.tradeoff * result.dispersion_value
        )
        assert result.objective_value == pytest.approx(
            synthetic_objective_20.value(result.selected)
        )

    def test_candidate_restriction_respected(self, synthetic_objective_20):
        candidates = [0, 1, 2, 3, 4, 5]
        result = greedy_diversify(synthetic_objective_20, 3, candidates=candidates)
        assert result.selected <= set(candidates)

    def test_invalid_candidate_rejected(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            greedy_diversify(synthetic_objective_20, 3, candidates=[0, 99])

    def test_unknown_start_rejected(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            greedy_diversify(synthetic_objective_20, 3, start="random")

    def test_negative_p_rejected(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            greedy_diversify(synthetic_objective_20, -1)

    def test_deterministic(self, synthetic_objective_20):
        first = greedy_diversify(synthetic_objective_20, 5)
        second = greedy_diversify(synthetic_objective_20, 5)
        assert first.selected == second.selected
        assert first.order == second.order


class TestVariants:
    def test_best_pair_start_contains_best_pair(self, synthetic_objective_20):
        objective = synthetic_objective_20
        best_pair = max(
            (
                (objective.pair_value(x, y), (x, y))
                for x in range(objective.n)
                for y in range(x + 1, objective.n)
            )
        )[1]
        result = greedy_diversify(objective, 5, start="best_pair")
        assert set(best_pair) <= result.selected

    def test_best_pair_with_p_one_falls_back(self, synthetic_objective_20):
        result = greedy_diversify(synthetic_objective_20, 1, start="best_pair")
        assert result.size == 1

    def test_oblivious_variant_differs_in_name(self, synthetic_objective_20):
        result = greedy_diversify(synthetic_objective_20, 4, oblivious=True)
        assert "oblivious" in result.algorithm
        assert result.size == 4

    def test_modular_fast_path_matches_generic_path(self):
        # The same instance run with a modular function and with an equivalent
        # non-modular wrapper must select the same set.
        instance = make_synthetic_instance(15, seed=3)
        objective_fast = instance.objective

        class OpaqueModular(ModularFunction):
            @property
            def is_modular(self) -> bool:  # force the generic per-element path
                return False

        objective_slow = Objective(
            OpaqueModular(instance.weights), instance.metric, instance.tradeoff
        )
        fast = greedy_diversify(objective_fast, 6)
        slow = greedy_diversify(objective_slow, 6)
        assert fast.selected == slow.selected
        assert fast.objective_value == pytest.approx(slow.objective_value)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_two_approximation_on_synthetic_modular(self, seed, p):
        instance = make_synthetic_instance(12, seed=seed)
        objective = instance.objective
        greedy = greedy_diversify(objective, p)
        optimum = exact_diversify(objective, p, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_approximation_with_submodular_quality(self, seed):
        metric = UniformRandomMetric(10, seed=seed)
        coverage = CoverageFunction.random(10, 6, seed=seed)
        objective = Objective(coverage, metric, tradeoff=0.3)
        greedy = greedy_diversify(objective, 4)
        optimum = exact_diversify(objective, 4, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_two_approximation_with_facility_location(self):
        rng = np.random.default_rng(7)
        metric = UniformRandomMetric(9, seed=1)
        facility = FacilityLocationFunction(rng.uniform(0, 1, size=(9, 9)))
        objective = Objective(facility, metric, tradeoff=0.5)
        greedy = greedy_diversify(objective, 3)
        optimum = exact_diversify(objective, 3, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_pure_dispersion_special_case(self):
        # f ≡ 0: Greedy B degenerates to the Ravi et al. dispersion greedy.
        metric = UniformRandomMetric(12, seed=5)
        objective = Objective(ZeroFunction(12), metric, tradeoff=1.0)
        greedy = greedy_diversify(objective, 4)
        optimum = exact_diversify(objective, 4, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_exact_when_p_equals_n(self):
        metric = DistanceMatrix(UniformRandomMetric(6, seed=8).to_matrix())
        objective = Objective(ModularFunction([1.0] * 6), metric, tradeoff=0.4)
        greedy = greedy_diversify(objective, 6)
        assert greedy.objective_value == pytest.approx(objective.value(range(6)))
