"""DynamicSession facade and the sharded dynamic engine.

The facade contract: dense and sharded backends expose the same surface
(apply / apply_events / snapshot / restore), checkpoints fire on the session
cadence, the sharded tier only re-solves shards an event actually dirtied,
and shard failures degrade — never raise — with healing on the next clean
tick.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.dynamic.engine import DynamicDiversifier, EngineSnapshot
from repro.dynamic.events import EventBatchBuilder
from repro.dynamic.perturbation import WeightIncrease
from repro.dynamic.session import (
    DynamicSession,
    SessionSnapshot,
    ShardedDynamicEngine,
)
from repro.exceptions import InvalidParameterError, PerturbationError
from repro.metrics.euclidean import EuclideanMetric
from repro.testing.faults import CrashingMetric


def _dense_instance(n=14, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0, 5, n)
    distances = rng.uniform(1, 2, (n, n))
    distances = (distances + distances.T) / 2
    np.fill_diagonal(distances, 0.0)
    return weights, distances


def _sharded_instance(n=60, d=3, seed=1):
    rng = np.random.default_rng(seed)
    points = rng.normal(size=(n, d))
    weights = rng.uniform(0.5, 2.0, n)
    return points, weights


class TestDenseFacade:
    def test_mode_and_passthrough(self):
        weights, distances = _dense_instance()
        session = DynamicSession(weights, 4, distances=distances)
        twin = DynamicDiversifier(weights, distances, 4)
        assert session.mode == "dense"
        assert session.n == 14
        assert session.solution == twin.solution
        outcome = session.apply(WeightIncrease(0, 1.0))
        expected = twin.apply(WeightIncrease(0, 1.0))
        assert outcome.solution == expected.solution
        assert session.ticks == 1
        assert session.approximation_ratio() >= 1.0

    def test_apply_events_counts_ticks(self):
        weights, distances = _dense_instance()
        session = DynamicSession(weights, 3, distances=distances)
        batch = EventBatchBuilder().change_weight(1, 0.5).change_weight(2, 0.5).build()
        session.apply_events(batch)
        session.apply_events(batch)
        assert session.ticks == 2

    def test_requires_exactly_one_backend(self):
        weights, distances = _dense_instance(8)
        points = np.ones((8, 2))
        with pytest.raises(InvalidParameterError):
            DynamicSession(weights, 3)
        with pytest.raises(InvalidParameterError):
            DynamicSession(weights, 3, distances=distances, points=points)

    def test_resolve_every_rejected_in_dense_mode(self):
        weights, distances = _dense_instance(8)
        with pytest.raises(InvalidParameterError):
            DynamicSession(weights, 3, distances=distances, resolve_every=5)
        session = DynamicSession(weights, 3, distances=distances)
        with pytest.raises(InvalidParameterError):
            session.resolve_full()

    def test_checkpoint_cadence(self):
        weights, distances = _dense_instance()
        snapshots = []
        session = DynamicSession(
            weights, 3, distances=distances,
            checkpoint_every=3, on_checkpoint=snapshots.append,
        )
        for step in range(7):
            session.apply(WeightIncrease(step % session.n, 0.1))
        assert len(snapshots) == 2  # after ticks 3 and 6
        assert all(isinstance(s, EngineSnapshot) for s in snapshots)

    def test_on_checkpoint_alone_means_every_tick(self):
        weights, distances = _dense_instance()
        snapshots = []
        session = DynamicSession(
            weights, 3, distances=distances, on_checkpoint=snapshots.append
        )
        session.apply(WeightIncrease(0, 0.1))
        session.apply(WeightIncrease(1, 0.1))
        assert len(snapshots) == 2

    def test_snapshot_restore_round_trip(self):
        weights, distances = _dense_instance()
        session = DynamicSession(weights, 4, distances=distances)
        session.apply(WeightIncrease(2, 3.0))
        snapshot = pickle.loads(pickle.dumps(session.snapshot()))
        restored = DynamicSession.restore(snapshot)
        assert restored.mode == "dense"
        assert restored.solution == session.solution
        assert restored.solution_value == pytest.approx(session.solution_value)

    def test_restore_rejects_unknown_kwargs(self):
        weights, distances = _dense_instance(8)
        session = DynamicSession(weights, 3, distances=distances)
        with pytest.raises(InvalidParameterError):
            DynamicSession.restore(session.snapshot(), shard_size=4)
        with pytest.raises(InvalidParameterError):
            DynamicSession.restore("not a snapshot")


class TestShardedEngine:
    def test_initial_solve_and_dirty_shards(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        assert engine.num_shards == 4
        assert len(engine.solution) == 5
        assert not engine.degraded
        batch = EventBatchBuilder().change_weight(3, 0.5).build()
        outcome = engine.apply_events(batch)
        assert outcome.metadata["dirty_shards"] == (0,)

    def test_weight_event_on_clean_shard_keeps_solution_feasible(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        value_before = engine.solution_value
        target = next(
            e for e in range(engine.n) if e not in engine.solution
        )
        engine.apply_events(
            EventBatchBuilder().change_weight(target, 50.0).build()
        )
        assert len(engine.solution) == 5
        assert target in engine.solution
        assert engine.solution_value > value_before

    def test_distance_override_changes_metric_view(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        u, v = 0, 1
        engine.apply_events(EventBatchBuilder().set_distance(u, v, 9.5).build())
        assert engine.distance(u, v) == pytest.approx(9.5)
        assert engine.num_overrides == 1
        with pytest.raises(PerturbationError):
            engine.apply_events(
                EventBatchBuilder().change_distance(u, v, -20.0).build()
            )

    def test_point_insert_and_delete_round_trip(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        n0 = engine.active_count
        batch = (
            EventBatchBuilder()
            .insert(100.0, point=np.zeros(points.shape[1]))
            .build()
        )
        outcome = engine.apply_events(batch)
        new_id = outcome.metadata["inserted"][0]
        assert engine.active_count == n0 + 1
        assert new_id in engine.solution  # overwhelming weight must win
        outcome = engine.apply_events(EventBatchBuilder().delete(new_id).build())
        assert engine.active_count == n0
        assert new_id not in engine.solution
        assert len(engine.solution) == 5
        assert outcome.metadata["deleted_members"] == (new_id,)
        # The freed slot is reused by the next insert.
        revived = engine.apply_events(
            EventBatchBuilder().insert(1.0, point=np.ones(points.shape[1])).build()
        ).metadata["inserted"][0]
        assert revived == new_id

    def test_dense_insert_rows_rejected(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        batch = EventBatchBuilder().insert(1.0, distances=np.ones(60)).build()
        with pytest.raises(PerturbationError):
            engine.apply_events(batch)

    def test_delete_below_p_rejected(self):
        points, weights = _sharded_instance(n=6)
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=4)
        builder = EventBatchBuilder()
        builder.delete(0)
        builder.delete(1)
        with pytest.raises(PerturbationError):
            engine.apply_events(builder.build())

    def test_incremental_tracks_full_resolve(self):
        points, weights = _sharded_instance(n=120, seed=5)
        engine = ShardedDynamicEngine(points, weights, 6, shard_size=24)
        rng = np.random.default_rng(6)
        for _ in range(8):
            builder = EventBatchBuilder()
            for _ in range(5):
                builder.change_weight(
                    int(rng.integers(engine.n)), float(rng.uniform(0.05, 0.5))
                )
            engine.apply_events(builder.build())
        incremental = engine.solution_value
        full = engine.resolve_full(adopt=False).objective_value
        assert incremental >= 0.95 * full

    def test_resolve_full_adopts_when_better(self):
        points, weights = _sharded_instance(n=80, seed=7)
        engine = ShardedDynamicEngine(points, weights, 6, shard_size=16)
        result = engine.resolve_full(adopt=True)
        assert engine.solution_value >= result.objective_value - 1e-9

    def test_snapshot_pickles_and_restores(self):
        points, weights = _sharded_instance()
        engine = ShardedDynamicEngine(points, weights, 5, shard_size=16)
        engine.apply_events(EventBatchBuilder().set_distance(0, 1, 5.0).build())
        snapshot = pickle.loads(pickle.dumps(engine.snapshot(ticks=3)))
        assert isinstance(snapshot, SessionSnapshot)
        restored = ShardedDynamicEngine.restore(snapshot)
        assert restored.distance(0, 1) == pytest.approx(5.0)
        assert len(restored.solution) == 5
        assert restored.solution_value == pytest.approx(
            restored.objective_value(restored.solution)
        )


class TestShardedFaults:
    def test_crashing_shard_degrades_then_heals(self):
        points, weights = _sharded_instance()
        factory = lambda pts: CrashingMetric(  # noqa: E731
            EuclideanMetric(pts), only_in_workers=False, fail_times=1
        )
        engine = ShardedDynamicEngine(
            points, weights, 5, shard_size=16, metric_factory=factory
        )
        # The initial solve burned the single fault: one shard failed,
        # containment kept the engine feasible and degraded.
        assert len(engine.solution) == 5
        assert engine.degraded
        assert engine.failures
        # A clean tick over every shard heals the stale winners.
        builder = EventBatchBuilder()
        for shard in range(engine.num_shards):
            builder.change_weight(shard * engine.shard_size, 0.01)
        outcome = engine.apply_events(builder.build())
        assert not engine.degraded
        assert not outcome.metadata["degraded"]
        assert len(engine.solution) == 5

    def test_session_surfaces_degraded_flag(self):
        points, weights = _sharded_instance()
        factory = lambda pts: CrashingMetric(  # noqa: E731
            EuclideanMetric(pts), only_in_workers=False, fail_times=1
        )
        session = DynamicSession(
            weights, 5, points=points, shard_size=16, metric_factory=factory
        )
        assert session.mode == "sharded"
        assert session.degraded
        assert len(session.solution) == 5


class TestShardedFacade:
    def test_apply_routes_through_batches(self):
        points, weights = _sharded_instance()
        session = DynamicSession(weights, 5, points=points, shard_size=16)
        outcome = session.apply(WeightIncrease(2, 1.0))
        assert outcome.metadata["num_events"] == 1
        assert session.ticks == 1

    def test_periodic_resolve_and_checkpoints(self):
        points, weights = _sharded_instance(n=80, seed=9)
        snapshots = []
        session = DynamicSession(
            weights, 5, points=points, shard_size=16,
            resolve_every=2, checkpoint_every=2, on_checkpoint=snapshots.append,
        )
        rng = np.random.default_rng(10)
        for _ in range(4):
            builder = EventBatchBuilder()
            builder.change_weight(int(rng.integers(session.n)), 0.2)
            session.apply_events(builder.build())
        assert len(snapshots) == 2
        assert all(isinstance(s, SessionSnapshot) for s in snapshots)
        restored = DynamicSession.restore(pickle.loads(pickle.dumps(snapshots[-1])))
        assert restored.mode == "sharded"
        assert restored.ticks == 4
        assert len(restored.solution) == 5

    def test_approximation_ratio_dense_only(self):
        points, weights = _sharded_instance()
        session = DynamicSession(weights, 5, points=points, shard_size=16)
        with pytest.raises(InvalidParameterError):
            session.approximation_ratio()


class TestBatchedSimulationEquivalence:
    def test_batched_flag_matches_stepwise(self):
        from repro.dynamic.simulation import Environment, run_dynamic_simulation

        weights, distances = _dense_instance(n=12, seed=11)
        stepwise = run_dynamic_simulation(
            weights, distances, 4, 0.5, Environment.MPERTURBATION,
            steps=12, seed=13,
        )
        batched = run_dynamic_simulation(
            weights, distances, 4, 0.5, Environment.MPERTURBATION,
            steps=12, seed=13, batched=True,
        )
        assert batched.ratios == stepwise.ratios
        assert batched.worst_ratio == stepwise.worst_ratio
