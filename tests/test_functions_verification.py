"""Tests for the set-function verification utilities."""

from __future__ import annotations

from typing import Iterable

import pytest

from repro.exceptions import (
    InvalidParameterError,
    NotMonotoneError,
    NotSubmodularError,
    SetFunctionError,
)
from repro.functions.base import SetFunction
from repro.functions.modular import ModularFunction
from repro.functions.verification import (
    check_monotone,
    check_normalized,
    check_submodular,
    estimate_curvature,
    is_monotone,
    is_submodular,
    marginal_violations,
)


class _SupermodularPair(SetFunction):
    """f(S) = |S|^2 — monotone but supermodular (increasing marginals)."""

    def __init__(self, n: int) -> None:
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def value(self, subset: Iterable[int]) -> float:
        return float(len(self._as_set(subset)) ** 2)


class _NonMonotone(SetFunction):
    """f(S) = |S| * (3 - |S|) — normalized but decreasing past |S| = 2."""

    def __init__(self, n: int) -> None:
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def value(self, subset: Iterable[int]) -> float:
        size = len(self._as_set(subset))
        return float(size * (3 - size))


class _NotNormalized(SetFunction):
    def __init__(self, n: int) -> None:
        self._n = n

    @property
    def n(self) -> int:
        return self._n

    def value(self, subset: Iterable[int]) -> float:
        return 1.0 + len(self._as_set(subset))


class TestChecks:
    def test_modular_passes_everything(self):
        f = ModularFunction([0.3, 0.7, 1.1])
        check_normalized(f)
        check_monotone(f)
        check_submodular(f)

    def test_supermodular_detected(self):
        f = _SupermodularPair(5)
        assert is_monotone(f)
        assert not is_submodular(f)
        with pytest.raises(NotSubmodularError):
            check_submodular(f)

    def test_non_monotone_detected(self):
        f = _NonMonotone(5)
        assert not is_monotone(f)
        with pytest.raises(NotMonotoneError):
            check_monotone(f)

    def test_not_normalized_detected(self):
        with pytest.raises(SetFunctionError):
            check_normalized(_NotNormalized(3))

    def test_sampled_mode_detects_supermodularity(self):
        f = _SupermodularPair(20)
        assert not is_submodular(f, exhaustive_limit=5, samples=300, seed=0)

    def test_sampled_mode_detects_non_monotone(self):
        f = _NonMonotone(20)
        assert not is_monotone(f, exhaustive_limit=5, samples=300, seed=0)

    def test_marginal_violations_listing(self):
        violations = marginal_violations(_SupermodularPair(4))
        assert violations
        small, large, u, gap = violations[0]
        assert small <= large
        assert u not in large
        assert gap > 0

    def test_marginal_violations_limit_guard(self):
        with pytest.raises(InvalidParameterError):
            marginal_violations(_SupermodularPair(30))


class TestCurvature:
    def test_modular_has_zero_curvature(self):
        assert estimate_curvature(
            ModularFunction([1.0, 2.0, 3.0])
        ) == pytest.approx(0.0)

    def test_coverage_has_positive_curvature(self):
        from repro.functions.coverage import CoverageFunction

        f = CoverageFunction([[0], [0], [1]])
        # Element 0 and 1 fully overlap, so the curvature is 1.
        assert estimate_curvature(f) == pytest.approx(1.0)

    def test_empty_function(self):
        assert estimate_curvature(ModularFunction([])) == 0.0
