"""Tests for the matroid local search (Theorem 2) and the LS refinement."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.local_search import (
    LocalSearchConfig,
    local_search_diversify,
    refine_with_local_search,
)
from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.matroids.partition import PartitionMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.uniform import UniformMatroid
from repro.metrics.discrete import UniformRandomMetric


class TestLocalSearchBasics:
    def test_returns_a_basis(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 5)
        result = local_search_diversify(synthetic_objective_20, matroid)
        assert matroid.is_basis(result.selected)
        assert result.algorithm == "local_search"

    def test_local_optimality(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 4)
        result = local_search_diversify(synthetic_objective_20, matroid)
        selected = set(result.selected)
        for incoming in range(20):
            if incoming in selected:
                continue
            for outgoing in matroid.swap_candidates(selected, incoming):
                gain = synthetic_objective_20.swap_gain(selected, incoming, outgoing)
                assert gain <= 1e-9

    def test_respects_partition_matroid(self):
        instance = make_synthetic_instance(12, seed=0)
        blocks = [i % 3 for i in range(12)]
        matroid = PartitionMatroid(blocks, {0: 2, 1: 2, 2: 2})
        result = local_search_diversify(instance.objective, matroid)
        assert matroid.is_independent(result.selected)
        assert result.size == matroid.rank()

    def test_respects_transversal_matroid(self):
        instance = make_synthetic_instance(8, seed=1)
        matroid = TransversalMatroid(8, [[0, 1, 2], [2, 3, 4], [5, 6, 7]])
        result = local_search_diversify(instance.objective, matroid)
        assert matroid.is_independent(result.selected)
        assert result.size == 3

    def test_initial_solution_used(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 4)
        result = local_search_diversify(
            synthetic_objective_20, matroid, initial=[0, 1, 2, 3]
        )
        assert result.size == 4

    def test_initial_solution_must_be_independent(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 2)
        with pytest.raises(InvalidParameterError):
            local_search_diversify(
                synthetic_objective_20, matroid, initial=[0, 1, 2]
            )

    def test_rank_one_matroid(self, small_objective):
        matroid = UniformMatroid(4, 1)
        result = local_search_diversify(small_objective, matroid)
        assert result.size == 1

    def test_max_swaps_cap(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 5)
        config = LocalSearchConfig(max_swaps=0)
        result = local_search_diversify(synthetic_objective_20, matroid, config=config)
        assert result.iterations == 0

    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            LocalSearchConfig(epsilon=-0.1)
        with pytest.raises(InvalidParameterError):
            LocalSearchConfig(max_swaps=-1)
        with pytest.raises(InvalidParameterError):
            LocalSearchConfig(time_budget_seconds=-1.0)

    def test_first_improvement_mode_terminates(self, synthetic_objective_20):
        matroid = UniformMatroid(20, 4)
        config = LocalSearchConfig(first_improvement=True)
        result = local_search_diversify(synthetic_objective_20, matroid, config=config)
        assert matroid.is_basis(result.selected)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_two_approximation_uniform_matroid(self, seed):
        instance = make_synthetic_instance(10, seed=seed)
        objective = instance.objective
        matroid = UniformMatroid(10, 4)
        local = local_search_diversify(objective, matroid)
        optimum = exact_diversify(objective, 4, method="enumerate")
        assert local.objective_value >= optimum.objective_value / 2 - 1e-9

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_two_approximation_partition_matroid(self, seed):
        instance = make_synthetic_instance(9, seed=seed)
        objective = instance.objective
        blocks = [i % 3 for i in range(9)]
        matroid = PartitionMatroid(blocks, {0: 1, 1: 1, 2: 1})
        local = local_search_diversify(objective, matroid)
        optimum = exact_diversify(objective, matroid=matroid)
        assert local.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_two_approximation_with_submodular_quality(self):
        metric = UniformRandomMetric(9, seed=5)
        coverage = CoverageFunction.random(9, 6, seed=2)
        objective = Objective(coverage, metric, tradeoff=0.4)
        matroid = PartitionMatroid([i % 3 for i in range(9)], {0: 1, 1: 2, 2: 1})
        local = local_search_diversify(objective, matroid)
        optimum = exact_diversify(objective, matroid=matroid)
        assert local.objective_value >= optimum.objective_value / 2 - 1e-9


class TestRefinement:
    def test_refine_never_worse_than_seed(self, synthetic_objective_20):
        seed_result = greedy_diversify(synthetic_objective_20, 5)
        refined = refine_with_local_search(synthetic_objective_20, seed_result, p=5)
        assert refined.objective_value >= seed_result.objective_value - 1e-9
        assert refined.size == 5

    def test_refine_keeps_cardinality(self, synthetic_objective_20):
        seed_result = greedy_diversify(synthetic_objective_20, 7)
        refined = refine_with_local_search(synthetic_objective_20, seed_result)
        assert refined.size == 7

    def test_refine_metadata_records_seed(self, synthetic_objective_20):
        seed_result = greedy_diversify(synthetic_objective_20, 4)
        refined = refine_with_local_search(synthetic_objective_20, seed_result, p=4)
        assert refined.metadata["seed_algorithm"] == seed_result.algorithm
        assert refined.metadata["budget_seconds"] > 0

    def test_refine_rejects_negative_budget(self, synthetic_objective_20):
        seed_result = greedy_diversify(synthetic_objective_20, 4)
        with pytest.raises(InvalidParameterError):
            refine_with_local_search(
                synthetic_objective_20, seed_result, time_budget_multiple=-1.0
            )

    def test_refine_reaches_local_optimum_on_small_instance(self):
        instance = make_synthetic_instance(8, seed=9)
        objective = instance.objective
        seed_result = greedy_diversify(objective, 3)
        refined = refine_with_local_search(
            objective, seed_result, p=3, time_budget_multiple=1000.0
        )
        optimum = exact_diversify(objective, 3, method="enumerate")
        assert refined.objective_value >= optimum.objective_value / 2 - 1e-9
