"""Tests for the serving tier (repro.serve): prepared corpora and the server."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.solver import solve
from repro.data.synthetic import make_feature_instance, make_synthetic_instance
from repro.exceptions import InvalidParameterError, ServerClosedError
from repro.functions.coverage import CoverageFunction
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanMetric
from repro.serve import CorpusSnapshot, PreparedCorpus, ServeQuery, Server
from repro.utils.deadline import Deadline


class OracleMetric(Metric):
    """Matrix distances served only through the oracle interface."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._backing = np.asarray(matrix, dtype=float)
        self.calls = 0

    @property
    def n(self) -> int:
        return self._backing.shape[0]

    def distance(self, u, v) -> float:
        self.calls += 1
        return float(self._backing[u, v])


@pytest.fixture
def instance():
    return make_synthetic_instance(40, seed=11)


@pytest.fixture
def corpus(instance):
    return PreparedCorpus(
        instance.quality, instance.metric, tradeoff=instance.tradeoff
    )


@pytest.fixture
def lazy_instance():
    return make_feature_instance(120, dimension=4, tradeoff=0.4, seed=3)


@pytest.fixture
def pools():
    rng = np.random.default_rng(4)
    return [sorted(rng.choice(40, size=10, replace=False).tolist()) for _ in range(6)]


# ----------------------------------------------------------------------
# PreparedCorpus: preparation policy
# ----------------------------------------------------------------------
class TestCorpusPreparation:
    def test_matrix_backed_corpus_stays_materialized(self, corpus):
        assert corpus.materialized and not corpus.sharded

    def test_small_oracle_corpus_materialized_once(self, instance):
        oracle = OracleMetric(instance.metric.to_matrix())
        corpus = PreparedCorpus(instance.quality, oracle, tradeoff=0.5)
        assert corpus.materialized
        prepared_calls = oracle.calls
        corpus.solve([0, 1, 2, 3, 4], p=2)
        corpus.solve([5, 6, 7, 8, 9], p=2)
        # Solves run on the materialized matrix, never back through the oracle.
        assert oracle.calls == prepared_calls

    def test_large_corpus_stays_lazy(self, lazy_instance, monkeypatch):
        import repro.serve.corpus as corpus_module

        monkeypatch.setattr(corpus_module, "AUTO_MATERIALIZE_CAP", 100)
        corpus = PreparedCorpus(
            lazy_instance.quality, lazy_instance.metric, tradeoff=0.4
        )
        assert not corpus.materialized

    def test_sharded_corpus_never_auto_materializes(self, lazy_instance):
        corpus = PreparedCorpus(
            lazy_instance.quality,
            lazy_instance.metric,
            tradeoff=0.4,
            shard_size=32,
        )
        assert corpus.sharded and not corpus.materialized

    def test_explicit_materialize_overrides_auto(self, lazy_instance, monkeypatch):
        import repro.serve.corpus as corpus_module

        monkeypatch.setattr(corpus_module, "AUTO_MATERIALIZE_CAP", 100)
        corpus = PreparedCorpus(
            lazy_instance.quality,
            lazy_instance.metric,
            tradeoff=0.4,
            materialize=True,
        )
        assert corpus.materialized

    def test_view_less_modular_quality_hoisted(self, instance):
        class OpaqueModular(ModularFunction):
            def weights_view(self):
                return None

        corpus = PreparedCorpus(
            OpaqueModular(instance.weights), instance.metric, tradeoff=0.5
        )
        assert isinstance(corpus.quality, ModularFunction)
        assert corpus.quality.weights_view() is not None

    def test_non_modular_quality_warm_state_built(self):
        coverage = CoverageFunction.random(30, num_topics=12, seed=5)
        metric = EuclideanMetric(np.random.default_rng(0).normal(size=(30, 3)))
        corpus = PreparedCorpus(coverage, metric, tradeoff=0.3, warm=True)
        assert corpus.quality_state() is not None
        cold = PreparedCorpus(coverage, metric, tradeoff=0.3, warm=False)
        assert cold._warm_state is None
        # quality_state() builds it lazily even when warm=False.
        assert cold.quality_state() is not None

    def test_cache_size_validated(self, instance):
        with pytest.raises(InvalidParameterError):
            PreparedCorpus(
                instance.quality, instance.metric, tradeoff=0.5, cache_size=-1
            )


# ----------------------------------------------------------------------
# PreparedCorpus: restriction cache
# ----------------------------------------------------------------------
class TestRestrictionCache:
    def test_repeated_pool_hits_cache(self, corpus, pools):
        first = corpus.restriction_for(pools[0])
        second = corpus.restriction_for(pools[0])
        assert first is second
        info = corpus.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_pool_deduplicated_before_keying(self, corpus):
        plain = corpus.restriction_for([3, 1, 2])
        duplicated = corpus.restriction_for([3, 1, 2, 3, 1])
        assert plain is duplicated

    def test_lru_eviction_order(self, instance):
        corpus = PreparedCorpus(
            instance.quality, instance.metric, tradeoff=0.5, cache_size=2
        )
        a = corpus.restriction_for([0, 1, 2])
        corpus.restriction_for([3, 4, 5])
        corpus.restriction_for(
            [0, 1, 2]
        )  # refresh a; [3,4,5] is now least recent
        corpus.restriction_for([6, 7, 8])  # evicts [3,4,5]
        assert corpus.restriction_for([0, 1, 2]) is a
        info = corpus.cache_info()
        assert info["size"] == 2 and info["capacity"] == 2

    def test_cache_disabled_with_zero_capacity(self, corpus, instance):
        uncached = PreparedCorpus(
            instance.quality, instance.metric, tradeoff=0.5, cache_size=0
        )
        first = uncached.restriction_for([0, 1, 2])
        second = uncached.restriction_for([0, 1, 2])
        assert first is not second

    def test_invalid_pool_rejected(self, corpus):
        with pytest.raises(InvalidParameterError):
            corpus.restriction_for([0, 99])


# ----------------------------------------------------------------------
# PreparedCorpus: solving
# ----------------------------------------------------------------------
class TestCorpusSolve:
    def test_pool_query_matches_direct_solve(self, instance, corpus, pools):
        for pool in pools:
            served = corpus.solve(pool, p=4)
            direct = solve(
                instance.quality,
                instance.metric,
                tradeoff=instance.tradeoff,
                p=4,
                candidates=pool,
            )
            assert served.selected == direct.selected
            assert served.objective_value == pytest.approx(direct.objective_value)

    def test_full_universe_query_unsharded(self, instance, corpus):
        served = corpus.solve(None, p=5)
        direct = solve(
            instance.quality, instance.metric, tradeoff=instance.tradeoff, p=5
        )
        assert served.selected == direct.selected

    def test_full_universe_query_sharded(self, lazy_instance):
        corpus = PreparedCorpus(
            lazy_instance.quality,
            lazy_instance.metric,
            tradeoff=0.4,
            shard_size=32,
        )
        result = corpus.solve(None, p=5)
        assert len(result.selected) == 5
        assert "sharding" in result.metadata

    def test_per_query_weights_override(self, corpus):
        pool = list(range(10))
        boosted = np.zeros(10)
        boosted[[7, 8, 9]] = 100.0
        result = corpus.solve(pool, p=3, weights=boosted)
        assert result.selected == {7, 8, 9}

    def test_sharded_full_universe_weights_override(self, lazy_instance):
        corpus = PreparedCorpus(
            lazy_instance.quality,
            lazy_instance.metric,
            tradeoff=0.4,
            shard_size=32,
        )
        boosted = np.zeros(corpus.n)
        boosted[:3] = 1000.0
        result = corpus.solve(None, p=3, weights=boosted)
        assert result.selected == {0, 1, 2}

    def test_corpus_level_matroid_restricted_to_pool(self, instance):
        matroid = PartitionMatroid([i % 4 for i in range(40)], {b: 1 for b in range(4)})
        corpus = PreparedCorpus(
            instance.quality, instance.metric, tradeoff=instance.tradeoff
        )
        result = corpus.solve(list(range(12)), matroid=matroid)
        per_block = {}
        for element in result.selected:
            per_block[element % 4] = per_block.get(element % 4, 0) + 1
        assert all(count <= 1 for count in per_block.values())

    def test_matroid_universe_mismatch_rejected(self, corpus):
        small = PartitionMatroid([0, 0], {0: 1})
        with pytest.raises(InvalidParameterError):
            corpus.solve([0, 1], matroid=small)

    def test_window_isolates_bad_query(self, corpus, pools):
        window = [
            ServeQuery(pool=pools[0], p=3),
            ServeQuery(pool=pools[1], p=3, algorithm="no_such_algorithm"),
            ServeQuery(pool=pools[2], p=3),
        ]
        good_a, bad, good_b = corpus.solve_window(window)
        assert isinstance(bad, InvalidParameterError)
        assert len(good_a.selected) == 3 and len(good_b.selected) == 3

    def test_window_skip_hook_drops_only_marked(self, corpus, pools):
        window = [ServeQuery(pool=pool, p=3) for pool in pools[:3]]
        outcomes = corpus.solve_window(window, skip=lambda i: i == 1)
        assert outcomes[1] is None
        assert len(outcomes[0].selected) == 3 and len(outcomes[2].selected) == 3

    def test_window_expired_deadline_returns_empty_interrupted(self, corpus, pools):
        window = [
            ServeQuery(pool=pools[0], p=3, deadline=Deadline(0.0)),
            ServeQuery(pool=pools[1], p=3),
        ]
        expired, live = corpus.solve_window(window)
        assert expired.selected == frozenset()
        assert expired.metadata["interrupted"] is True
        assert expired.metadata["phase"] == "window_queue"
        assert len(live.selected) == 3

    def test_solve_reraises_isolated_exception(self, corpus):
        with pytest.raises(InvalidParameterError):
            corpus.solve([0, 1, 2], p=2, algorithm="no_such_algorithm")

    def test_p_clamped_to_pool(self, corpus):
        result = corpus.solve([0, 1, 2], p=10)
        assert result.selected == {0, 1, 2}


# ----------------------------------------------------------------------
# PreparedCorpus: persistence and warm start
# ----------------------------------------------------------------------
class TestCorpusPersistence:
    def test_snapshot_round_trip(self, corpus, tmp_path, pools):
        path = str(tmp_path / "corpus.pkl")
        corpus.save(path)
        recovered = PreparedCorpus.load(path)
        assert recovered.n == corpus.n
        assert recovered.materialized == corpus.materialized
        before = corpus.solve(pools[0], p=4)
        after = recovered.solve(pools[0], p=4)
        assert before.selected == after.selected

    def test_snapshot_keeps_materialized_metric(self, instance, tmp_path):
        oracle = OracleMetric(instance.metric.to_matrix())
        corpus = PreparedCorpus(instance.quality, oracle, tradeoff=0.5)
        path = str(tmp_path / "corpus.pkl")
        corpus.save(path)
        recovered = PreparedCorpus.load(path)
        # Recovery must not re-materialize: the snapshot already holds the
        # matrix, not the (unpicklable state aside) oracle.
        assert recovered.materialized
        assert recovered.metric.matrix_view() is not None

    def test_load_rejects_wrong_payload(self, tmp_path, corpus):
        import pickle

        path = str(tmp_path / "not_a_corpus.pkl")
        with open(path, "wb") as handle:
            pickle.dump({"not": "a snapshot"}, handle)
        with pytest.raises(InvalidParameterError):
            PreparedCorpus.load(path)

    def test_snapshot_config_preserved(self, lazy_instance, tmp_path):
        corpus = PreparedCorpus(
            lazy_instance.quality,
            lazy_instance.metric,
            tradeoff=0.4,
            shard_size=32,
            cache_size=7,
        )
        snapshot = corpus.snapshot()
        assert isinstance(snapshot, CorpusSnapshot)
        recovered = PreparedCorpus.restore(snapshot)
        assert recovered.sharded
        assert recovered.cache_info()["capacity"] == 7


class TestFromSession:
    def test_from_dynamic_session(self):
        from repro.dynamic.session import DynamicSession

        rng = np.random.default_rng(9)
        session = DynamicSession(
            points=rng.normal(size=(60, 4)),
            weights=rng.uniform(0.5, 2.0, size=60),
            p=4,
            shard_size=16,
        )
        corpus = session.serve_corpus()
        assert corpus.n == 60
        assert corpus.sharded  # shard_size carried over
        result = corpus.solve(None, p=4)
        assert len(result.selected) == 4

    def test_from_engine_snapshot_compacts_retired_slots(self):
        from repro.dynamic.engine import DynamicDiversifier

        rng = np.random.default_rng(10)
        n = 20
        weights = rng.uniform(0.5, 2.0, size=n)
        matrix = rng.uniform(1.0, 2.0, size=(n, n))
        matrix = np.triu(matrix, 1)
        matrix = matrix + matrix.T
        engine = DynamicDiversifier(weights, matrix, 3)
        corpus = PreparedCorpus.from_session(engine)
        assert corpus.n == n
        assert corpus.materialized
        assert len(corpus.solve(None, p=3).selected) == 3

    def test_from_unknown_object_rejected(self):
        with pytest.raises(InvalidParameterError):
            PreparedCorpus.from_session(object())


# ----------------------------------------------------------------------
# Server
# ----------------------------------------------------------------------
class TestServer:
    def test_submit_requires_running_server(self, corpus):
        async def scenario():
            server = Server(corpus)
            with pytest.raises(ServerClosedError):
                await server.submit([0, 1, 2], p=2)

        asyncio.run(scenario())

    def test_concurrent_submits_batched_and_correct(self, corpus, pools):
        async def scenario():
            async with Server(corpus, max_batch_size=8, max_wait_s=0.05) as server:
                results = await asyncio.gather(
                    *(server.submit(pool, p=4) for pool in pools)
                )
                stats = server.stats.snapshot()
            return results, stats

        results, stats = asyncio.run(scenario())
        for pool, result in zip(pools, results):
            assert result.selected == corpus.solve(pool, p=4).selected
        assert stats["completed"] == len(pools)
        # Co-arriving requests coalesced: strictly fewer windows than requests.
        assert stats["windows"] < len(pools)
        assert stats["mean_window_size"] > 1.0

    def test_invalid_request_fails_only_itself(self, corpus, pools):
        async def scenario():
            async with Server(corpus, max_batch_size=4, max_wait_s=0.05) as server:
                good, bad = await asyncio.gather(
                    server.submit(pools[0], p=3),
                    server.submit(pools[1], p=3, algorithm="no_such_algorithm"),
                    return_exceptions=True,
                )
            return good, bad

        good, bad = asyncio.run(scenario())
        assert len(good.selected) == 3
        assert isinstance(bad, InvalidParameterError)

    def test_stop_fails_queued_requests_closed(self, corpus):
        async def scenario():
            server = Server(corpus, max_batch_size=4, max_wait_s=10.0)
            await server.start()
            submission = asyncio.ensure_future(server.submit([0, 1, 2], p=2))
            await asyncio.sleep(0.05)  # let it enter the lingering window
            await server.stop()
            with pytest.raises(ServerClosedError):
                await submission

        asyncio.run(scenario())

    def test_default_deadline_applied(self, instance):
        corpus = PreparedCorpus(
            instance.quality, instance.metric, tradeoff=instance.tradeoff
        )

        async def scenario():
            async with Server(corpus, default_deadline_s=0.0) as server:
                return await server.submit([0, 1, 2, 3], p=2)

        result = asyncio.run(scenario())
        assert result.metadata["interrupted"] is True
        assert result.selected == frozenset()

    def test_restart_after_stop(self, corpus):
        async def scenario():
            server = Server(corpus)
            await server.start()
            first = await server.submit([0, 1, 2], p=2)
            await server.stop()
            await server.start()
            second = await server.submit([0, 1, 2], p=2)
            await server.stop()
            return first, second

        first, second = asyncio.run(scenario())
        assert first.selected == second.selected

    def test_stats_latency_window_bounded(self, corpus):
        from repro.serve.server import _LATENCY_WINDOW, ServerStats

        stats = ServerStats()
        for _ in range(_LATENCY_WINDOW + 100):
            stats.record_latency(0.001)
        assert len(stats.latencies) == _LATENCY_WINDOW

    def test_server_parameter_validation(self, corpus):
        with pytest.raises(InvalidParameterError):
            Server(corpus, max_batch_size=0)
        with pytest.raises(InvalidParameterError):
            Server(corpus, max_wait_s=-1.0)

    def test_tagged_queries_round_trip(self, corpus, pools):
        async def scenario():
            async with Server(corpus) as server:
                return await server.submit(pools[0], p=3, tag="request-17")

        result = asyncio.run(scenario())
        assert len(result.selected) == 3


class TestOverloadProtection:
    def test_max_pending_validated(self, corpus):
        with pytest.raises(InvalidParameterError):
            Server(corpus, max_pending=0)

    def test_overload_sheds_fast_and_counts(self, corpus, pools):
        from repro.exceptions import ServerOverloadedError

        async def scenario():
            async with Server(
                corpus, max_pending=2, max_wait_s=0.05, max_batch_size=4
            ) as server:
                # enqueue without yielding: the batcher cannot drain between
                # these submits, so the bound must shed the excess
                tasks = [
                    asyncio.ensure_future(server.submit(pools[0], p=3))
                    for _ in range(6)
                ]
                outcomes = await asyncio.gather(*tasks, return_exceptions=True)
                return outcomes, server.stats.snapshot()

        outcomes, stats = asyncio.run(scenario())
        shed = [o for o in outcomes if isinstance(o, ServerOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert shed and served  # some rejected, some served
        assert stats["shed"] == len(shed)
        assert stats["completed"] == len(served)
        assert stats["submitted"] == 6

    def test_unbounded_by_default(self, corpus, pools):
        async def scenario():
            async with Server(corpus, max_batch_size=4) as server:
                tasks = [
                    asyncio.ensure_future(server.submit(pools[0], p=3))
                    for _ in range(20)
                ]
                return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert len(results) == 20


class TestGracefulDrain:
    def test_drain_finishes_queued_requests(self, corpus, pools):
        async def scenario():
            server = Server(corpus, max_wait_s=0.2, max_batch_size=8)
            await server.start()
            tasks = [
                asyncio.ensure_future(server.submit(pools[i % len(pools)], p=3))
                for i in range(5)
            ]
            await asyncio.sleep(0)  # let submits reach the queue
            await server.stop(drain=True)
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            return outcomes, server.stats.snapshot(), server.running

        outcomes, stats, running = asyncio.run(scenario())
        assert not running
        assert all(not isinstance(o, Exception) for o in outcomes)
        assert stats["completed"] == 5

    def test_drain_rejects_new_submits(self, corpus, pools):
        async def scenario():
            server = Server(corpus, max_wait_s=0.2)
            await server.start()
            task = asyncio.ensure_future(server.submit(pools[0], p=3))
            await asyncio.sleep(0)
            stop = asyncio.ensure_future(server.stop(drain=True))
            await asyncio.sleep(0)
            with pytest.raises(ServerClosedError):
                await server.submit(pools[1], p=3)
            await stop
            return await task

        result = asyncio.run(scenario())
        assert len(result.selected) == 3

    def test_default_stop_still_fails_closed(self, corpus, pools):
        async def scenario():
            server = Server(corpus, max_wait_s=5.0, max_batch_size=64)
            await server.start()
            # a lingering window: one request sits waiting for co-batchers
            task = asyncio.ensure_future(server.submit(pools[0], p=3))
            await asyncio.sleep(0.02)
            await server.stop()
            with pytest.raises(ServerClosedError):
                await task

        asyncio.run(scenario())
