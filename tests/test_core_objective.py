"""Tests for the combined objective and its marginals."""

from __future__ import annotations

import pytest

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.functions.modular import ModularFunction
from repro.metrics.discrete import UniformRandomMetric


class TestEvaluation:
    def test_value_decomposition(self, small_objective):
        subset = {0, 2}
        assert small_objective.quality_value(subset) == pytest.approx(1.4)
        assert small_objective.dispersion_value(subset) == pytest.approx(2.0)
        assert small_objective.value(subset) == pytest.approx(1.4 + 0.5 * 2.0)

    def test_empty_set_value_zero(self, small_objective):
        assert small_objective.value(set()) == 0.0

    def test_tradeoff_zero_is_pure_quality(self, small_matrix):
        objective = Objective(ModularFunction([1.0, 2.0, 3.0, 4.0]), small_matrix, 0.0)
        assert objective.value({0, 1}) == pytest.approx(3.0)

    def test_universe_size_mismatch_rejected(self, small_matrix):
        with pytest.raises(InvalidParameterError):
            Objective(ModularFunction([1.0, 2.0]), small_matrix, 0.1)

    def test_negative_tradeoff_rejected(self, small_matrix):
        with pytest.raises(InvalidParameterError):
            Objective(ModularFunction([1.0] * 4), small_matrix, -0.1)


class TestMarginals:
    def test_true_marginal(self, small_objective):
        subset = {1}
        expected = 0.9 + 0.5 * 1.0
        assert small_objective.marginal(0, subset) == pytest.approx(expected)

    def test_potential_marginal_halves_quality(self, small_objective):
        subset = {1}
        expected = 0.5 * 0.9 + 0.5 * 1.0
        assert small_objective.potential_marginal(0, subset) == pytest.approx(expected)

    def test_marginal_of_member_is_zero(self, small_objective):
        assert small_objective.marginal(1, {1}) == 0.0
        assert small_objective.potential_marginal(1, {1}) == 0.0

    def test_tracker_matches_direct(self, small_objective):
        subset = {0, 3}
        tracker = small_objective.make_tracker(subset)
        for u in (1, 2):
            assert small_objective.marginal(
                u, subset, tracker=tracker
            ) == pytest.approx(small_objective.marginal(u, subset))
            assert small_objective.potential_marginal(
                u, subset, tracker=tracker
            ) == pytest.approx(small_objective.potential_marginal(u, subset))

    def test_marginal_consistency_with_value(self, synthetic_objective_20):
        objective = synthetic_objective_20
        subset = {1, 5, 9}
        for u in (0, 2, 7, 13):
            assert objective.marginal(u, subset) == pytest.approx(
                objective.value(subset | {u}) - objective.value(subset)
            )

    def test_submodular_quality_marginal(self, small_matrix):
        coverage = CoverageFunction([[0], [0], [1], [2]])
        objective = Objective(coverage, small_matrix, tradeoff=1.0)
        # Element 1 adds no new topic given element 0 but still adds distance.
        assert objective.marginal(1, {0}) == pytest.approx(small_matrix.distance(0, 1))


class TestSwapGain:
    def test_swap_gain_matches_value_difference(self, small_objective):
        subset = {0, 1}
        gain = small_objective.swap_gain(subset, incoming=3, outgoing=1)
        assert gain == pytest.approx(
            small_objective.value({0, 3}) - small_objective.value({0, 1})
        )

    def test_swap_gain_validates_membership(self, small_objective):
        with pytest.raises(InvalidParameterError):
            small_objective.swap_gain({0, 1}, incoming=1, outgoing=0)
        with pytest.raises(InvalidParameterError):
            small_objective.swap_gain({0, 1}, incoming=2, outgoing=3)

    def test_pair_value(self, small_objective):
        assert small_objective.pair_value(0, 2) == pytest.approx(0.9 + 0.5 + 0.5 * 2.0)


class TestRepr:
    def test_repr_mentions_components(self):
        metric = UniformRandomMetric(5, seed=0)
        objective = Objective(ModularFunction([1.0] * 5), metric, 0.2)
        text = repr(objective)
        assert "ModularFunction" in text and "0.2" in text
