"""Tests for repro.utils.validation and repro.utils.timing."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidParameterError
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_cardinality,
    check_elements,
    check_non_negative,
    check_positive,
    check_probability,
    check_tradeoff,
)


class TestScalarChecks:
    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative("x", -0.1)

    def test_positive_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive("x", 0.0)

    def test_probability_bounds(self):
        assert check_probability("x", 1.0) == 1.0
        with pytest.raises(InvalidParameterError):
            check_probability("x", 1.5)

    def test_tradeoff_rejects_nan_and_inf(self):
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", float("nan"))
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", float("inf"))
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", -1.0)
        assert check_tradeoff("lam", 0.2) == 0.2


class TestCardinality:
    def test_valid(self):
        assert check_cardinality(3, 10) == 3

    def test_zero_allowed(self):
        assert check_cardinality(0, 10) == 0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(-1, 10)

    def test_rejects_too_large(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(11, 10)

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(True, 10)


class TestElements:
    def test_normalizes_to_set(self):
        assert check_elements([1, 2, 2, 3], 5) == {1, 2, 3}

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            check_elements([0, 5], 5)
        with pytest.raises(InvalidParameterError):
            check_elements([-1], 5)


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            sum(range(100))
        first = watch.elapsed_seconds
        with watch.measure():
            sum(range(100))
        assert watch.elapsed_seconds >= first
        assert watch.elapsed_ms == pytest.approx(watch.elapsed_seconds * 1000)

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed_seconds == 0.0

    def test_timed_returns_value_and_duration(self):
        value, seconds = timed(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0.0
