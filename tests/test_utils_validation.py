"""Tests for repro.utils.validation and repro.utils.timing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, NonFiniteDataError
from repro.metrics.cosine import CosineMetric
from repro.metrics.euclidean import EuclideanMetric
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_cardinality,
    check_elements,
    check_finite_array,
    check_non_negative,
    check_positive,
    check_probability,
    check_tradeoff,
)


class TestScalarChecks:
    def test_non_negative_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative("x", -0.1)

    def test_positive_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive("x", 0.0)

    def test_probability_bounds(self):
        assert check_probability("x", 1.0) == 1.0
        with pytest.raises(InvalidParameterError):
            check_probability("x", 1.5)

    def test_tradeoff_rejects_nan_and_inf(self):
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", float("nan"))
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", float("inf"))
        with pytest.raises(InvalidParameterError):
            check_tradeoff("lam", -1.0)
        assert check_tradeoff("lam", 0.2) == 0.2


class TestCardinality:
    def test_valid(self):
        assert check_cardinality(3, 10) == 3

    def test_zero_allowed(self):
        assert check_cardinality(0, 10) == 0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(-1, 10)

    def test_rejects_too_large(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(11, 10)

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_cardinality(True, 10)


class TestElements:
    def test_normalizes_to_set(self):
        assert check_elements([1, 2, 2, 3], 5) == {1, 2, 3}

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            check_elements([0, 5], 5)
        with pytest.raises(InvalidParameterError):
            check_elements([-1], 5)


class TestFiniteArray:
    def test_accepts_finite_and_returns_input(self):
        array = np.array([[0.0, 1.5], [-2.0, 3.0]])
        assert check_finite_array("x", array) is array

    def test_rejects_nan_with_location(self):
        array = np.array([1.0, np.nan, 2.0])
        with pytest.raises(NonFiniteDataError, match="index 1"):
            check_finite_array("x", array)

    def test_rejects_inf_with_location(self):
        array = np.array([[1.0, 2.0], [np.inf, 3.0]])
        with pytest.raises(NonFiniteDataError, match="index 2"):
            check_finite_array("x", array)

    def test_empty_array_is_fine(self):
        check_finite_array("x", np.zeros((0, 3)))

    def test_error_names_the_array(self):
        with pytest.raises(NonFiniteDataError, match="distances"):
            check_finite_array("distances", np.array([np.nan]))


class TestNonFiniteProperties:
    """Construction-time gates hold wherever the corruption lands."""

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        d=st.integers(min_value=1, max_value=4),
        row=st.data(),
        bad=st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    def test_euclidean_rejects_any_poisoned_row(self, n, d, row, bad):
        points = np.ones((n, d))
        i = row.draw(st.integers(min_value=0, max_value=n - 1))
        j = row.draw(st.integers(min_value=0, max_value=d - 1))
        points[i, j] = bad
        with pytest.raises(NonFiniteDataError):
            EuclideanMetric(points)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        d=st.integers(min_value=1, max_value=4),
        pos=st.data(),
        bad=st.sampled_from([np.nan, np.inf, -np.inf]),
    )
    def test_cosine_rejects_any_poisoned_feature(self, n, d, pos, bad):
        features = np.ones((n, d))
        i = pos.draw(st.integers(min_value=0, max_value=n - 1))
        j = pos.draw(st.integers(min_value=0, max_value=d - 1))
        features[i, j] = bad
        # NaN/inf must surface as NonFiniteDataError, never slip past the
        # zero-norm test (a NaN norm is not equal to zero).
        with pytest.raises(NonFiniteDataError):
            CosineMetric(features)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        d=st.integers(min_value=1, max_value=4),
        pos=st.data(),
    )
    def test_cosine_rejects_zero_variance_row_anywhere(self, n, d, pos):
        features = np.ones((n, d))
        i = pos.draw(st.integers(min_value=0, max_value=n - 1))
        features[i] = 0.0
        with pytest.raises(InvalidParameterError):
            CosineMetric(features)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        d=st.integers(min_value=1, max_value=4),
        scale=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_finite_features_always_construct(self, n, d, scale):
        rng = np.random.default_rng(n * 10 + d)
        features = rng.uniform(0.5, 1.5, size=(n, d)) * scale
        metric = CosineMetric(features)
        assert metric.n == n
        assert EuclideanMetric(features).n == n


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure():
            sum(range(100))
        first = watch.elapsed_seconds
        with watch.measure():
            sum(range(100))
        assert watch.elapsed_seconds >= first
        assert watch.elapsed_ms == pytest.approx(watch.elapsed_seconds * 1000)

    def test_stopwatch_reset(self):
        watch = Stopwatch()
        with watch.measure():
            pass
        watch.reset()
        assert watch.elapsed_seconds == 0.0

    def test_timed_returns_value_and_duration(self):
        value, seconds = timed(lambda: 41 + 1)
        assert value == 42
        assert seconds >= 0.0
