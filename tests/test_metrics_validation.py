"""Tests for metric validation and the relaxed triangle inequality utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TriangleInequalityError
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.matrix import DistanceMatrix
from repro.metrics.relaxed import relaxation_parameter, satisfies_relaxed_triangle
from repro.metrics.validation import (
    check_metric,
    is_metric,
    sampled_triangle_check,
    triangle_violations,
)


def _bad_matrix() -> DistanceMatrix:
    return DistanceMatrix(
        np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 1.0],
                [5.0, 1.0, 0.0],
            ]
        )
    )


class TestValidation:
    def test_good_metric_passes(self, small_matrix):
        assert is_metric(small_matrix)
        check_metric(small_matrix)  # must not raise

    def test_triangle_violation_detected(self):
        violations = triangle_violations(_bad_matrix())
        assert violations
        x, y, z, gap = violations[0]
        assert gap > 0
        assert len({x, y, z}) == 3

    def test_check_metric_raises_on_violation(self):
        with pytest.raises(TriangleInequalityError):
            check_metric(_bad_matrix())

    def test_is_metric_false_on_violation(self):
        assert not is_metric(_bad_matrix())

    def test_random_metric_validates(self):
        assert is_metric(UniformRandomMetric(20, seed=1))

    def test_sampled_check_detects_gross_violation(self):
        assert not sampled_triangle_check(_bad_matrix(), samples=200, seed=0)

    def test_sampled_check_passes_good_metric(self):
        assert sampled_triangle_check(UniformRandomMetric(15, seed=2), samples=200, seed=0)

    def test_tiny_instances_are_trivially_metrics(self):
        assert is_metric(DistanceMatrix(np.zeros((1, 1))))
        assert sampled_triangle_check(DistanceMatrix(np.zeros((2, 2))))


class TestRelaxedTriangle:
    def test_true_metric_has_alpha_at_least_one(self, small_matrix):
        assert relaxation_parameter(small_matrix) >= 1.0

    def test_violating_matrix_has_alpha_below_one(self):
        alpha = relaxation_parameter(_bad_matrix())
        assert alpha == pytest.approx(2.0 / 5.0)

    def test_satisfies_relaxed_triangle(self):
        bad = _bad_matrix()
        assert satisfies_relaxed_triangle(bad, 0.4)
        assert not satisfies_relaxed_triangle(bad, 0.8)

    def test_small_instances_vacuous(self):
        assert relaxation_parameter(DistanceMatrix(np.zeros((2, 2)))) == float("inf")
