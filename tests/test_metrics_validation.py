"""Tests for metric validation and the relaxed triangle inequality utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TriangleInequalityError
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.matrix import DistanceMatrix
from repro.metrics.relaxed import relaxation_parameter, satisfies_relaxed_triangle
from repro.metrics.validation import (
    check_metric,
    is_metric,
    pair_triangle_violations,
    sampled_triangle_check,
    triangle_violations,
)


def _bad_matrix() -> DistanceMatrix:
    return DistanceMatrix(
        np.array(
            [
                [0.0, 1.0, 5.0],
                [1.0, 0.0, 1.0],
                [5.0, 1.0, 0.0],
            ]
        )
    )


class TestValidation:
    def test_good_metric_passes(self, small_matrix):
        assert is_metric(small_matrix)
        check_metric(small_matrix)  # must not raise

    def test_triangle_violation_detected(self):
        violations = triangle_violations(_bad_matrix())
        assert violations
        x, y, z, gap = violations[0]
        assert gap > 0
        assert len({x, y, z}) == 3

    def test_check_metric_raises_on_violation(self):
        with pytest.raises(TriangleInequalityError):
            check_metric(_bad_matrix())

    def test_is_metric_false_on_violation(self):
        assert not is_metric(_bad_matrix())

    def test_random_metric_validates(self):
        assert is_metric(UniformRandomMetric(20, seed=1))

    def test_sampled_check_detects_gross_violation(self):
        assert not sampled_triangle_check(_bad_matrix(), samples=200, seed=0)

    def test_sampled_check_passes_good_metric(self):
        assert sampled_triangle_check(
            UniformRandomMetric(15, seed=2), samples=200, seed=0
        )

    def test_tiny_instances_are_trivially_metrics(self):
        assert is_metric(DistanceMatrix(np.zeros((1, 1))))
        assert sampled_triangle_check(DistanceMatrix(np.zeros((2, 2))))


def _canonical(violations):
    """Key a violation on its unordered endpoint pair plus middle vertex.

    The full scan's broadcast reports each violating triple in both x↔z
    orientations; the pair scan reports one.  Canonicalizing makes the two
    comparable.
    """
    return {(min(x, z), y, max(x, z)) for x, y, z, _ in violations}


class TestPairTriangleCheck:
    def test_matches_full_scan_after_single_edge_change(self):
        # Start from a true metric, break one edge, and check that the O(n)
        # pair scan finds exactly the triples the O(n^3) scan finds.
        rng = np.random.default_rng(4)
        for trial in range(20):
            n = int(rng.integers(5, 12))
            matrix = rng.uniform(1.0, 2.0, (n, n))
            matrix = (matrix + matrix.T) / 2
            np.fill_diagonal(matrix, 0.0)  # d in [1,2] satisfies the triangle
            u, v = map(int, rng.choice(n, size=2, replace=False))
            # Push d(u,v) up (may exceed d(u,y)+d(y,v)) or down (may undercut
            # |d(u,y)-d(y,v)|) — both violation families must be caught.
            matrix[u, v] = matrix[v, u] = float(rng.uniform(0.0, 5.0))
            dm = DistanceMatrix(matrix)
            full = _canonical(triangle_violations(dm, max_violations=10_000))
            pair = _canonical(
                pair_triangle_violations(dm, u, v, max_violations=10_000)
            )
            assert pair == full, f"trial {trial}: pair scan != full scan"

    def test_clean_pair_reports_nothing(self):
        metric = UniformRandomMetric(15, seed=3)
        assert pair_triangle_violations(metric, 2, 9) == []
        assert pair_triangle_violations(metric, 4, 4) == []

    def test_elements_filter_restricts_third_vertices(self):
        bad = _bad_matrix()  # the 0-1-2 triple violates via middle vertex 1
        assert pair_triangle_violations(bad, 0, 2)
        assert pair_triangle_violations(bad, 0, 2, elements=np.array([1]))
        empty = np.array([], dtype=int)
        assert pair_triangle_violations(bad, 0, 2, elements=empty) == []

    def test_max_violations_caps_output(self):
        n = 8
        matrix = np.full((n, n), 1.0)
        np.fill_diagonal(matrix, 0.0)
        matrix[0, 1] = matrix[1, 0] = 10.0  # violates via every third vertex
        found = pair_triangle_violations(DistanceMatrix(matrix), 0, 1, max_violations=3)
        assert len(found) == 3


class TestRelaxedTriangle:
    def test_true_metric_has_alpha_at_least_one(self, small_matrix):
        assert relaxation_parameter(small_matrix) >= 1.0

    def test_violating_matrix_has_alpha_below_one(self):
        alpha = relaxation_parameter(_bad_matrix())
        assert alpha == pytest.approx(2.0 / 5.0)

    def test_satisfies_relaxed_triangle(self):
        bad = _bad_matrix()
        assert satisfies_relaxed_triangle(bad, 0.4)
        assert not satisfies_relaxed_triangle(bad, 0.8)

    def test_small_instances_vacuous(self):
        assert relaxation_parameter(DistanceMatrix(np.zeros((2, 2)))) == float("inf")
