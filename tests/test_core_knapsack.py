"""Tests for knapsack-constrained diversification (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.knapsack import exact_knapsack_diversify, knapsack_greedy
from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.metrics.discrete import UniformRandomMetric


@pytest.fixture
def instance_costs():
    instance = make_synthetic_instance(12, seed=42)
    rng = np.random.default_rng(42)
    costs = rng.uniform(0.5, 2.0, size=12)
    return instance.objective, costs


class TestKnapsackGreedy:
    def test_budget_respected(self, instance_costs):
        objective, costs = instance_costs
        budget = 4.0
        result = knapsack_greedy(objective, costs, budget)
        assert sum(costs[i] for i in result.selected) <= budget + 1e-9
        assert result.metadata["spent"] <= budget + 1e-9

    def test_zero_budget_selects_nothing_priced(self, instance_costs):
        objective, costs = instance_costs
        result = knapsack_greedy(objective, costs, 0.0)
        assert all(costs[i] == 0 for i in result.selected)

    def test_huge_budget_takes_everything_useful(self, instance_costs):
        objective, costs = instance_costs
        result = knapsack_greedy(objective, costs, budget=1000.0)
        # With distances ≥ 1 every addition has positive potential, so all
        # elements are selected.
        assert result.size == objective.n

    def test_partial_enumeration_never_worse(self, instance_costs):
        objective, costs = instance_costs
        budget = 5.0
        plain = knapsack_greedy(objective, costs, budget)
        enumerated = knapsack_greedy(
            objective, costs, budget, partial_enumeration_size=2
        )
        assert enumerated.objective_value >= plain.objective_value - 1e-9
        assert "enum2" in enumerated.algorithm

    def test_close_to_optimal_on_small_instances(self):
        for seed in range(3):
            instance = make_synthetic_instance(9, seed=seed)
            objective = instance.objective
            rng = np.random.default_rng(seed)
            costs = rng.uniform(0.5, 1.5, size=9)
            budget = 3.0
            greedy = knapsack_greedy(
                objective, costs, budget, partial_enumeration_size=2
            )
            optimum = exact_knapsack_diversify(objective, costs, budget)
            assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_submodular_quality_supported(self):
        metric = UniformRandomMetric(10, seed=3)
        coverage = CoverageFunction.random(10, 6, seed=3)
        objective = Objective(coverage, metric, tradeoff=0.3)
        costs = np.ones(10)
        result = knapsack_greedy(objective, costs, budget=4.0)
        assert result.size <= 4

    def test_candidate_restriction(self, instance_costs):
        objective, costs = instance_costs
        result = knapsack_greedy(objective, costs, 4.0, candidates=[0, 1, 2, 3])
        assert result.selected <= {0, 1, 2, 3}

    def test_validation(self, instance_costs):
        objective, costs = instance_costs
        with pytest.raises(InvalidParameterError):
            knapsack_greedy(objective, costs, -1.0)
        with pytest.raises(InvalidParameterError):
            knapsack_greedy(objective, costs[:-1], 1.0)
        with pytest.raises(InvalidParameterError):
            knapsack_greedy(objective, -costs, 1.0)
        with pytest.raises(InvalidParameterError):
            knapsack_greedy(objective, costs, 1.0, partial_enumeration_size=-1)


class TestExactKnapsack:
    def test_budget_respected_and_optimal(self, instance_costs):
        objective, costs = instance_costs
        budget = 3.0
        result = exact_knapsack_diversify(objective, costs, budget)
        assert sum(costs[i] for i in result.selected) <= budget + 1e-9
        # The optimum is at least as good as any greedy completion.
        greedy = knapsack_greedy(objective, costs, budget, partial_enumeration_size=2)
        assert result.objective_value >= greedy.objective_value - 1e-9

    def test_limit_guard(self):
        instance = make_synthetic_instance(40, seed=0)
        with pytest.raises(InvalidParameterError):
            exact_knapsack_diversify(
                instance.objective, np.ones(40), 5.0, subset_limit=1000
            )

    def test_negative_budget_rejected(self, instance_costs):
        objective, costs = instance_costs
        with pytest.raises(InvalidParameterError):
            exact_knapsack_diversify(objective, costs, -1.0)
