"""Observability suite: span tracing, the metrics registry, and the
instrumented solve / dynamic / serving paths.

The acceptance contract for the tracing layer is exercised the way a
consumer would: run a traced sharded solve and a traced dynamic tick,
*export* the trace, re-parse the Chrome-trace JSON from disk, and verify
the schema and the parent/child nesting from the parsed file — not from
in-memory objects.
"""

from __future__ import annotations

import asyncio
import json
import pickle

import numpy as np
import pytest

from repro.dynamic.events import EventBatch
from repro.dynamic.perturbation import WeightIncrease
from repro.dynamic.session import DynamicSession
from repro.exceptions import InvalidParameterError
from repro.obs.instrument import maybe_span, maybe_start_span, phase_timings
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import NULL_HANDLE, SpanBundle, Stopwatch, Trace
from repro.serve.server import ServerStats


# ----------------------------------------------------------------------
# Trace primitives
# ----------------------------------------------------------------------
class TestTrace:
    def test_nesting_follows_context(self):
        trace = Trace()
        with trace.span("root") as root:
            with trace.span("child") as child:
                with trace.span("grandchild"):
                    pass
        spans = {s.name: s for s in trace.spans()}
        assert spans["root"].parent_id is None
        assert spans["child"].parent_id == root.id
        assert spans["grandchild"].parent_id == child.id

    def test_sibling_spans_share_parent(self):
        trace = Trace()
        with trace.span("root") as root:
            with trace.span("first"):
                pass
            with trace.span("second"):
                pass
        spans = {s.name: s for s in trace.spans()}
        assert spans["first"].parent_id == root.id
        assert spans["second"].parent_id == root.id

    def test_two_traces_do_not_adopt_each_others_parents(self):
        a, b = Trace(), Trace()
        with a.span("outer"):
            with b.span("inner"):
                pass
        (inner,) = b.spans()
        assert inner.parent_id is None

    def test_exception_marks_error_status(self):
        trace = Trace()
        with pytest.raises(ValueError):
            with trace.span("boom"):
                raise ValueError("injected")
        (span,) = trace.spans()
        assert span.status == "error"
        assert "injected" in span.attrs["error"]

    def test_explicit_parent_crosses_context_gap(self):
        # run_in_executor does not carry contextvars; the explicit
        # parent_id override is what the serving tier relies on.
        trace = Trace()
        root = trace.start_span("window", parent_id=None)
        with trace.span("execute", parent_id=root.id):
            pass
        root.finish()
        spans = {s.name: s for s in trace.spans()}
        assert spans["execute"].parent_id == spans["window"].span_id

    def test_handle_set_and_idempotent_finish(self):
        trace = Trace()
        handle = trace.start_span("phase", n=10)
        handle.set(extra=True).finish()
        handle.finish(status="late")  # no-op: already finished
        (span,) = trace.spans()
        assert span.attrs == {"n": 10, "extra": True}
        assert span.status == "ok"

    def test_record_span_synthetic(self):
        trace = Trace()
        span = trace.record_span(
            "shard", parent_id=None, status="worker_crash", shard=3
        )
        assert span.duration_s == 0.0
        assert trace.find("shard")[0].status == "worker_crash"

    def test_bundle_adopt_remaps_and_reparents(self):
        worker = Trace()
        with worker.span("shard"):
            with worker.span("greedy"):
                pass
        bundle = pickle.loads(pickle.dumps(worker.bundle()))
        assert isinstance(bundle, SpanBundle)
        assert bundle.elapsed > 0.0

        parent = Trace()
        root = parent.start_span("solve_sharded", parent_id=None)
        adopted_roots = parent.adopt(bundle, parent_id=root.id)
        root.finish()
        spans = {s.name: s for s in parent.spans()}
        assert spans["shard"].parent_id == root.id
        assert spans["shard"].span_id in adopted_roots
        assert spans["greedy"].parent_id == spans["shard"].span_id
        # Remapped into the parent's id space: no collisions with the root.
        assert len({s.span_id for s in parent.spans()}) == 3

    def test_aggregate_and_descendants(self):
        trace = Trace()
        with trace.span("root") as root:
            with trace.span("phase"):
                pass
            with trace.span("phase"):
                pass
        other = trace.record_span("phase", parent_id=None)
        totals = trace.aggregate(root.id)
        assert set(totals) == {"phase"}
        assert len(trace.descendants(root.id)) == 2
        assert other.span_id not in {
            s.span_id for s in trace.descendants(root.id)
        }

    def test_chrome_export_round_trip(self, tmp_path):
        trace = Trace()
        with trace.span("root", n=5):
            with trace.span("child"):
                pass
        path = str(tmp_path / "trace.json")
        assert trace.export(path) == path
        with open(path, "r", encoding="utf-8") as stream:
            doc = json.load(stream)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = {e["name"]: e for e in doc["traceEvents"]}
        assert events["root"]["ph"] == "X"
        assert events["root"]["cat"] == "repro"
        assert events["root"]["args"]["n"] == 5
        assert events["child"]["args"]["parent_id"] == (
            events["root"]["args"]["span_id"]
        )
        assert events["root"]["dur"] >= events["child"]["dur"] >= 0.0


class TestMaybeSpan:
    def test_null_path_yields_shared_handle(self):
        with maybe_span(None, "anything", a=1) as handle:
            assert handle is NULL_HANDLE
            assert handle.id is None
            handle.set(b=2)  # no-op, no error
        assert maybe_start_span(None, "x") is NULL_HANDLE

    def test_traced_path_records(self):
        trace = Trace()
        with maybe_span(trace, "phase", k=1) as handle:
            handle.set(done=True)
        (span,) = trace.spans()
        assert span.attrs == {"k": 1, "done": True}

    def test_phase_timings_groups_by_name(self):
        trace = Trace()
        root = trace.start_span("solve", parent_id=None)
        with trace.span("restrict"):
            pass
        with trace.span("greedy"):
            pass
        root.finish()
        timings = phase_timings(trace, root.id, total=1.25)
        assert set(timings) == {"restrict", "greedy", "total"}
        assert timings["total"] == 1.25


# ----------------------------------------------------------------------
# Instrumented pipelines, verified from the exported JSON
# ----------------------------------------------------------------------
def _load_events(trace, tmp_path, name):
    path = str(tmp_path / name)
    trace.export(path)
    with open(path, "r", encoding="utf-8") as stream:
        doc = json.load(stream)
    events = doc["traceEvents"]
    ids = {e["args"]["span_id"] for e in events}
    for event in events:
        assert event["ph"] == "X" and event["cat"] == "repro"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        parent = event["args"]["parent_id"]
        assert parent is None or parent in ids
    return events


class TestInstrumentedSolve:
    @pytest.fixture
    def instance(self):
        from repro.data.synthetic import make_feature_instance

        return make_feature_instance(400, dimension=4, seed=3)

    def test_solve_records_timings_metadata(self, instance):
        from repro.core.solver import solve

        trace = Trace()
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            p=5,
            trace=trace,
        )
        timings = result.metadata["timings"]
        assert "total" in timings
        assert timings["total"] > 0.0
        # Untraced solves carry no timings key at all.
        plain = solve(
            instance.quality, instance.metric, tradeoff=instance.tradeoff, p=5
        )
        assert "timings" not in plain.metadata
        assert plain.selected == result.selected

    def test_sharded_solve_export_nesting(self, instance, tmp_path):
        from repro.core.sharding import solve_sharded

        trace = Trace()
        result = solve_sharded(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            p=5,
            shards=4,
            trace=trace,
        )
        assert "timings" in result.metadata
        events = _load_events(trace, tmp_path, "sharded.json")
        by_id = {e["args"]["span_id"]: e for e in events}
        roots = [e for e in events if e["args"]["parent_id"] is None]
        assert [e["name"] for e in roots] == ["solve_sharded"]
        shards = [e for e in events if e["name"] == "shard"]
        assert len(shards) == 4
        for shard in shards:
            assert by_id[shard["args"]["parent_id"]]["name"] == "solve_sharded"
            assert shard["args"]["status"] == "ok"
        # The per-shard greedy work nests *under* its shard span even though
        # it ran in a worker trace and was adopted via a bundle.
        nested = [
            e
            for e in events
            if e["args"]["parent_id"] in {s["args"]["span_id"] for s in shards}
        ]
        assert nested, "expected spans nested under the shard spans"

    def test_dynamic_tick_export_nesting(self, tmp_path):
        rng = np.random.default_rng(5)
        points = rng.normal(size=(60, 3))
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff**2).sum(axis=-1))
        weights = rng.uniform(1.0, 2.0, size=60)

        trace = Trace()
        session = DynamicSession(weights, 6, distances=distances, trace=trace)
        for element in (3, 7, 11):
            outcome = session.apply_events(
                EventBatch.from_perturbations([WeightIncrease(element, 0.1)])
            )
        assert "timings" in outcome.metadata
        assert outcome.metadata["timings"]["total"] > 0.0

        events = _load_events(trace, tmp_path, "ticks.json")
        by_id = {e["args"]["span_id"]: e for e in events}
        ticks = [e for e in events if e["name"] == "tick"]
        assert len(ticks) == 3
        assert [t["args"]["tick"] for t in ticks] == [0, 1, 2]
        repairs = [e for e in events if e["name"] == "repair"]
        assert len(repairs) == 3
        for repair in repairs:
            apply_event = by_id[repair["args"]["parent_id"]]
            assert apply_event["name"] == "apply"
            assert by_id[apply_event["args"]["parent_id"]]["name"] == "tick"
            assert repair["args"]["certificate"] in {"hit", "miss"}

    def test_untraced_session_records_nothing(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(40, 3))
        diff = points[:, None, :] - points[None, :, :]
        distances = np.sqrt((diff**2).sum(axis=-1))
        weights = rng.uniform(1.0, 2.0, size=40)
        session = DynamicSession(weights, 5, distances=distances)
        outcome = session.apply_events(
            EventBatch.from_perturbations([WeightIncrease(1, 0.1)])
        )
        assert "timings" not in outcome.metadata


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels_and_render(self):
        registry = MetricsRegistry(enabled=True)
        ticks = registry.counter("ticks_total", labelnames=("backend",))
        ticks.inc(backend="dense")
        ticks.inc(2, backend="sharded")
        assert ticks.value(backend="dense") == 1.0
        assert ticks.value(backend="sharded") == 2.0
        rendered = registry.render()
        assert "# TYPE ticks_total counter" in rendered
        assert 'ticks_total{backend="dense"} 1' in rendered

    def test_counter_rejects_negative_and_bad_labels(self):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("c", labelnames=("stage",))
        with pytest.raises(InvalidParameterError):
            counter.inc(-1.0, stage="x")
        with pytest.raises(InvalidParameterError):
            counter.inc(wrong="x")

    def test_disabled_registry_is_noop(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h")
        counter.inc()
        gauge.set(5.0)
        histogram.observe(0.1)
        assert not counter.enabled()
        assert counter.value() == 0.0
        assert gauge.value() == 0.0
        assert histogram.count() == 0
        registry.enable()
        counter.inc()
        assert counter.value() == 1.0

    def test_gauge_inc_dec(self):
        gauge = Gauge("pending")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value() == 1.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry(enabled=True)
        first = registry.counter("shared", labelnames=("k",))
        second = registry.counter("shared", labelnames=("k",))
        assert first is second
        with pytest.raises(InvalidParameterError):
            registry.gauge("shared")
        with pytest.raises(InvalidParameterError):
            registry.counter("shared", labelnames=("other",))

    def test_histogram_quantiles_interpolate(self):
        histogram = Histogram("lat", buckets=(0.1, 0.2, 0.4))
        for value in (0.05, 0.15, 0.15, 0.35):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(0.70)
        p50 = histogram.quantile(0.5)
        assert 0.1 <= p50 <= 0.2
        assert histogram.quantile(0.0) == pytest.approx(0.0, abs=0.1)
        with pytest.raises(InvalidParameterError):
            histogram.quantile(1.5)

    def test_histogram_overflow_interpolates_to_max(self):
        histogram = Histogram("lat", buckets=(0.1,))
        histogram.observe(0.5)
        histogram.observe(3.0)
        p99 = histogram.quantile(0.99)
        assert 0.1 < p99 <= 3.0
        assert histogram.quantile(0.5) <= p99

    def test_histogram_empty_quantile_zero(self):
        assert Histogram("lat").quantile(0.99) == 0.0

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(InvalidParameterError):
            Histogram("h", buckets=())
        with pytest.raises(InvalidParameterError):
            Histogram("h", buckets=(0.1, 0.1))
        with pytest.raises(InvalidParameterError):
            Histogram("h", buckets=(0.1, float("inf")))

    def test_histogram_prometheus_render(self):
        registry = MetricsRegistry(enabled=True)
        histogram = registry.histogram("fsync_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        rendered = registry.render()
        assert 'fsync_seconds_bucket{le="0.1"} 1' in rendered
        assert 'fsync_seconds_bucket{le="1"} 2' in rendered
        assert 'fsync_seconds_bucket{le="+Inf"} 3' in rendered
        assert "fsync_seconds_count 3" in rendered

    def test_registry_snapshot_and_reset(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("plain").inc(3)
        registry.counter("labeled", labelnames=("k",)).inc(k="v")
        snap = registry.snapshot()
        assert snap["plain"] == 3.0
        assert snap["labeled"] == {'k="v"': 1.0}
        registry.reset()
        assert registry.snapshot()["plain"] == 0.0

    def test_default_registry_disabled_by_default(self):
        assert isinstance(get_registry(), MetricsRegistry)


class TestInstrumentedMetrics:
    def test_solve_and_ticks_increment_shared_counters(self):
        from repro.core.solver import solve
        from repro.data.synthetic import make_feature_instance
        from repro.obs.instrument import SOLVES, TICKS

        registry = get_registry()
        was_enabled = registry.enabled
        registry.enable()
        try:
            base_solves = SOLVES.value(path="plain")
            base_ticks = TICKS.value(backend="dense")
            instance = make_feature_instance(120, dimension=3, seed=9)
            solve(
                instance.quality,
                instance.metric,
                tradeoff=instance.tradeoff,
                p=4,
            )
            rng = np.random.default_rng(9)
            points = rng.normal(size=(30, 3))
            diff = points[:, None, :] - points[None, :, :]
            distances = np.sqrt((diff**2).sum(axis=-1))
            session = DynamicSession(
                rng.uniform(1.0, 2.0, size=30), 4, distances=distances
            )
            session.apply_events(
                EventBatch.from_perturbations([WeightIncrease(2, 0.1)])
            )
            assert SOLVES.value(path="plain") == base_solves + 1
            assert TICKS.value(backend="dense") == base_ticks + 1
        finally:
            if not was_enabled:
                registry.disable()


# ----------------------------------------------------------------------
# Serving stats (histogram-backed percentiles)
# ----------------------------------------------------------------------
class TestServerStats:
    def test_snapshot_percentiles_from_histograms(self):
        stats = ServerStats()
        for ms in range(1, 101):
            stats.record_latency(ms / 1000.0)
            stats.queue_wait.observe(ms / 10_000.0)
            stats.execute.observe(ms / 2_000.0)
        stats.completed = 100
        snap = stats.snapshot()
        # Bucket-interpolated estimates: p50 near 50ms, p99 near 100ms,
        # within the bucket resolution of the default bounds.
        assert 25.0 <= snap["p50_ms"] <= 100.0
        assert snap["p99_ms"] >= snap["p50_ms"]
        assert 0.0 < snap["queue_wait_p50_ms"] <= snap["queue_wait_p99_ms"]
        assert 0.0 < snap["execute_p50_ms"] <= snap["execute_p99_ms"]
        # The raw ring is retained but bounded.
        assert len(stats.latencies) == 100

    def test_latency_ring_stays_bounded(self):
        from repro.serve.server import _LATENCY_WINDOW

        stats = ServerStats()
        for _ in range(_LATENCY_WINDOW + 100):
            stats.record_latency(0.001)
        assert len(stats.latencies) == _LATENCY_WINDOW
        assert stats.latency.count() == _LATENCY_WINDOW + 100

    def test_traced_server_window_spans(self, tmp_path):
        from repro.data.synthetic import make_feature_instance
        from repro.serve.corpus import PreparedCorpus
        from repro.serve.server import Server

        instance = make_feature_instance(200, dimension=3, seed=11)
        corpus = PreparedCorpus(
            instance.quality, instance.metric, tradeoff=instance.tradeoff
        )
        trace = Trace()

        async def run():
            async with Server(corpus, max_wait_s=0.001, trace=trace) as server:
                await asyncio.gather(
                    *(
                        server.submit(list(range(i, i + 40)), p=4)
                        for i in range(3)
                    )
                )

        asyncio.run(run())
        events = _load_events(trace, tmp_path, "serve.json")
        windows = [e for e in events if e["name"] == "window"]
        assert windows, "expected at least one window span"
        window_ids = {w["args"]["span_id"] for w in windows}
        executes = [e for e in events if e["name"] == "execute"]
        waits = [e for e in events if e["name"] == "queue_wait"]
        assert executes and waits
        for event in executes + waits:
            assert event["args"]["parent_id"] in window_ids
        assert sum(w["args"]["completed"] for w in windows) == 3


# ----------------------------------------------------------------------
# Stopwatch (absorbed into the span layer, API unchanged)
# ----------------------------------------------------------------------
class TestStopwatchCompat:
    def test_reexported_from_utils_timing(self):
        from repro.utils.timing import Stopwatch as LegacyStopwatch

        assert LegacyStopwatch is Stopwatch

    def test_bundle_elapsed_matches_stopwatch_pattern(self):
        # The shard map folds bundle.elapsed into its shard Stopwatch; the
        # two accountings must agree on what a worker's elapsed time is.
        worker = Trace()
        with worker.span("shard"):
            pass
        watch = Stopwatch()
        watch.add(worker.bundle().elapsed)
        assert watch.elapsed_seconds == pytest.approx(
            worker.spans()[0].duration_s
        )
