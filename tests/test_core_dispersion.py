"""Tests for the pure max-sum dispersion greedy (Ravi et al. / Corollary 1)."""

from __future__ import annotations

import pytest

from repro.core.dispersion import greedy_dispersion
from repro.core.exact import exact_dispersion
from repro.exceptions import InvalidParameterError
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.euclidean import EuclideanMetric

import numpy as np


class TestGreedyDispersion:
    def test_selects_requested_cardinality(self):
        metric = UniformRandomMetric(15, seed=0)
        result = greedy_dispersion(metric, 5)
        assert result.size == 5
        assert result.quality_value == 0.0

    def test_picks_farthest_points_on_a_line(self):
        metric = EuclideanMetric(np.array([0.0, 1.0, 2.0, 10.0, 20.0]))
        result = greedy_dispersion(metric, 2)
        assert result.selected == frozenset({0, 4})

    def test_two_approximation(self):
        for seed in range(4):
            metric = UniformRandomMetric(12, seed=seed)
            greedy = greedy_dispersion(metric, 4)
            optimum = exact_dispersion(metric, 4)
            assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_batch_variant_also_two_approximation(self):
        metric = UniformRandomMetric(10, seed=3)
        greedy = greedy_dispersion(metric, 4, batch_size=2)
        optimum = exact_dispersion(metric, 4)
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9
        assert greedy.size == 4

    def test_batch_size_validation(self):
        metric = UniformRandomMetric(5, seed=0)
        with pytest.raises(InvalidParameterError):
            greedy_dispersion(metric, 3, batch_size=0)

    def test_candidate_restriction(self):
        metric = UniformRandomMetric(10, seed=1)
        result = greedy_dispersion(metric, 3, candidates=[0, 1, 2, 3])
        assert result.selected <= {0, 1, 2, 3}

    def test_dispersion_equals_objective_value(self):
        metric = UniformRandomMetric(8, seed=2)
        result = greedy_dispersion(metric, 3)
        assert result.objective_value == pytest.approx(result.dispersion_value)
