"""Tests for bipartite matching and the Brualdi exchange bijection."""

from __future__ import annotations

import pytest

from repro.exceptions import MatroidError, NotIndependentError
from repro.matroids.exchange import exchange_bijection
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.matching import hopcroft_karp, maximum_bipartite_matching
from repro.matroids.partition import PartitionMatroid
from repro.matroids.transversal import TransversalMatroid
from repro.matroids.uniform import UniformMatroid


class TestHopcroftKarp:
    def test_perfect_matching(self):
        adjacency = {0: [0, 1], 1: [0], 2: [1, 2]}
        matching = hopcroft_karp(adjacency, 3, 3)
        assert len(matching) == 3
        assert len(set(matching.values())) == 3
        for left, right in matching.items():
            assert right in adjacency[left]

    def test_maximum_but_not_perfect(self):
        adjacency = {0: [0], 1: [0], 2: [0]}
        assert maximum_bipartite_matching(adjacency, 3, 1) == 1

    def test_empty_graph(self):
        assert hopcroft_karp({}, 0, 0) == {}
        assert hopcroft_karp({0: []}, 1, 1) == {}

    def test_larger_random_instance_agrees_with_bound(self):
        # A bipartite "crown": left i connects to right i and i+1 (mod k).
        k = 12
        adjacency = {i: [i, (i + 1) % k] for i in range(k)}
        assert maximum_bipartite_matching(adjacency, k, k) == k


class TestExchangeBijection:
    def _check_bijection(self, matroid, basis_x, basis_y):
        mapping = exchange_bijection(matroid, basis_x, basis_y)
        assert set(mapping.keys()) == set(basis_x) - set(basis_y)
        assert set(mapping.values()) == set(basis_y) - set(basis_x)
        for x, y in mapping.items():
            swapped = (set(basis_x) - {x}) | {y}
            assert matroid.is_independent(swapped)

    def test_uniform_matroid(self):
        matroid = UniformMatroid(6, 3)
        self._check_bijection(matroid, {0, 1, 2}, {3, 4, 5})

    def test_partition_matroid(self):
        matroid = PartitionMatroid(["a", "a", "b", "b", "c"], {"a": 1, "b": 1, "c": 1})
        self._check_bijection(matroid, {0, 2, 4}, {1, 3, 4})

    def test_graphic_matroid(self):
        # Two spanning trees of K4 (vertices 0..3).
        edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 3)]
        matroid = GraphicMatroid(4, edges)
        tree_a = {0, 1, 2}  # path 0-1-2-3
        tree_b = {3, 4, 5}  # star-ish 3-0, 0-2, 1-3
        assert matroid.is_independent(tree_a)
        assert matroid.is_independent(tree_b)
        self._check_bijection(matroid, tree_a, tree_b)

    def test_transversal_matroid(self):
        matroid = TransversalMatroid(5, [[0, 1, 2], [2, 3], [4, 0]])
        basis_a = {0, 2, 4}
        basis_b = {1, 3, 4}
        assert matroid.is_independent(basis_a)
        assert matroid.is_independent(basis_b)
        self._check_bijection(matroid, basis_a, basis_b)

    def test_identical_bases_give_empty_mapping(self):
        matroid = UniformMatroid(4, 2)
        assert exchange_bijection(matroid, {0, 1}, {0, 1}) == {}

    def test_rejects_dependent_sets(self):
        matroid = UniformMatroid(4, 2)
        with pytest.raises(NotIndependentError):
            exchange_bijection(matroid, {0, 1, 2}, {0, 1})

    def test_rejects_unequal_cardinalities(self):
        matroid = UniformMatroid(4, 2)
        with pytest.raises(MatroidError):
            exchange_bijection(matroid, {0, 1}, {2})
