"""Tests for Greedy A (Gollapudi–Sharma) and the matching-based baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import (
    gollapudi_sharma_greedy,
    matching_diversify,
    reduced_metric,
)
from repro.core.exact import exact_diversify
from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import SolverError
from repro.functions.coverage import CoverageFunction
from repro.functions.modular import ZeroFunction
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.validation import is_metric


class TestReducedMetric:
    def test_formula(self, small_objective):
        reduced = reduced_metric(small_objective)
        w = [0.9, 0.1, 0.5, 0.4]
        lam = small_objective.tradeoff
        for u in range(4):
            for v in range(4):
                if u == v:
                    assert reduced.distance(u, v) == 0.0
                else:
                    expected = (
                        w[u] + w[v] + 2 * lam * small_objective.metric.distance(u, v)
                    )
                    assert reduced.distance(u, v) == pytest.approx(expected)

    def test_reduction_preserves_metric(self):
        instance = make_synthetic_instance(12, seed=4)
        assert is_metric(reduced_metric(instance.objective))

    def test_zero_function_supported(self):
        metric = UniformRandomMetric(5, seed=0)
        objective = Objective(ZeroFunction(5), metric, tradeoff=1.0)
        reduced = reduced_metric(objective)
        assert reduced.distance(0, 1) == pytest.approx(2 * metric.distance(0, 1))

    def test_submodular_quality_rejected(self):
        metric = UniformRandomMetric(5, seed=0)
        coverage = CoverageFunction([[0]] * 5)
        objective = Objective(coverage, metric, tradeoff=0.5)
        with pytest.raises(SolverError):
            gollapudi_sharma_greedy(objective, 3)


class TestGreedyA:
    def test_selects_requested_cardinality_even_p(self, synthetic_objective_20):
        result = gollapudi_sharma_greedy(synthetic_objective_20, 6)
        assert result.size == 6
        assert result.algorithm == "greedy_a"

    def test_selects_requested_cardinality_odd_p(self, synthetic_objective_20):
        result = gollapudi_sharma_greedy(synthetic_objective_20, 7)
        assert result.size == 7

    def test_improved_variant_at_least_as_good_for_odd_p(self, synthetic_objective_20):
        plain = gollapudi_sharma_greedy(synthetic_objective_20, 5)
        improved = gollapudi_sharma_greedy(synthetic_objective_20, 5, improved=True)
        assert improved.objective_value >= plain.objective_value - 1e-9
        assert improved.algorithm == "greedy_a_improved"

    def test_first_pair_is_heaviest_reduced_edge(self, synthetic_objective_20):
        objective = synthetic_objective_20
        reduced = reduced_metric(objective)
        best_pair = max(
            (reduced.distance(u, v), (u, v))
            for u in range(20)
            for v in range(u + 1, 20)
        )[1]
        result = gollapudi_sharma_greedy(objective, 4)
        assert set(best_pair) <= result.selected
        assert tuple(result.order[:2]) == best_pair

    def test_pairs_are_disjoint(self, synthetic_objective_20):
        result = gollapudi_sharma_greedy(synthetic_objective_20, 8)
        pairs = result.metadata["pairs"]
        flattened = [element for pair in pairs for element in pair]
        assert len(flattened) == len(set(flattened)) == 8

    def test_two_approximation_on_modular_instances(self):
        for seed in range(4):
            instance = make_synthetic_instance(12, seed=seed)
            objective = instance.objective
            result = gollapudi_sharma_greedy(objective, 4)
            optimum = exact_diversify(objective, 4, method="enumerate")
            assert result.objective_value >= optimum.objective_value / 2 - 1e-9

    def test_p_zero_and_one(self, synthetic_objective_20):
        assert gollapudi_sharma_greedy(synthetic_objective_20, 0).size == 0
        assert gollapudi_sharma_greedy(synthetic_objective_20, 1).size == 1

    def test_deterministic(self, synthetic_objective_20):
        first = gollapudi_sharma_greedy(synthetic_objective_20, 6)
        second = gollapudi_sharma_greedy(synthetic_objective_20, 6)
        assert first.selected == second.selected


class TestMatchingBaseline:
    def test_selects_requested_cardinality(self, synthetic_objective_20):
        for p in (4, 5):
            result = matching_diversify(synthetic_objective_20, p)
            assert result.size == p

    def test_quality_on_small_instances(self):
        # The matching algorithm has the stronger 2 - 1/⌈p/2⌉ guarantee; check
        # it holds comfortably on random modular instances.
        for seed in range(3):
            instance = make_synthetic_instance(10, seed=seed)
            objective = instance.objective
            p = 4
            result = matching_diversify(objective, p)
            optimum = exact_diversify(objective, p, method="enumerate")
            bound = 2 - 1 / np.ceil(p / 2)
            assert result.objective_value >= optimum.objective_value / bound - 1e-9

    def test_matching_beats_or_matches_nothing_degenerate(self, small_objective):
        result = matching_diversify(small_objective, 2)
        assert result.size == 2
