"""Tests for the batched multi-query front end (repro.core.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import solve_many
from repro.core.solver import solve
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.base import Metric


class OracleMetric(Metric):
    """Matrix distances served only through the oracle interface."""

    def __init__(self, matrix: np.ndarray) -> None:
        self._backing = np.asarray(matrix, dtype=float)
        self.calls = 0

    @property
    def n(self) -> int:
        return self._backing.shape[0]

    def distance(self, u, v) -> float:
        self.calls += 1
        return float(self._backing[u, v])


@pytest.fixture
def corpus():
    return make_synthetic_instance(40, seed=11)


@pytest.fixture
def pools():
    rng = np.random.default_rng(4)
    return [sorted(rng.choice(40, size=10, replace=False).tolist()) for _ in range(6)]


class TestSolveMany:
    def test_matches_per_query_solve(self, corpus, pools):
        batched = solve_many(
            corpus.quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=4
        )
        assert len(batched) == len(pools)
        for pool, result in zip(pools, batched):
            single = solve(
                corpus.quality,
                corpus.metric,
                tradeoff=corpus.tradeoff,
                p=4,
                candidates=pool,
            )
            assert result.selected == single.selected
            assert result.objective_value == pytest.approx(single.objective_value)
            assert result.metadata["candidates"] == tuple(pool)

    def test_results_in_query_order(self, corpus, pools):
        batched = solve_many(
            corpus.quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=3
        )
        for pool, result in zip(pools, batched):
            assert result.selected <= set(pool)

    def test_empty_and_singleton_pools(self, corpus):
        batched = solve_many(
            corpus.quality,
            corpus.metric,
            [[], [7], list(range(40))],
            tradeoff=corpus.tradeoff,
            p=3,
        )
        assert batched[0].size == 0
        assert batched[1].selected == frozenset({7})
        assert batched[2].size == 3

    def test_thread_pool_matches_sequential(self, corpus, pools):
        sequential = solve_many(
            corpus.quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=4
        )
        threaded = solve_many(
            corpus.quality,
            corpus.metric,
            pools,
            tradeoff=corpus.tradeoff,
            p=4,
            max_workers=4,
        )
        for a, b in zip(sequential, threaded):
            assert a.selected == b.selected
            assert a.objective_value == pytest.approx(b.objective_value)

    def test_every_algorithm_dispatches(self, corpus, pools):
        for algorithm in (
            "greedy_best_pair", "greedy_a", "matching", "mmr", "local_search"
        ):
            results = solve_many(
                corpus.quality,
                corpus.metric,
                pools[:2],
                tradeoff=corpus.tradeoff,
                p=3,
                algorithm=algorithm,
            )
            for pool, result in zip(pools, results):
                assert result.selected <= set(pool)

    def test_matroid_restricted_per_query(self, corpus, pools):
        matroid = PartitionMatroid([i % 4 for i in range(40)], {j: 1 for j in range(4)})
        results = solve_many(
            corpus.quality,
            corpus.metric,
            pools,
            tradeoff=corpus.tradeoff,
            matroid=matroid,
        )
        for pool, result in zip(pools, results):
            assert result.selected <= set(pool)
            assert matroid.is_independent(result.selected)

    def test_oracle_metric_materialized_once(self, corpus, pools):
        oracle = OracleMetric(corpus.metric.to_matrix())
        results = solve_many(
            corpus.quality, oracle, pools, tradeoff=corpus.tradeoff, p=4
        )
        # Materialization costs one O(n²) sweep; per-query restriction then
        # touches the shared matrix, not the oracle.
        n = oracle.n
        assert oracle.calls <= n * (n - 1)
        reference = solve_many(
            corpus.quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=4
        )
        for a, b in zip(results, reference):
            assert a.selected == b.selected

    def test_unmaterialized_oracle_still_correct(self, corpus, pools):
        oracle = OracleMetric(corpus.metric.to_matrix())
        results = solve_many(
            corpus.quality,
            oracle,
            pools[:2],
            tradeoff=corpus.tradeoff,
            p=4,
            materialize=False,
        )
        reference = solve_many(
            corpus.quality, corpus.metric, pools[:2], tradeoff=corpus.tradeoff, p=4
        )
        for a, b in zip(results, reference):
            assert a.selected == b.selected
            assert a.objective_value == pytest.approx(b.objective_value, abs=1e-9)

    def test_no_per_query_full_matrix_copies(self, corpus):
        # Contiguous pools run on copy-free views of the shared matrix.
        results = solve_many(
            corpus.quality,
            corpus.metric,
            [range(0, 10), range(10, 20)],
            tradeoff=corpus.tradeoff,
            p=3,
        )
        assert all(r.size == 3 for r in results)

    def test_validation(self, corpus, pools):
        with pytest.raises(InvalidParameterError):
            solve_many(corpus.quality, corpus.metric, pools, tradeoff=0.2)
        with pytest.raises(InvalidParameterError):
            solve_many(
                corpus.quality,
                corpus.metric,
                pools,
                tradeoff=0.2,
                p=3,
                algorithm="magic",
            )
        with pytest.raises(InvalidParameterError):
            solve_many(
                corpus.quality, corpus.metric, pools, tradeoff=0.2, p=3, max_workers=0
            )
        with pytest.raises(InvalidParameterError):
            solve_many(
                corpus.quality, corpus.metric, [[0, 99]], tradeoff=0.2, p=2
            )

    def test_view_less_modular_quality_precomputed(self, corpus, pools):
        class CountingModular(ModularFunction):
            """Modular function whose weights_view is hidden (forces sweeps)."""

            sweeps = 0

            def marginal(self, element, subset):
                type(self).sweeps += 1
                return super().marginal(element, subset)

        CountingModular.sweeps = 0
        quality = CountingModular(corpus.weights)
        quality.weights_view = None  # hide the O(1) accessor
        results = solve_many(
            quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=4
        )
        assert len(results) == len(pools)
        # One O(n) sweep up front, not one per query.
        assert CountingModular.sweeps <= corpus.n


class TestSolveWindow:
    """The pre-restricted batch-window entry the serving tier drives."""

    def _window(self, corpus, pools, p=4):
        from repro.core.batch import WindowQuery
        from repro.core.objective import Objective
        from repro.core.restriction import Restriction

        objective = Objective(corpus.quality, corpus.metric, corpus.tradeoff)
        return [
            WindowQuery(restriction=Restriction(objective, pool), p=p)
            for pool in pools
        ]

    def test_matches_solve_many(self, corpus, pools):
        from repro.core.batch import solve_window

        window = self._window(corpus, pools)
        outcomes = solve_window(window)
        batched = solve_many(
            corpus.quality, corpus.metric, pools, tradeoff=corpus.tradeoff, p=4
        )
        for outcome, reference in zip(outcomes, batched):
            assert outcome.selected == reference.selected

    def test_per_query_weights_in_local_order(self, corpus):
        from repro.core.batch import solve_window

        [query] = self._window(corpus, [[5, 6, 7, 8]], p=2)
        query.weights = np.array([0.0, 100.0, 100.0, 0.0])
        [outcome] = solve_window([query])
        # Local weights boost pool positions 1 and 2 → global elements 6, 7.
        assert outcome.selected == {6, 7}

    def test_wrong_weight_length_isolated(self, corpus, pools):
        from repro.core.batch import solve_window

        window = self._window(corpus, pools[:2], p=2)
        window[0].weights = np.ones(3)  # pool has 10 elements
        bad, good = solve_window(window)
        assert isinstance(bad, InvalidParameterError)
        assert len(good.selected) == 2

    def test_invalid_query_isolated_unless_asked(self, corpus, pools):
        from repro.core.batch import solve_window

        window = self._window(corpus, pools[:2], p=2)
        window[1].algorithm = "magic"
        good, bad = solve_window(window)
        assert len(good.selected) == 2
        assert isinstance(bad, InvalidParameterError)
        with pytest.raises(InvalidParameterError):
            solve_window(window, isolate=False)

    def test_both_constraints_rejected(self, corpus, pools):
        from repro.core.batch import solve_window

        window = self._window(corpus, pools[:1], p=2)
        window[0].matroid = PartitionMatroid([0] * 10, {0: 2})
        [outcome] = solve_window(window)
        assert isinstance(outcome, InvalidParameterError)

    def test_skip_slots_are_none(self, corpus, pools):
        from repro.core.batch import solve_window

        window = self._window(corpus, pools[:3], p=2)
        outcomes = solve_window(window, skip=lambda i: i != 1)
        assert outcomes[0] is None and outcomes[2] is None
        assert len(outcomes[1].selected) == 2

    def test_shared_deadline_beats_longer_per_query(self, corpus, pools):
        from repro.core.batch import solve_window
        from repro.utils.deadline import Deadline

        window = self._window(corpus, pools[:2], p=2)
        window[0].deadline = Deadline(60.0)
        outcomes = solve_window(window, deadline=Deadline(0.0))
        for outcome in outcomes:
            assert outcome.selected == frozenset()
            assert outcome.metadata["interrupted"] is True
            assert outcome.metadata["phase"] == "window_queue"

    def test_p_clamped_to_pool_size(self, corpus):
        from repro.core.batch import solve_window

        [query] = self._window(corpus, [[0, 1, 2]], p=9)
        [outcome] = solve_window([query])
        assert outcome.selected == {0, 1, 2}
