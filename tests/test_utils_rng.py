"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).uniform(size=5)
        b = make_rng(42).uniform(size=5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).uniform(size=5)
        b = make_rng(2).uniform(size=5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert make_rng(generator) is generator

    def test_none_seed_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_are_independent_and_reproducible(self):
        first = [rng.uniform() for rng in spawn_rngs(5, 3)]
        second = [rng.uniform() for rng in spawn_rngs(5, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(10, 3) == derive_seed(10, 3)

    def test_streams_differ(self):
        assert derive_seed(10, 0) != derive_seed(10, 1)

    def test_none_passthrough(self):
        assert derive_seed(None, 2) is None
