"""Tests for the exact solvers, the MMR baseline and the result container."""

from __future__ import annotations

import pytest

from repro.core.exact import exact_dispersion, exact_diversify
from repro.core.mmr import mmr_select
from repro.core.objective import Objective
from repro.core.result import SolverResult, build_result
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError, SolverError
from repro.matroids.partition import PartitionMatroid
from repro.metrics.discrete import UniformRandomMetric

import numpy as np


class TestExact:
    def test_branch_and_bound_matches_enumeration(self):
        for seed in range(4):
            instance = make_synthetic_instance(10, seed=seed)
            objective = instance.objective
            bnb = exact_diversify(objective, 4, method="branch_and_bound")
            enum = exact_diversify(objective, 4, method="enumerate")
            assert bnb.objective_value == pytest.approx(enum.objective_value)

    def test_branch_and_bound_with_submodular_quality(self):
        from repro.functions.coverage import CoverageFunction

        metric = UniformRandomMetric(9, seed=2)
        coverage = CoverageFunction.random(9, 5, seed=3)
        objective = Objective(coverage, metric, tradeoff=0.3)
        bnb = exact_diversify(objective, 3, method="branch_and_bound")
        enum = exact_diversify(objective, 3, method="enumerate")
        assert bnb.objective_value == pytest.approx(enum.objective_value)

    def test_matroid_constraint_enumeration(self):
        instance = make_synthetic_instance(8, seed=1)
        matroid = PartitionMatroid([i % 2 for i in range(8)], {0: 1, 1: 1})
        result = exact_diversify(instance.objective, matroid=matroid)
        assert matroid.is_independent(result.selected)
        assert result.size == 2

    def test_requires_exactly_one_constraint(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            exact_diversify(synthetic_objective_20)
        with pytest.raises(InvalidParameterError):
            exact_diversify(
                synthetic_objective_20, 3, matroid=PartitionMatroid([0] * 20, {0: 3})
            )

    def test_subset_limit_guard(self, synthetic_objective_20):
        with pytest.raises(SolverError):
            exact_diversify(
                synthetic_objective_20, 8, method="enumerate", subset_limit=10
            )

    def test_unknown_method_rejected(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            exact_diversify(synthetic_objective_20, 3, method="magic")

    def test_exact_dispersion(self):
        metric = UniformRandomMetric(8, seed=4)
        result = exact_dispersion(metric, 3)
        assert result.size == 3
        assert result.quality_value == 0.0

    def test_candidates_restriction(self, synthetic_objective_20):
        result = exact_diversify(synthetic_objective_20, 3, candidates=range(6))
        assert result.selected <= set(range(6))

    def test_p_zero(self, synthetic_objective_20):
        assert exact_diversify(synthetic_objective_20, 0).size == 0


class TestMMR:
    def test_selects_requested_cardinality(self, synthetic_objective_20):
        result = mmr_select(synthetic_objective_20, 5, theta=0.7)
        assert result.size == 5
        assert result.algorithm == "mmr"

    def test_pure_relevance_picks_top_weights(self, small_objective):
        result = mmr_select(small_objective, 2, theta=1.0)
        # weights are [0.9, 0.1, 0.5, 0.4] → top two are 0 and 2.
        assert result.selected == frozenset({0, 2})

    def test_theta_validation(self, small_objective):
        with pytest.raises(InvalidParameterError):
            mmr_select(small_objective, 2, theta=1.5)

    def test_explicit_similarity_matrix(self, small_objective):
        similarity = np.ones((4, 4))
        result = mmr_select(small_objective, 2, theta=0.5, similarity=similarity)
        assert result.size == 2

    def test_similarity_shape_validated(self, small_objective):
        with pytest.raises(InvalidParameterError):
            mmr_select(small_objective, 2, similarity=np.ones((3, 3)))

    def test_candidates_restriction(self, synthetic_objective_20):
        result = mmr_select(synthetic_objective_20, 3, candidates=[0, 1, 2, 3])
        assert result.selected <= {0, 1, 2, 3}


class TestSolverResult:
    def test_build_result_evaluates_components(self, small_objective):
        result = build_result(
            small_objective, {0, 2}, [0, 2], algorithm="test", iterations=2
        )
        assert result.objective_value == pytest.approx(small_objective.value({0, 2}))
        assert result.quality_value == pytest.approx(1.4)
        assert result.size == 2
        assert result.sorted_elements() == (0, 2)

    def test_approximation_factor(self):
        result = SolverResult(
            selected=frozenset({0}),
            order=(0,),
            objective_value=5.0,
            quality_value=5.0,
            dispersion_value=0.0,
            algorithm="x",
        )
        assert result.approximation_factor(10.0) == pytest.approx(2.0)

    def test_approximation_factor_zero_cases(self):
        zero = SolverResult(
            selected=frozenset(),
            order=(),
            objective_value=0.0,
            quality_value=0.0,
            dispersion_value=0.0,
            algorithm="x",
        )
        assert zero.approximation_factor(0.0) == 1.0
        assert zero.approximation_factor(3.0) == float("inf")

    def test_elapsed_ms_and_summary(self):
        result = SolverResult(
            selected=frozenset({1, 2}),
            order=(1, 2),
            objective_value=3.0,
            quality_value=1.0,
            dispersion_value=2.0,
            algorithm="greedy_b",
            elapsed_seconds=0.25,
        )
        assert result.elapsed_ms == pytest.approx(250.0)
        summary = result.summary()
        assert "greedy_b" in summary and "|S|=2" in summary
