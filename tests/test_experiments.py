"""Tests for the experiment harness and the table/figure reproduction code.

These use deliberately tiny workloads; the full paper-scale settings are the
functions' defaults and are exercised by the benchmark targets.
"""

from __future__ import annotations

import pytest

from repro.data.letor import SyntheticLetorCorpus
from repro.data.synthetic import make_synthetic_instance
from repro.core.greedy import greedy_diversify
from repro.core.exact import exact_diversify
from repro.exceptions import InvalidParameterError
from repro.experiments.appendix import appendix_bad_instance, run_appendix_comparison
from repro.experiments.dynamic_fig import figure1
from repro.experiments.harness import aggregate_trials, compare_algorithms
from repro.experiments.reporting import dict_rows, format_table, rows_to_markdown
from repro.experiments.tables import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
)


class TestHarness:
    def test_compare_and_aggregate(self):
        objective = make_synthetic_instance(12, seed=0).objective
        algorithms = {
            "greedy": lambda obj, p: greedy_diversify(obj, p),
        }
        rows = [
            compare_algorithms(
                objective,
                3,
                algorithms,
                compute_optimal=lambda o, p: exact_diversify(o, p),
            )
            for _ in range(2)
        ]
        aggregate = aggregate_trials(rows)
        assert aggregate.trials == 2
        assert aggregate.mean_optimal is not None
        af = aggregate.approximation_factor("greedy")
        assert 1.0 <= af <= 2.0
        assert rows[0].approximation_factor("greedy") == pytest.approx(af)

    def test_relative_factor_and_time_ratio(self):
        objective = make_synthetic_instance(10, seed=1).objective
        algorithms = {
            "a": lambda obj, p: greedy_diversify(obj, p),
            "b": lambda obj, p: greedy_diversify(obj, p, start="best_pair"),
        }
        row = compare_algorithms(objective, 3, algorithms)
        aggregate = aggregate_trials([row])
        assert aggregate.relative_factor("b", "a") is not None
        assert aggregate.time_ratio("a", "b") is not None

    def test_empty_inputs_rejected(self):
        objective = make_synthetic_instance(5, seed=2).objective
        with pytest.raises(InvalidParameterError):
            compare_algorithms(objective, 2, {})
        with pytest.raises(InvalidParameterError):
            aggregate_trials([])

    def test_mixed_p_rejected(self):
        objective = make_synthetic_instance(8, seed=3).objective
        algorithms = {"greedy": lambda obj, p: greedy_diversify(obj, p)}
        rows = [
            compare_algorithms(objective, 2, algorithms),
            compare_algorithms(objective, 3, algorithms),
        ]
        with pytest.raises(InvalidParameterError):
            aggregate_trials(rows)


class TestReporting:
    def test_format_table_aligns_columns(self):
        text = format_table(["a", "bb"], [[1, 2.34567], [None, "x"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.346" in text
        assert "-" in lines[-1]

    def test_rows_to_markdown(self):
        text = rows_to_markdown(["x"], [[1.23456]])
        assert text.startswith("| x |")
        assert "1.235" in text

    def test_dict_rows_projection(self):
        rows = dict_rows([{"a": 1, "b": 2}], ["b", "a", "missing"])
        assert rows == [[2, 1, None]]


class TestTables:
    """Each table function runs end-to-end on a tiny configuration."""

    def test_table1_small(self):
        table = table1(n=10, p_values=(2, 3), trials=2, seed=1)
        assert len(table.records) == 2
        for record in table.records:
            assert record["OPT"] >= record["GreedyB"] - 1e-9
            assert 1.0 <= record["AF_GreedyB"] <= 2.0
        assert "Table 1" in table.render()

    def test_table2_small(self):
        table = table2(n=15, p_values=(3, 5), trials=1, seed=2)
        assert len(table.records) == 2
        for record in table.records:
            assert record["LS"] >= record["GreedyB"] - 1e-9
            assert record["Time_GreedyB_ms"] >= 0.0

    def test_table3_small(self):
        table = table3(n=10, p_values=(2, 3), trials=1, seed=3)
        assert len(table.records) == 2
        for record in table.records:
            assert 1.0 <= record["AF_GreedyB"] <= 2.0

    def test_table4_small(self):
        corpus = SyntheticLetorCorpus(num_queries=1, docs_per_query=15, seed=4)
        table = table4(top_k=12, p_values=(2, 3), corpus=corpus)
        assert len(table.records) == 2
        for record in table.records:
            assert record["OPT"] >= max(record["GreedyA"], record["GreedyB"]) - 1e-9

    def test_table5_small(self):
        corpus = SyntheticLetorCorpus(num_queries=1, docs_per_query=20, seed=5)
        table = table5(top_k=20, p_values=(3, 5), corpus=corpus)
        assert len(table.records) == 2
        for record in table.records:
            assert record["LS"] >= record["GreedyB"] - 1e-9

    def test_table6_small(self):
        corpus = SyntheticLetorCorpus(num_queries=2, docs_per_query=12, seed=6)
        table = table6(num_queries=2, top_k=10, p_values=(2, 3), corpus=corpus)
        assert len(table.records) == 2
        for record in table.records:
            assert record["AF_GreedyA"] >= 1.0 - 1e-9
            assert record["AF_GreedyB"] >= 1.0 - 1e-9

    def test_table7_small(self):
        corpus = SyntheticLetorCorpus(num_queries=2, docs_per_query=12, seed=7)
        table = table7(num_queries=2, docs_per_query=12, p_values=(3,), corpus=corpus)
        assert len(table.records) == 1
        assert table.records[0]["AF_B/A"] > 0

    def test_table8_small(self):
        corpus = SyntheticLetorCorpus(num_queries=1, docs_per_query=12, seed=8)
        table = table8(top_k=10, p_values=(2, 3), corpus=corpus)
        assert len(table.records) == 2
        for record, p in zip(table.records, (2, 3)):
            assert len(record["GreedyB_docs"].split()) == p
            assert 0 <= record["B∩OPT"] <= p


class TestFigure1:
    def test_small_run_shapes(self):
        result = figure1(n=8, p=3, tradeoffs=(0.2, 0.8), steps=3, repeats=2, seed=9)
        assert set(result.curves) == {"VPERTURBATION", "EPERTURBATION", "MPERTURBATION"}
        for curve in result.curves.values():
            assert set(curve) == {0.2, 0.8}
        assert 1.0 <= result.worst_overall() <= 3.0 + 1e-9
        assert "Figure 1" in result.render()


class TestAppendix:
    def test_bad_instance_structure(self):
        instance = appendix_bad_instance(r=10)
        assert instance.objective.n == 12
        assert instance.matroid.rank() == 11
        assert instance.optimal_like_value > instance.greedy_trap_value

    def test_greedy_ratio_grows_with_r(self):
        small = run_appendix_comparison(appendix_bad_instance(r=6))
        large = run_appendix_comparison(appendix_bad_instance(r=20))
        assert large["greedy_ratio"] > small["greedy_ratio"] > 1.0

    def test_local_search_is_fine_on_bad_instance(self):
        comparison = run_appendix_comparison(appendix_bad_instance(r=12))
        assert comparison["local_search_ratio"] <= 2.0 + 1e-6
        assert comparison["greedy_ratio"] > comparison["local_search_ratio"]

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            appendix_bad_instance(r=1)
        with pytest.raises(InvalidParameterError):
            appendix_bad_instance(r=5, ell=-1.0)
        with pytest.raises(InvalidParameterError):
            appendix_bad_instance(r=5, epsilon=0.0)
