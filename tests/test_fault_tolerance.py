"""Fault-tolerance suite: deadlines, checkpoint/resume, shard-worker
recovery, numerical degradation and the fault-injection harness itself.

Every scenario in here asserts the same contract: an injected fault (or an
expired budget) never raises out of a solve and never hangs it — the solver
returns a *feasible* solution with honest ``interrupted`` / ``degraded``
metadata instead.
"""

from __future__ import annotations

import asyncio
import pickle
import threading
import time
import warnings

import numpy as np
import pytest

from repro.core.batch import solve_many
from repro.core.checkpoint import SolveCheckpoint
from repro.core.greedy import greedy_diversify
from repro.core.kernels import best_swap_scan_from_gains
from repro.core.local_search import (
    LocalSearchConfig,
    local_search_diversify,
    refine_with_local_search,
)
from repro.core.objective import Objective
from repro.core.sharding import solve_sharded
from repro.core.solver import solve
from repro.core.streaming import streaming_diversify
from repro.dynamic.engine import DynamicDiversifier, EngineSnapshot
from repro.dynamic.perturbation import WeightIncrease
from repro.exceptions import (
    InvalidParameterError,
    NonFiniteDataError,
    NumericalDegradationWarning,
)
from repro.functions.log_det import LogDeterminantFunction
from repro.functions.modular import ModularFunction
from repro.matroids.uniform import UniformMatroid
from repro.metrics.euclidean import EuclideanMetric
from repro.obs.trace import Trace
from repro.testing.faults import (
    CrashingMetric,
    CrashingSetFunction,
    NaNMetric,
    NaNSetFunction,
    SlowMetric,
    WorkerKillingMetric,
)
from repro.utils.deadline import Deadline


@pytest.fixture
def instance():
    rng = np.random.default_rng(7)
    features = rng.normal(size=(160, 5))
    weights = rng.uniform(1.0, 2.0, size=160)
    return ModularFunction(weights), EuclideanMetric(features)


@pytest.fixture
def objective(instance):
    quality, metric = instance
    return Objective(quality, metric, 0.8)


# ----------------------------------------------------------------------
# Deadline primitive
# ----------------------------------------------------------------------
class TestDeadline:
    def test_zero_budget_is_expired(self):
        deadline = Deadline(0.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_rejects_negative_nan_inf(self):
        for bad in (-1.0, float("nan"), float("inf")):
            with pytest.raises(InvalidParameterError):
                Deadline(bad)

    def test_coerce_passthrough_shares_clock(self):
        deadline = Deadline(60.0)
        assert Deadline.coerce(deadline) is deadline
        assert Deadline.coerce(None) is None
        assert isinstance(Deadline.coerce(5), Deadline)

    def test_pickle_ships_remaining_budget(self):
        deadline = Deadline(60.0)
        clone = pickle.loads(pickle.dumps(deadline))
        assert not clone.expired()
        assert clone.seconds <= 60.0
        expired = pickle.loads(pickle.dumps(Deadline(0.0)))
        assert expired.expired()


# ----------------------------------------------------------------------
# Anytime solving: deadlines across the algorithm stack
# ----------------------------------------------------------------------
class TestAnytimeDeadlines:
    def test_greedy_expired_deadline_returns_empty_interrupted(self, objective):
        result = greedy_diversify(objective, 10, deadline=0.0)
        assert result.selected == frozenset()
        assert result.metadata["interrupted"] is True
        assert result.metadata["phase"] == "greedy_selection"
        assert result.metadata["deadline_s"] == 0.0

    def test_greedy_generous_deadline_matches_unconstrained(self, objective):
        plain = greedy_diversify(objective, 8)
        timed = greedy_diversify(objective, 8, deadline=60.0)
        assert timed.selected == plain.selected
        assert "interrupted" not in timed.metadata

    def test_local_search_expired_deadline_keeps_feasible_basis(self, objective):
        matroid = UniformMatroid(objective.n, 6)
        result = local_search_diversify(objective, matroid, deadline=0.0)
        assert len(result.selected) == 6
        assert result.metadata["interrupted"] is True
        assert result.metadata["converged"] is False

    def test_refine_expired_deadline_returns_seed(self, objective):
        seed = greedy_diversify(objective, 6)
        refined = refine_with_local_search(objective, seed, deadline=0.0)
        assert refined.selected == seed.selected
        assert refined.metadata["interrupted"] is True

    def test_streaming_expired_deadline_drops_arrivals(self, objective):
        result = streaming_diversify(objective, 5, deadline=0.0)
        assert result.selected == frozenset()
        assert result.metadata["interrupted"] is True
        assert result.metadata["phase"] == "streaming_arrivals"

    def test_solve_forwards_deadline(self, instance):
        quality, metric = instance
        result = solve(quality, metric, tradeoff=0.8, p=10, deadline_s=0.0)
        assert result.metadata["interrupted"] is True

    def test_solve_many_shared_budget_marks_queued_queries(self, instance):
        quality, metric = instance
        queries = [range(0, 60), range(40, 120), range(80, 160)]
        results = solve_many(
            quality, metric, queries, tradeoff=0.8, p=5, deadline_s=0.0
        )
        assert len(results) == len(queries)
        for result in results:
            assert result.selected == frozenset()
            assert result.metadata["interrupted"] is True
            assert result.metadata["phase"] == "batch_queue"

    def test_sharded_deadline_returns_within_budget(self, instance):
        quality, metric = instance
        result = solve_sharded(
            quality, metric, tradeoff=0.8, p=6, shards=4, deadline=0.0
        )
        assert result.metadata["interrupted"] is True
        assert result.metadata["phase"] == "shard_map"

    def test_sharded_100k_returns_within_twice_deadline(self):
        from repro.data.synthetic import make_feature_instance

        instance = make_feature_instance(100_000, dimension=6, tradeoff=0.5, seed=9)
        budget = 0.25
        started = time.perf_counter()
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=0.5,
            p=50,
            shards=50,
            deadline_s=budget,
        )
        wall = time.perf_counter() - started
        # The cooperative checks only fire at iteration boundaries, so the
        # contract is "within 2× the budget", not "exactly the budget".
        assert wall <= 2 * budget
        assert result.metadata["interrupted"] is True
        assert result.metadata["phase"] == "shard_map"
        assert len(result.selected) <= 50

    def test_interrupted_solution_is_prefix_of_full_run(self, objective):
        # An interrupted greedy must be a prefix of the uninterrupted order
        # (best-so-far, not an arbitrary subset).  Interrupt via a deadline
        # that expires after a controlled number of checks.
        full = greedy_diversify(objective, 8)
        deadline = Deadline(0.0)
        partial = greedy_diversify(objective, 8, deadline=deadline)
        assert list(partial.order) == list(full.order)[: len(partial.order)]


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class TestCheckpointResume:
    def test_greedy_checkpoints_and_resume_reproduce_run(self, objective):
        checkpoints = []
        full = greedy_diversify(
            objective, 8, checkpoint_every=2, on_checkpoint=checkpoints.append
        )
        assert [len(c.order) for c in checkpoints] == [2, 4, 6, 8]
        middle = checkpoints[1]
        assert middle.kind == "greedy"
        resumed = greedy_diversify(objective, 8, resume_from=middle)
        assert resumed.selected == full.selected
        assert list(resumed.order) == list(full.order)
        assert resumed.metadata["resumed_at"] == 4

    def test_checkpoint_pickles_and_saves(self, objective, tmp_path):
        checkpoints = []
        greedy_diversify(objective, 4, on_checkpoint=checkpoints.append)
        path = str(tmp_path / "ckpt.pkl")
        checkpoints[-1].save(path)
        loaded = SolveCheckpoint.load(path)
        assert loaded == checkpoints[-1]

    def test_checkpoint_kind_and_universe_guard(self, objective):
        bad_kind = SolveCheckpoint(kind="sharded", n=objective.n, p=4)
        with pytest.raises(InvalidParameterError):
            greedy_diversify(objective, 4, resume_from=bad_kind)
        bad_n = SolveCheckpoint(kind="greedy", n=objective.n + 1, p=4)
        with pytest.raises(InvalidParameterError):
            greedy_diversify(objective, 4, resume_from=bad_n)

    def test_sharded_checkpoint_resume_skips_solved_shards(self, instance):
        quality, metric = instance
        checkpoints = []
        full = solve_sharded(
            quality,
            metric,
            tradeoff=0.8,
            p=6,
            shards=5,
            checkpoint_every=2,
            on_checkpoint=checkpoints.append,
        )
        middle = checkpoints[0]
        assert middle.kind == "sharded"
        resumed = solve_sharded(
            quality, metric, tradeoff=0.8, p=6, shards=5, resume_from=middle
        )
        assert resumed.selected == full.selected
        assert resumed.metadata["sharding"]["resumed_shards"] == sorted(
            middle.shard_winners
        )

    def test_sharded_resume_rejects_layout_mismatch(self, instance):
        quality, metric = instance
        checkpoints = []
        solve_sharded(
            quality,
            metric,
            tradeoff=0.8,
            p=6,
            shards=5,
            on_checkpoint=checkpoints.append,
        )
        with pytest.raises(InvalidParameterError):
            solve_sharded(
                quality,
                metric,
                tradeoff=0.8,
                p=6,
                shards=4,
                resume_from=checkpoints[0],
            )

    def test_solve_rejects_checkpointing_for_non_greedy(self, instance):
        quality, metric = instance
        with pytest.raises(InvalidParameterError):
            solve(
                quality,
                metric,
                tradeoff=0.8,
                p=4,
                algorithm="mmr",
                checkpoint_every=1,
                on_checkpoint=lambda c: None,
            )


# ----------------------------------------------------------------------
# Shard-worker recovery
# ----------------------------------------------------------------------
class TestShardRecovery:
    def test_killed_worker_degrades_to_serial(self, instance):
        quality, metric = instance
        faulty = WorkerKillingMetric(metric)
        result = solve_sharded(
            quality,
            faulty,
            tradeoff=0.8,
            p=5,
            shards=4,
            max_workers=2,
            executor="process",
        )
        assert len(result.selected) == 5
        assert result.metadata["degraded"] is True
        stages = {f["stage"] for f in result.metadata["sharding"]["failures"]}
        assert "worker_crash" in stages or "worker" in stages
        assert result.metadata["sharding"]["failed_shards"] == []

    def test_killed_worker_records_crash_span(self, instance):
        """A SIGKILLed worker's spans die with it — the trace must not lose
        the shard silently: the parent records a synthetic ``shard`` span
        whose status names the failure stage (``worker_crash``)."""
        quality, metric = instance
        faulty = WorkerKillingMetric(metric)
        trace = Trace()
        result = solve_sharded(
            quality,
            faulty,
            tradeoff=0.8,
            p=5,
            shards=4,
            max_workers=2,
            executor="process",
            trace=trace,
        )
        assert result.metadata["degraded"] is True
        root = next(s for s in trace.spans() if s.name == "solve_sharded")
        shard_spans = [s for s in trace.spans() if s.name == "shard"]
        # Every failure in the metadata has a matching synthetic span,
        # parented to the solve root and carrying the stage as its status.
        failures = result.metadata["sharding"]["failures"]
        crash_spans = [s for s in shard_spans if s.status != "ok"]
        assert len(crash_spans) >= len(failures) > 0
        statuses = {s.status for s in crash_spans}
        assert statuses & {"worker_crash", "worker"}
        for span in crash_spans:
            assert span.parent_id == root.span_id
            assert "error" in span.attrs and "shard" in span.attrs
        # The serial fallback re-solved every shard in-process, so the trace
        # also holds the successful shard spans shipped back via bundles.
        ok_spans = [s for s in shard_spans if s.status == "ok"]
        assert len(ok_spans) == 4

    def test_shard_timeout_degrades_to_serial(self, instance):
        quality, metric = instance
        faulty = SlowMetric(metric, 5.0)
        result = solve_sharded(
            quality,
            faulty,
            tradeoff=0.8,
            p=5,
            shards=4,
            max_workers=2,
            executor="process",
            shard_timeout_s=0.3,
        )
        assert len(result.selected) == 5
        assert result.metadata["degraded"] is True
        stages = {f["stage"] for f in result.metadata["sharding"]["failures"]}
        assert "worker_timeout" in stages
        assert result.metadata["sharding"]["failed_shards"] == []

    def test_crashing_shard_recovered_by_retry(self, instance):
        quality, metric = instance
        faulty = CrashingMetric(metric, fail_times=1)
        result = solve_sharded(
            quality, faulty, tradeoff=0.8, p=5, shards=4, shard_retries=2
        )
        assert len(result.selected) == 5
        # The single injected crash was absorbed by a retry: nothing lost.
        assert "degraded" not in result.metadata

    def test_all_shards_lost_returns_empty_degraded(self, instance):
        quality, metric = instance
        faulty = CrashingMetric(metric)
        result = solve_sharded(
            quality, faulty, tradeoff=0.8, p=5, shards=4, retry_backoff_s=0.0
        )
        assert result.selected == frozenset()
        assert result.metadata["degraded"] is True
        assert result.metadata["sharding"]["failed_shards"] == [0, 1, 2, 3]
        assert result.metadata["sharding"]["core_size"] == 0

    def test_partial_loss_still_solves_from_surviving_core(self, instance):
        quality, metric = instance
        # Only worker processes crash; the serial fallback (parent process)
        # succeeds, so a thread-free run with the same wrapper is clean.
        faulty = CrashingSetFunction(quality, only_in_workers=True)
        result = solve_sharded(
            faulty, metric, tradeoff=0.8, p=5, shards=4, shard_retries=0
        )
        assert len(result.selected) == 5
        assert "degraded" not in result.metadata


# ----------------------------------------------------------------------
# Numerical degradation
# ----------------------------------------------------------------------
class TestNumericalDegradation:
    def test_jitter_escalation_recovers_near_singular_pivot(self):
        kernel = np.diag(np.full(6, -1.0 - 1e-9))
        func = LogDeterminantFunction(kernel, jitter=0.0, validate=False)
        state = func.gain_state()
        with pytest.warns(NumericalDegradationWarning):
            func.push(state, 0)
        assert not state.degraded
        assert state.rebuilds >= 1
        assert state.jitter > 0.0

    def test_unrecoverable_pivot_degrades_to_oracle_gains(self):
        kernel = np.diag(np.full(6, -2.0))
        func = LogDeterminantFunction(kernel, jitter=0.0, validate=False)
        state = func.gain_state()
        with pytest.warns(NumericalDegradationWarning):
            func.push(state, 0)
        assert state.degraded
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NumericalDegradationWarning)
            gains = func.gains(np.arange(6), state)
        assert np.all(np.isfinite(gains))
        assert gains[0] == 0.0  # member masked

    def test_degraded_state_surfaces_in_greedy_metadata(self):
        kernel = np.diag(np.full(10, -2.0))
        func = LogDeterminantFunction(kernel, jitter=0.0, validate=False)
        rng = np.random.default_rng(0)
        metric = EuclideanMetric(rng.normal(size=(10, 3)))
        objective = Objective(func, metric, 1.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NumericalDegradationWarning)
            result = greedy_diversify(objective, 4)
        assert len(result.selected) == 4
        assert result.metadata["degraded"] is True
        assert result.metadata["degradation"] == "quality_gain_state"

    def test_swap_scan_sanitizes_nan_gains(self):
        gains = np.array([[np.nan, 0.5], [0.2, np.nan]])
        incoming = np.array([5, 6])
        outgoing = np.array([1, 2])
        with pytest.warns(NumericalDegradationWarning):
            move = best_swap_scan_from_gains(gains, incoming, outgoing)
        assert move == (5, 2, 0.5)

    def test_swap_scan_all_nan_returns_none(self):
        gains = np.full((2, 2), np.nan)
        with pytest.warns(NumericalDegradationWarning):
            move = best_swap_scan_from_gains(
                gains, np.array([5, 6]), np.array([1, 2])
            )
        assert move is None

    def test_nan_metric_local_search_terminates(self, instance):
        quality, metric = instance
        poisoned = NaNMetric(metric, fail_times=3)
        objective = Objective(quality, poisoned, 0.8)
        config = LocalSearchConfig(max_swaps=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NumericalDegradationWarning)
            result = local_search_diversify(
                objective, UniformMatroid(objective.n, 4), config=config
            )
        assert len(result.selected) == 4

    def test_nan_set_function_gains_are_injected(self, instance):
        quality, _ = instance
        poisoned = NaNSetFunction(quality, fail_times=1)
        state = poisoned.gain_state()
        first = poisoned.gains(np.arange(4), state)
        assert np.all(np.isnan(first))
        second = poisoned.gains(np.arange(4), state)
        assert np.all(np.isfinite(second))


# ----------------------------------------------------------------------
# Non-finite construction gates
# ----------------------------------------------------------------------
class TestNonFiniteGates:
    def test_modular_weights_reject_nan_and_inf(self):
        with pytest.raises(NonFiniteDataError):
            ModularFunction([1.0, float("nan"), 2.0])
        with pytest.raises(NonFiniteDataError):
            ModularFunction([1.0, float("inf"), 2.0])

    def test_euclidean_points_reject_nan(self):
        points = np.ones((4, 2))
        points[2, 1] = np.nan
        with pytest.raises(NonFiniteDataError):
            EuclideanMetric(points)

    def test_objective_guards_weight_views(self, instance):
        _, metric = instance

        class SneakyWeights(ModularFunction):
            def __init__(self, n):
                super().__init__(np.ones(n))
                self._weights[3] = np.nan  # mutate after validation

        with pytest.raises(NonFiniteDataError):
            Objective(SneakyWeights(metric.n), metric, 1.0)


# ----------------------------------------------------------------------
# Dynamic engine snapshot / restore
# ----------------------------------------------------------------------
class TestEngineSnapshot:
    def test_snapshot_roundtrip_and_divergence_free_restore(self):
        rng = np.random.default_rng(11)
        points = rng.normal(size=(15, 3))
        distances = np.sqrt(((points[:, None] - points[None]) ** 2).sum(-1))
        weights = rng.uniform(1.0, 2.0, size=15)
        engine = DynamicDiversifier(weights, distances, 4, tradeoff=0.6)
        engine.apply(WeightIncrease(2, 1.0))
        snapshot = engine.snapshot()
        restored = DynamicDiversifier.restore(
            pickle.loads(pickle.dumps(snapshot))
        )
        assert restored.solution == engine.solution
        for target in (engine, restored):
            target.apply(WeightIncrease(5, 2.0))
        assert restored.solution == engine.solution
        assert restored.solution_value == pytest.approx(engine.solution_value)

    def test_snapshot_is_isolated_from_later_perturbations(self):
        rng = np.random.default_rng(12)
        points = rng.normal(size=(10, 2))
        distances = np.sqrt(((points[:, None] - points[None]) ** 2).sum(-1))
        engine = DynamicDiversifier(np.ones(10), distances, 3)
        snapshot = engine.snapshot()
        engine.apply(WeightIncrease(0, 5.0))
        assert snapshot.weights[0] == 1.0
        assert snapshot.applied_perturbations == 0

    def test_restore_rejects_foreign_objects(self):
        with pytest.raises(InvalidParameterError):
            DynamicDiversifier.restore("not a snapshot")

    def test_snapshot_dataclass_is_plain_data(self):
        snapshot = EngineSnapshot(
            weights=np.ones(3),
            distances=np.zeros((3, 3)),
            p=2,
            tradeoff=1.0,
            solution=(0, 1),
        )
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.solution == (0, 1)


# ----------------------------------------------------------------------
# Dynamic session under shard faults
# ----------------------------------------------------------------------
class TestDynamicSessionFaults:
    """The streaming analogue of the solve_sharded containment contract:
    faults during a tick (or during the periodic full re-solve's worker
    pool) degrade the session, never raise out of it, and heal on the next
    clean tick."""

    def _stream_instance(self, n=80, d=4, seed=21):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(n, d)), rng.uniform(1.0, 2.0, size=n)

    def test_killed_worker_mid_tick_recovers(self):
        # resolve_every=1 makes every tick end in a full sharded re-solve on
        # a process pool; WorkerKillingMetric SIGKILLs the workers, so the
        # pool breaks mid-tick and solve_sharded must fall back to a serial
        # pass in the (unharmed) parent.
        from repro.dynamic.events import EventBatchBuilder
        from repro.dynamic.session import DynamicSession

        points, weights = self._stream_instance()
        session = DynamicSession(
            weights,
            5,
            points=points,
            shard_size=16,
            metric_factory=lambda pts: WorkerKillingMetric(
                EuclideanMetric(pts), only_in_workers=True
            ),
            resolve_every=1,
            resolve_kwargs={"executor": "process", "max_workers": 2},
        )
        assert len(session.solution) == 5
        batch = EventBatchBuilder().change_weight(3, 0.5).build()
        outcome = session.apply_events(batch)  # must not raise
        assert len(session.solution) == 5
        assert outcome.metadata["num_events"] == 1
        # The stream keeps flowing after the mid-tick pool loss.
        session.apply_events(EventBatchBuilder().change_weight(40, 0.5).build())
        assert len(session.solution) == 5

    def test_crashing_shard_degrades_and_heals(self):
        from repro.dynamic.events import EventBatchBuilder
        from repro.dynamic.session import ShardedDynamicEngine

        points, weights = self._stream_instance(seed=22)
        engine = ShardedDynamicEngine(
            points,
            weights,
            5,
            shard_size=16,
            metric_factory=lambda pts: CrashingMetric(
                EuclideanMetric(pts), only_in_workers=False, fail_times=1
            ),
        )
        assert engine.degraded  # the single fault hit the initial solve
        assert len(engine.solution) == 5
        builder = EventBatchBuilder()
        for shard in range(engine.num_shards):
            builder.change_weight(shard * engine.shard_size, 0.01)
        engine.apply_events(builder.build())
        assert not engine.degraded
        assert len(engine.solution) == 5


# ----------------------------------------------------------------------
# Serving-tier fault modes
# ----------------------------------------------------------------------
class TestServeFaults:
    """The serving failure contract: every fault stays per-request."""

    def test_disconnect_mid_window_cancels_only_that_request(self, instance):
        from repro.serve import PreparedCorpus, Server

        quality, metric = instance

        class BlockingCorpus(PreparedCorpus):
            """Corpus whose window executor waits for the test's go signal."""

            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.entered = threading.Event()
                self.release = threading.Event()

            def solve_window(self, requests, **kwargs):
                self.entered.set()
                assert self.release.wait(timeout=30.0)
                return super().solve_window(requests, **kwargs)

        corpus = BlockingCorpus(quality, metric, tradeoff=0.8)
        pools = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]

        async def scenario():
            loop = asyncio.get_running_loop()
            async with Server(corpus, max_batch_size=3, max_wait_s=0.5) as server:
                tasks = [
                    asyncio.ensure_future(server.submit(pool, p=2))
                    for pool in pools
                ]
                # Wait until the whole window is executing off-loop, then
                # disconnect the middle client mid-window.
                await loop.run_in_executor(None, corpus.entered.wait)
                tasks[1].cancel()
                corpus.release.set()
                results = await asyncio.gather(*tasks, return_exceptions=True)
                stats = server.stats.snapshot()
            return results, stats

        results, stats = asyncio.run(scenario())
        assert isinstance(results[1], asyncio.CancelledError)
        # The disconnected request's skip hook fired; its neighbours solved.
        for survivor in (results[0], results[2]):
            assert len(survivor.selected) == 2
        assert stats["completed"] == 2
        assert stats["cancelled"] == 1
        assert stats["failed"] == 0

    def test_deadline_expiry_returns_best_so_far_per_request(self, instance):
        from repro.serve import PreparedCorpus, Server

        quality, metric = instance
        # Slow oracle + lazy tier: every greedy iteration pays oracle calls,
        # so a short per-request budget interrupts mid-run.
        slow = SlowMetric(metric, 0.1, only_in_workers=False, fail_times=None)
        corpus = PreparedCorpus(quality, slow, tradeoff=0.8, materialize=False)

        async def scenario():
            async with Server(corpus, max_batch_size=2, max_wait_s=0.2) as server:
                return await asyncio.gather(
                    server.submit(None, p=6, deadline_s=0.02),
                    server.submit(list(range(12)), p=3),
                )

        expired, unhurried = asyncio.run(scenario())
        # The deadlined request interrupted but stayed feasible (best-so-far
        # is a valid partial selection, possibly empty); its co-batched
        # neighbour ran to completion untouched.
        assert expired.metadata["interrupted"] is True
        assert len(expired.selected) <= 6
        assert "interrupted" not in unhurried.metadata
        assert len(unhurried.selected) == 3

    def test_crashed_shard_worker_degrades_without_failing_window(self, instance):
        from repro.serve import PreparedCorpus, Server

        quality, metric = instance
        faulty = WorkerKillingMetric(metric)  # kills only pool workers
        corpus = PreparedCorpus(
            quality,
            faulty,
            tradeoff=0.8,
            shards=4,
            shard_workers=2,
            shard_executor="process",
        )
        assert corpus.sharded and not corpus.materialized

        async def scenario():
            async with Server(corpus, max_batch_size=2, max_wait_s=0.5) as server:
                sharded, pooled = await asyncio.gather(
                    server.submit(None, p=5),
                    server.submit(list(range(20)), p=4),
                )
                stats = server.stats.snapshot()
            return sharded, pooled, stats

        sharded, pooled, stats = asyncio.run(scenario())
        # The killed worker degraded the sharded request to the serial
        # fallback — a full answer with degradation metadata, not an error.
        assert len(sharded.selected) == 5
        assert sharded.metadata["degraded"] is True
        stages = {f["stage"] for f in sharded.metadata["sharding"]["failures"]}
        assert "worker_crash" in stages or "worker" in stages
        # The co-batched pool request (parent process, kill never fires
        # there) was untouched by its neighbour's crashing workers.
        assert len(pooled.selected) == 4
        assert "degraded" not in pooled.metadata
        assert stats["completed"] == 2
        assert stats["failed"] == 0
