"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix


@pytest.fixture
def small_matrix() -> DistanceMatrix:
    """A tiny hand-checked metric on 4 points."""
    return DistanceMatrix(
        np.array(
            [
                [0.0, 1.0, 2.0, 1.5],
                [1.0, 0.0, 1.2, 1.8],
                [2.0, 1.2, 0.0, 1.0],
                [1.5, 1.8, 1.0, 0.0],
            ]
        )
    )


@pytest.fixture
def small_objective(small_matrix) -> Objective:
    """A 4-element modular objective with λ = 0.5."""
    quality = ModularFunction([0.9, 0.1, 0.5, 0.4])
    return Objective(quality, small_matrix, tradeoff=0.5)


@pytest.fixture
def synthetic_20():
    """A 20-element synthetic instance (paper-style weights/distances)."""
    return make_synthetic_instance(20, seed=123)


@pytest.fixture
def synthetic_objective_20(synthetic_20) -> Objective:
    return synthetic_20.objective
