"""Tests for the multi-swap (k-swap) dynamic update rule."""

from __future__ import annotations

import pytest

from repro.core.objective import Objective
from repro.data.synthetic import make_synthetic_instance
from repro.dynamic.update_rules import (
    best_k_swap,
    k_swap_update,
    oblivious_update,
    update_until_stable,
)
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix

import numpy as np


def _objective(seed=0, n=9):
    instance = make_synthetic_instance(n, seed=seed)
    return instance.objective


class TestBestKSwap:
    def test_k1_matches_single_swap_rule(self):
        objective = _objective()
        solution = {0, 1, 2}
        move = best_k_swap(objective, solution, 1)
        if move is None:
            from repro.dynamic.update_rules import best_swap

            assert best_swap(objective, solution) is None
        else:
            incoming, outgoing, gain = move
            assert len(incoming) == len(outgoing) == 1
            assert gain == pytest.approx(
                objective.value((solution - set(outgoing)) | set(incoming))
                - objective.value(solution)
            )

    def test_gain_is_positive_when_move_returned(self):
        objective = _objective(seed=3)
        move = best_k_swap(objective, {0, 1, 2, 3}, 2)
        if move is not None:
            assert move[2] > 0

    def test_none_when_not_enough_elements(self):
        objective = _objective(n=4)
        assert best_k_swap(objective, {0, 1, 2}, 2) is None  # only 1 outside
        assert best_k_swap(objective, {0}, 2) is None  # only 1 inside

    def test_invalid_k(self):
        objective = _objective()
        with pytest.raises(InvalidParameterError):
            best_k_swap(objective, {0, 1}, 0)
        with pytest.raises(InvalidParameterError):
            k_swap_update(objective, {0, 1}, k=0)


class TestKSwapUpdate:
    def test_never_worse_than_single_swap(self):
        for seed in range(4):
            objective = _objective(seed=seed)
            solution = {0, 1, 2, 3}
            single = oblivious_update(objective, solution)
            double = k_swap_update(objective, solution, k=2)
            assert double.objective_value >= single.objective_value - 1e-9

    def test_two_swap_escapes_single_swap_local_optimum(self):
        """A hand-built instance where no single swap improves but a 2-swap does.

        Weights are zero (pure dispersion) and p = 2.  The pair {0, 1} has
        distance 10; the pair {2, 3} has distance 11; every cross pair has
        distance 6.  {0, 1} is single-swap locally optimal (any single swap
        gives a cross pair of value 6) but the 2-swap to {2, 3} improves.
        """
        distances = np.array(
            [
                [0.0, 10.0, 6.0, 6.0],
                [10.0, 0.0, 6.0, 6.0],
                [6.0, 6.0, 0.0, 11.0],
                [6.0, 6.0, 11.0, 0.0],
            ]
        )
        objective = Objective(
            ModularFunction([0.0] * 4), DistanceMatrix(distances), tradeoff=1.0
        )
        solution = {0, 1}
        assert oblivious_update(objective, solution).solution == frozenset({0, 1})
        outcome = k_swap_update(objective, solution, k=2)
        assert outcome.solution == frozenset({2, 3})
        assert outcome.objective_value == pytest.approx(11.0)
        # The move is recorded once, with its true total gain (11 − 10 = 1) —
        # not fabricated per-pair halves.
        assert len(outcome.swaps) == 1
        incoming, outgoing, gain = outcome.swaps[0]
        assert set(incoming) == {2, 3}
        assert set(outgoing) == {0, 1}
        assert gain == pytest.approx(1.0)
        # The pairwise decomposition survives only as labelled metadata and
        # carries no gains.
        alignment = outcome.metadata["pairwise_alignment"]
        assert {inc for inc, _ in alignment} == {2, 3}
        assert {out for _, out in alignment} == {0, 1}
        assert "no per-pair gains" in outcome.metadata["pairwise_alignment_note"]

    def test_recorded_gain_is_true_objective_change(self):
        for seed in range(5):
            objective = _objective(seed=seed)
            solution = {0, 1, 2, 3}
            before = objective.value(solution)
            outcome = k_swap_update(objective, solution, k=2)
            total = sum(gain for _, _, gain in outcome.swaps)
            assert outcome.objective_value - before == pytest.approx(total)

    def test_single_swap_keeps_scalar_shape(self):
        """A size-1 move (even via k=2) is recorded as a plain element pair."""
        objective = _objective(seed=2)
        outcome = k_swap_update(objective, {0, 1, 2}, k=1)
        for incoming, outgoing, gain in outcome.swaps:
            assert isinstance(incoming, int)
            assert isinstance(outgoing, int)
            assert gain == pytest.approx(
                objective.value({0, 1, 2} - {outgoing} | {incoming})
                - objective.value({0, 1, 2})
            )

    def test_update_keeps_cardinality(self):
        objective = _objective(seed=5)
        outcome = k_swap_update(objective, {0, 1, 2, 3}, k=2)
        assert len(outcome.solution) == 4

    def test_stable_solution_unchanged(self):
        objective = _objective(seed=6)
        stable = update_until_stable(objective, {0, 1, 2}).solution
        # The 1-swap-stable solution may still admit a 2-swap improvement, but
        # applying k_swap_update with k=1 must leave it unchanged.
        outcome = k_swap_update(objective, set(stable), k=1)
        assert outcome.solution == stable
