"""Tests for the data generators (synthetic, LETOR-like, portfolio, geo)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.geo import make_geo_instance
from repro.data.letor import MAX_RELEVANCE, SyntheticLetorCorpus
from repro.data.portfolio import make_portfolio_instance
from repro.data.synthetic import (
    PAPER_SYNTHETIC_TRADEOFF,
    make_feature_instance,
    make_synthetic_instance,
)
from repro.exceptions import InvalidParameterError
from repro.metrics.validation import is_metric


class TestSyntheticInstance:
    def test_paper_ranges(self):
        instance = make_synthetic_instance(30, seed=0)
        assert instance.n == 30
        assert instance.tradeoff == PAPER_SYNTHETIC_TRADEOFF
        assert np.all(instance.weights >= 0.0) and np.all(instance.weights <= 1.0)
        distances = instance.distances
        off_diagonal = distances[~np.eye(30, dtype=bool)]
        assert off_diagonal.min() >= 1.0 and off_diagonal.max() <= 2.0

    def test_metric_valid(self):
        assert is_metric(make_synthetic_instance(15, seed=1).metric)

    def test_reproducible(self):
        a = make_synthetic_instance(10, seed=5)
        b = make_synthetic_instance(10, seed=5)
        assert np.allclose(a.weights, b.weights)
        assert np.allclose(a.distances, b.distances)

    def test_objective_assembly(self):
        instance = make_synthetic_instance(10, seed=2)
        objective = instance.objective
        assert objective.n == 10
        assert objective.tradeoff == instance.tradeoff

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            make_synthetic_instance(-1)
        with pytest.raises(InvalidParameterError):
            make_synthetic_instance(5, weight_low=2.0, weight_high=1.0)
        with pytest.raises(InvalidParameterError):
            make_synthetic_instance(5, distance_low=1.0, distance_high=3.0)


class TestLetorCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return SyntheticLetorCorpus(num_queries=3, docs_per_query=60, seed=7)

    def test_shape(self, corpus):
        assert corpus.num_queries == 3
        assert corpus.query_ids == (0, 1, 2)
        for query in corpus.queries():
            assert query.n == 60

    def test_relevance_grades_in_range(self, corpus):
        for query in corpus.queries():
            relevances = query.relevances
            assert relevances.min() >= 0
            assert relevances.max() <= MAX_RELEVANCE
            assert np.allclose(relevances, np.round(relevances))

    def test_relevance_has_spread(self, corpus):
        # The pool must not be a single grade, otherwise diversification is moot.
        grades = corpus.query(0).relevances
        assert len(np.unique(grades)) >= 3

    def test_metric_is_valid_cosine_distance(self, corpus):
        metric = corpus.query(0).metric()
        matrix = metric.to_matrix()
        assert matrix.min() >= 0.0
        assert matrix.max() <= 2.0 + 1e-9
        assert np.allclose(np.diag(matrix), 0.0)

    def test_top_documents_sorted_by_relevance(self, corpus):
        query = corpus.query(1)
        top = query.top_documents(10)
        assert top.n == 10
        top_grades = top.relevances
        remaining_max = sorted(query.relevances, reverse=True)[:10]
        assert sorted(top_grades, reverse=True) == pytest.approx(remaining_max)

    def test_top_documents_reindexed(self, corpus):
        top = corpus.query(0).top_documents(5)
        assert [doc.doc_id for doc in top.documents] == list(range(5))

    def test_objective_assembly(self, corpus):
        objective = corpus.query(2).top_documents(20).objective(0.3)
        assert objective.n == 20
        assert (
            objective.quality.value({0})
            == corpus.query(2).top_documents(20).relevances[0]
        )

    def test_reproducible(self):
        a = SyntheticLetorCorpus(num_queries=1, docs_per_query=20, seed=3)
        b = SyntheticLetorCorpus(num_queries=1, docs_per_query=20, seed=3)
        assert np.allclose(a.query(0).features, b.query(0).features)
        assert np.allclose(a.query(0).relevances, b.query(0).relevances)

    def test_unknown_query_rejected(self, corpus):
        with pytest.raises(InvalidParameterError):
            corpus.query(99)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            SyntheticLetorCorpus(num_queries=0)
        with pytest.raises(InvalidParameterError):
            SyntheticLetorCorpus(num_queries=1, docs_per_query=10, num_aspects=0)
        with pytest.raises(InvalidParameterError):
            SyntheticLetorCorpus(num_queries=1, docs_per_query=10, relevance_skew=0.0)


class TestPortfolioInstance:
    def test_shape_and_matroid(self):
        instance = make_portfolio_instance(18, sector_capacity=2, seed=0)
        assert instance.n == 18
        matroid = instance.matroid
        assert matroid.n == 18
        # at most 2 per sector
        assert matroid.rank() == min(18, 2 * len(set(instance.sectors)))

    def test_quality_is_submodular(self):
        from repro.functions.verification import is_monotone, is_submodular

        instance = make_portfolio_instance(8, seed=1)
        assert is_monotone(instance.quality)
        assert is_submodular(instance.quality)

    def test_objective_assembly(self):
        instance = make_portfolio_instance(10, seed=2)
        assert instance.objective.n == 10

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_portfolio_instance(0)
        with pytest.raises(InvalidParameterError):
            make_portfolio_instance(5, sector_capacity=0)
        with pytest.raises(InvalidParameterError):
            make_portfolio_instance(5, sectors=[])


class TestGeoInstance:
    def test_shape(self):
        instance = make_geo_instance(25, num_districts=3, seed=0)
        assert instance.n == 25
        assert instance.points.shape == (25, 2)
        assert len(instance.district) == 25
        assert set(instance.district) <= set(range(3))

    def test_metric_and_matroid(self):
        instance = make_geo_instance(12, num_districts=2, seed=1)
        assert is_metric(instance.metric)
        matroid = instance.district_matroid(per_district=2)
        assert matroid.is_independent(set())

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_geo_instance(0)
        with pytest.raises(InvalidParameterError):
            make_geo_instance(5, num_districts=0)


class TestFeatureInstance:
    def test_shape_and_objective(self):
        instance = make_feature_instance(40, dimension=5, tradeoff=0.3, seed=2)
        assert instance.n == 40
        assert instance.metric.points.shape == (40, 5)
        assert instance.weights.shape == (40,)
        assert np.all(instance.weights >= 0)
        objective = instance.objective
        assert objective.n == 40
        assert objective.tradeoff == 0.3
        # Feature instances are the lazy tier: no materialized matrix view.
        assert instance.metric.matrix_view() is None

    def test_reproducible(self):
        first = make_feature_instance(15, seed=7)
        second = make_feature_instance(15, seed=7)
        assert np.array_equal(first.weights, second.weights)
        assert np.array_equal(first.metric.points, second.metric.points)

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            make_feature_instance(-1)
        with pytest.raises(InvalidParameterError):
            make_feature_instance(5, dimension=0)
        with pytest.raises(InvalidParameterError):
            make_feature_instance(5, weight_low=2.0, weight_high=1.0)
