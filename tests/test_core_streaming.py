"""Tests for the streaming (incremental) diversifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.streaming import StreamingDiversifier, streaming_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError


class TestStreamingDiversifier:
    def test_fills_up_then_swaps(self, synthetic_objective_20):
        engine = StreamingDiversifier(synthetic_objective_20, p=4)
        for element in range(8):
            engine.process(element)
        assert len(engine.solution) == 4
        assert engine.arrivals == 8
        assert engine.solution_value == pytest.approx(
            synthetic_objective_20.value(engine.solution)
        )

    def test_duplicate_arrivals_ignored(self, synthetic_objective_20):
        engine = StreamingDiversifier(synthetic_objective_20, p=3)
        engine.process(0)
        changed = engine.process(0)
        assert not changed
        assert engine.arrivals == 2
        assert engine.solution == frozenset({0})

    def test_swap_only_when_it_improves(self, small_objective):
        engine = StreamingDiversifier(small_objective, p=2)
        engine.process_stream([0, 2])  # the two best elements
        value_before = engine.solution_value
        engine.process(1)  # low weight, should not displace anything better
        assert engine.solution_value >= value_before - 1e-9

    def test_value_never_decreases(self, synthetic_objective_20):
        engine = StreamingDiversifier(synthetic_objective_20, p=5)
        previous = 0.0
        rng = np.random.default_rng(0)
        for element in rng.permutation(20):
            engine.process(int(element))
            assert engine.solution_value >= previous - 1e-9
            previous = engine.solution_value

    def test_margin_reduces_swaps(self, synthetic_objective_20):
        order = list(np.random.default_rng(1).permutation(20))
        eager = StreamingDiversifier(synthetic_objective_20, p=5).process_stream(
            [int(x) for x in order]
        )
        lazy = StreamingDiversifier(
            synthetic_objective_20, p=5, improvement_margin=0.05
        ).process_stream([int(x) for x in order])
        assert lazy.swaps <= eager.swaps

    def test_validation(self, synthetic_objective_20):
        with pytest.raises(InvalidParameterError):
            StreamingDiversifier(synthetic_objective_20, p=0)
        with pytest.raises(InvalidParameterError):
            StreamingDiversifier(synthetic_objective_20, p=3, improvement_margin=-0.1)
        engine = StreamingDiversifier(synthetic_objective_20, p=3)
        with pytest.raises(InvalidParameterError):
            engine.process(99)

    def test_result_packaging(self, synthetic_objective_20):
        engine = StreamingDiversifier(synthetic_objective_20, p=4)
        engine.process_stream(range(10))
        result = engine.result()
        assert result.algorithm == "streaming"
        assert result.size == 4
        assert result.metadata["swaps"] == engine.swaps


class TestStreamingDiversify:
    def test_one_shot_wrapper(self, synthetic_objective_20):
        result = streaming_diversify(synthetic_objective_20, 5)
        assert result.size == 5
        assert result.iterations == 20

    def test_arrival_order_matters_but_quality_is_close_to_offline(self):
        # Streaming with swaps should land in the same ballpark as the offline
        # greedy (and well within factor 2 of the optimum) regardless of order.
        instance = make_synthetic_instance(12, seed=13)
        objective = instance.objective
        optimum = exact_diversify(objective, 4).objective_value
        offline = greedy_diversify(objective, 4).objective_value
        for seed in range(3):
            order = [int(x) for x in np.random.default_rng(seed).permutation(12)]
            online = streaming_diversify(objective, 4, order).objective_value
            assert online >= optimum / 2 - 1e-9
            assert online >= 0.8 * offline


class TestStreamingProtocolPath:
    """The batched-gains arrival path must match the brute-force swap rule."""

    @staticmethod
    def _reference_stream(objective, p, order, margin=0.0):
        """Old per-arrival semantics: objective.marginal / swap_gain oracles."""
        selected, value, swaps = [], 0.0, 0
        for element in order:
            if element in selected:
                continue
            members = frozenset(selected)
            if len(selected) < p:
                value += objective.marginal(element, members)
                selected.append(element)
                continue
            best_gain = margin * abs(value)
            best_outgoing = None
            for outgoing in selected:
                gain = objective.swap_gain(members, element, outgoing)
                if gain > best_gain:
                    best_gain, best_outgoing = gain, outgoing
            if best_outgoing is not None:
                selected.remove(best_outgoing)
                selected.append(element)
                value += best_gain
                swaps += 1
        return selected, value, swaps

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("margin", [0.0, 0.02])
    def test_submodular_arrivals_match_reference(self, seed, margin):
        from repro.core.objective import Objective
        from repro.functions.facility_location import FacilityLocationFunction
        from repro.metrics.discrete import UniformRandomMetric

        rng = np.random.default_rng(seed)
        n, p = 60, 6
        similarity = rng.uniform(0.0, 1.0, size=(n, n))
        quality = FacilityLocationFunction((similarity + similarity.T) / 2.0)
        objective = Objective(quality, UniformRandomMetric(n, seed=seed), 0.6)
        order = [int(x) for x in rng.permutation(n)]
        expected_sel, expected_val, expected_swaps = self._reference_stream(
            objective, p, order, margin
        )
        result = streaming_diversify(objective, p, order, improvement_margin=margin)
        assert sorted(result.selected) == sorted(expected_sel)
        assert result.metadata["swaps"] == expected_swaps
        assert result.objective_value == pytest.approx(
            objective.value(frozenset(expected_sel)), abs=1e-9
        )

    def test_oracle_metric_submodular_arrivals(self):
        from repro.core.objective import Objective
        from repro.functions.facility_location import FacilityLocationFunction
        from repro.metrics.base import Metric
        from repro.metrics.discrete import UniformRandomMetric

        class OracleOnly(Metric):
            def __init__(self, inner):
                self._inner = inner

            @property
            def n(self):
                return self._inner.n

            def distance(self, u, v):
                return self._inner.distance(u, v)

        rng = np.random.default_rng(9)
        n, p = 40, 5
        similarity = rng.uniform(0.0, 1.0, size=(n, n))
        quality = FacilityLocationFunction((similarity + similarity.T) / 2.0)
        inner = UniformRandomMetric(n, seed=9)
        order = [int(x) for x in rng.permutation(n)]
        with_matrix = streaming_diversify(
            Objective(quality, inner, 0.6), p, order
        )
        oracle_only = streaming_diversify(
            Objective(quality, OracleOnly(inner), 0.6), p, order
        )
        assert with_matrix.selected == oracle_only.selected
        assert with_matrix.objective_value == pytest.approx(
            oracle_only.objective_value, abs=1e-9
        )
