"""Property-based tests of the paper's approximation guarantees.

These generate random instances and check the theorems' inequalities hold for
the implemented algorithms against the exact optimum:

* Theorem 1 — Greedy B is a 2-approximation under a cardinality constraint.
* Corollary 1 — the dispersion special case.
* Theorem 2 — local search is a 2-approximation under a matroid constraint.
* Corollary 4 — one oblivious update after a perturbation keeps ratio ≤ 3.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import exact_diversify
from repro.core.greedy import greedy_diversify
from repro.core.local_search import local_search_diversify
from repro.core.objective import Objective
from repro.dynamic.engine import DynamicDiversifier
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    WeightIncrease,
)
from repro.functions.coverage import CoverageFunction
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.matroids.uniform import UniformMatroid
from repro.metrics.discrete import UniformRandomMetric

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=4, max_value=9)
tradeoffs = st.sampled_from([0.0, 0.1, 0.2, 0.5, 1.0, 2.0])


def _random_modular_objective(n: int, seed: int, tradeoff: float) -> Objective:
    rng = np.random.default_rng(seed)
    weights = ModularFunction(rng.uniform(0, 1, size=n))
    metric = UniformRandomMetric(n, seed=seed + 1)
    return Objective(weights, metric, tradeoff)


def _random_submodular_objective(n: int, seed: int, tradeoff: float) -> Objective:
    coverage = CoverageFunction.random(n, num_topics=max(3, n // 2), seed=seed)
    metric = UniformRandomMetric(n, seed=seed + 1)
    return Objective(coverage, metric, tradeoff)


class TestTheorem1:
    @given(n=sizes, seed=seeds, tradeoff=tradeoffs)
    @settings(max_examples=30, deadline=None)
    def test_greedy_modular_two_approx(self, n, seed, tradeoff):
        objective = _random_modular_objective(n, seed, tradeoff)
        p = max(2, n // 2)
        greedy = greedy_diversify(objective, p)
        optimum = exact_diversify(objective, p, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    @given(n=sizes, seed=seeds, tradeoff=tradeoffs)
    @settings(max_examples=20, deadline=None)
    def test_greedy_submodular_two_approx(self, n, seed, tradeoff):
        objective = _random_submodular_objective(n, seed, tradeoff)
        p = max(2, n // 2)
        greedy = greedy_diversify(objective, p)
        optimum = exact_diversify(objective, p, method="enumerate")
        assert greedy.objective_value >= optimum.objective_value / 2 - 1e-9

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_greedy_monotone_in_p(self, n, seed):
        """Adding more slots can only improve the greedy value (monotone φ)."""
        objective = _random_modular_objective(n, seed, 0.2)
        values = [
            greedy_diversify(objective, p).objective_value for p in range(1, n + 1)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_exact_branch_and_bound_agrees_with_enumeration(self, n, seed):
        objective = _random_modular_objective(n, seed, 0.3)
        p = max(2, n // 2)
        bnb = exact_diversify(objective, p, method="branch_and_bound")
        enum = exact_diversify(objective, p, method="enumerate")
        assert bnb.objective_value == pytest.approx(enum.objective_value)


class TestTheorem2:
    @given(n=sizes, seed=seeds, tradeoff=tradeoffs)
    @settings(max_examples=20, deadline=None)
    def test_local_search_uniform_two_approx(self, n, seed, tradeoff):
        objective = _random_modular_objective(n, seed, tradeoff)
        p = max(2, n // 2)
        local = local_search_diversify(objective, UniformMatroid(n, p))
        optimum = exact_diversify(objective, p, method="enumerate")
        assert local.objective_value >= optimum.objective_value / 2 - 1e-9

    @given(n=sizes, seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_local_search_partition_two_approx(self, n, seed):
        objective = _random_submodular_objective(n, seed, 0.3)
        blocks = [i % 3 for i in range(n)]
        matroid = PartitionMatroid(blocks, {0: 1, 1: 1, 2: 1})
        local = local_search_diversify(objective, matroid)
        optimum = exact_diversify(objective, matroid=matroid)
        assert local.objective_value >= optimum.objective_value / 2 - 1e-9


class TestCorollary4:
    @given(n=st.integers(min_value=6, max_value=9), seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_single_update_keeps_ratio_three(self, n, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0, 1, size=n)
        metric = UniformRandomMetric(n, seed=seed + 1)
        engine = DynamicDiversifier(weights, metric.to_matrix(), p=3, tradeoff=0.2)
        # One random Type I / III / IV perturbation (Type II needs the
        # magnitude restriction, covered by the unit tests).
        choice = rng.integers(0, 3)
        if choice == 0:
            engine.apply(
                WeightIncrease(int(rng.integers(0, n)), float(rng.uniform(0.1, 1))),
                updates=1,
            )
        else:
            u, v = map(int, rng.choice(n, size=2, replace=False))
            current = engine.distance(u, v)
            target = float(rng.uniform(1.0, 2.0))
            if abs(target - current) < 1e-9:
                return
            if target > current:
                engine.apply(DistanceIncrease(u, v, target - current), updates=1)
            else:
                engine.apply(DistanceDecrease(u, v, current - target), updates=1)
        assert engine.approximation_ratio() <= 3.0 + 1e-9
