"""CELF lazy greedy vs plain greedy on the submodular fast path.

Submodularity makes stale quality gains valid upper bounds, so the lazy
(CELF) evaluation order must select exactly the same elements, in the same
order, as the plain per-iteration batch evaluation — and as the original
per-candidate oracle loop.  Tie-breaking is deterministic (smallest index
first) in all three.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.functions import (
    CoverageFunction,
    FacilityLocationFunction,
    LogDeterminantFunction,
    SaturatedCoverageFunction,
)
from repro.functions.weakly_submodular import DispersionFunction
from repro.metrics.discrete import UniformRandomMetric

N, P = 160, 12


def _oracle_greedy(objective, p, *, oblivious=False):
    """The pre-protocol reference: one oracle call per candidate per step."""
    selected, order = set(), []
    tracker = objective.make_tracker()
    remaining = set(range(objective.n))
    while len(selected) < p and remaining:
        members = frozenset(selected)
        best, best_gain = None, -float("inf")
        for u in remaining:
            gain = (
                objective.marginal(u, members, tracker=tracker)
                if oblivious
                else objective.potential_marginal(u, members, tracker=tracker)
            )
            if gain > best_gain or (gain == best_gain and (best is None or u < best)):
                best_gain, best = gain, u
        selected.add(best)
        order.append(best)
        tracker.add(best)
        remaining.discard(best)
    return order


def _quality(kind: str, rng: np.random.Generator):
    if kind == "facility":
        similarity = rng.uniform(0.0, 1.0, size=(N, N))
        return FacilityLocationFunction((similarity + similarity.T) / 2.0)
    if kind == "coverage":
        return CoverageFunction.random(N, 60, topics_per_element=3, seed=7)
    if kind == "log_det":
        return LogDeterminantFunction.from_features(
            rng.normal(size=(N, 5)), bandwidth=2.0
        )
    assert kind == "saturated"
    similarity = rng.uniform(0.0, 1.0, size=(N, N))
    return SaturatedCoverageFunction(
        (similarity + similarity.T) / 2.0, saturation=0.3
    )


@pytest.mark.parametrize("kind", ["facility", "coverage", "log_det", "saturated"])
@pytest.mark.parametrize("tradeoff", [0.0, 0.5, 2.0])
def test_celf_matches_plain_and_oracle(kind, tradeoff):
    rng = np.random.default_rng(hash(kind) % 2**32)
    objective = Objective(
        _quality(kind, rng), UniformRandomMetric(N, seed=13), tradeoff
    )
    lazy = greedy_diversify(objective, P)
    plain = greedy_diversify(objective, P, lazy=False)
    oracle = _oracle_greedy(objective, P)
    assert list(lazy.order) == list(plain.order) == oracle
    assert lazy.metadata["celf"]["lazy"] is True
    assert plain.metadata["celf"]["lazy"] is False
    # Laziness must not evaluate more than the plain batch does.
    assert (
        lazy.metadata["celf"]["quality_evaluations"]
        <= plain.metadata["celf"]["quality_evaluations"]
    )


@pytest.mark.parametrize("kind", ["facility", "log_det"])
def test_celf_oblivious_and_best_pair(kind):
    rng = np.random.default_rng(hash(kind) % 2**31)
    objective = Objective(_quality(kind, rng), UniformRandomMetric(N, seed=3), 0.7)
    lazy = greedy_diversify(objective, P, oblivious=True)
    assert list(lazy.order) == _oracle_greedy(objective, P, oblivious=True)
    pair_lazy = greedy_diversify(objective, P, start="best_pair")
    pair_plain = greedy_diversify(objective, P, start="best_pair", lazy=False)
    assert list(pair_lazy.order) == list(pair_plain.order)
    assert pair_lazy.size == P


def test_celf_metadata_counts():
    rng = np.random.default_rng(0)
    objective = Objective(
        _quality("facility", rng), UniformRandomMetric(N, seed=1), 0.5
    )
    result = greedy_diversify(objective, P)
    celf = result.metadata["celf"]
    assert celf["quality_evaluations"] >= N  # first iteration batches everything
    assert 0.0 <= celf["celf_fraction"] <= 1.0
    assert (
        celf["quality_evaluations"]
        == N + celf["evaluations_after_first"]
    )


def test_non_submodular_quality_defaults_to_plain():
    """Supermodular dispersion quality must not be evaluated lazily."""
    rng = np.random.default_rng(2)
    matrix = 0.5 + rng.uniform(0.0, 0.5, size=(40, 40))
    matrix = (matrix + matrix.T) / 2.0
    np.fill_diagonal(matrix, 0.0)
    from repro.metrics.matrix import DistanceMatrix

    metric = DistanceMatrix(matrix)
    objective = Objective(
        DispersionFunction(metric), UniformRandomMetric(40, seed=5), 0.3
    )
    result = greedy_diversify(objective, 6)
    assert result.metadata["celf"]["lazy"] is False
    assert list(result.order) == _oracle_greedy(objective, 6)


def test_modular_path_keeps_metadata_shape():
    from repro.functions import ModularFunction

    rng = np.random.default_rng(4)
    objective = Objective(
        ModularFunction(rng.uniform(0, 5, N)), UniformRandomMetric(N, seed=2), 1.0
    )
    result = greedy_diversify(objective, P)
    assert "celf" not in result.metadata
