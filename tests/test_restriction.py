"""Tests for the sub-universe restriction layer.

Covers the three layers the ``candidates=`` path is built from —
``Metric.restrict`` / ``SetFunction.restrict`` / ``Matroid.restrict`` — the
:class:`~repro.core.restriction.Restriction` bundle, and the property every
algorithm must satisfy: solving with ``candidates=C`` equals solving the
induced sub-instance (``metric.restrict(C)``, sliced weights) lifted back,
and never selects outside ``C``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.restriction import Restriction
from repro.core.solver import ALGORITHMS, solve
from repro.core.streaming import streaming_diversify
from repro.data.synthetic import make_synthetic_instance
from repro.exceptions import InvalidParameterError
from repro.functions.coverage import CoverageFunction
from repro.functions.modular import ModularFunction, ZeroFunction
from repro.functions.restricted import RestrictedSetFunction
from repro.matroids.graphic import GraphicMatroid
from repro.matroids.partition import PartitionMatroid
from repro.matroids.restriction import RestrictedMatroid
from repro.matroids.truncation import TruncatedMatroid
from repro.matroids.uniform import UniformMatroid
from repro.metrics.base import Metric
from repro.metrics.matrix import DistanceMatrix


class OracleMetric(Metric):
    """Matrix distances served only through the oracle interface.

    Forces the reference (loop) code paths: ``matrix_view()`` stays ``None``.
    """

    def __init__(self, matrix: np.ndarray) -> None:
        self._backing = np.asarray(matrix, dtype=float)

    @property
    def n(self) -> int:
        return self._backing.shape[0]

    def distance(self, u, v) -> float:
        return float(self._backing[u, v])


# ----------------------------------------------------------------------
# Metric restriction
# ----------------------------------------------------------------------
class TestMetricRestrict:
    @pytest.fixture
    def matrix(self):
        return DistanceMatrix(make_synthetic_instance(12, seed=3).metric.to_matrix())

    def test_contiguous_pool_is_a_copy_free_view(self, matrix):
        sub = matrix.restrict(range(3, 9))
        assert sub.n == 6
        assert np.shares_memory(sub.matrix_view(), matrix.array)
        assert sub.distance(0, 1) == matrix.distance(3, 4)

    def test_strided_pool_is_a_copy_free_view(self, matrix):
        sub = matrix.restrict([2, 5, 8, 11])
        assert sub.n == 4
        assert np.shares_memory(sub.matrix_view(), matrix.array)
        assert sub.distance(1, 3) == matrix.distance(5, 11)

    def test_view_reflects_parent_mutation(self, matrix):
        sub = matrix.restrict(range(0, 4))
        matrix.set_distance(1, 2, 1.234)
        assert sub.distance(1, 2) == pytest.approx(1.234)

    def test_view_is_read_only(self, matrix):
        sub = matrix.restrict(range(0, 4))
        with pytest.raises(ValueError):
            sub.array[0, 1] = 5.0

    def test_arbitrary_pool_is_an_independent_copy(self, matrix):
        pool = [7, 1, 4]
        sub = matrix.restrict(pool)
        assert not np.shares_memory(sub.matrix_view(), matrix.array)
        for i, u in enumerate(pool):
            for j, v in enumerate(pool):
                assert sub.distance(i, j) == matrix.distance(u, v)
        matrix.set_distance(7, 1, 1.111)
        assert sub.distance(0, 1) != pytest.approx(1.111)

    def test_empty_and_singleton_pools(self, matrix):
        assert matrix.restrict([]).n == 0
        single = matrix.restrict([5])
        assert single.n == 1
        assert single.distance(0, 0) == 0.0

    def test_duplicates_deduplicated_in_order(self, matrix):
        sub = matrix.restrict([4, 2, 4, 2, 9])
        assert sub.n == 3
        assert sub.distance(0, 2) == matrix.distance(4, 9)

    def test_out_of_universe_rejected(self, matrix):
        with pytest.raises(InvalidParameterError):
            matrix.restrict([0, 99])
        with pytest.raises(InvalidParameterError):
            matrix.restrict([-1])

    def test_oracle_metric_default_restrict(self):
        backing = make_synthetic_instance(8, seed=5).metric.to_matrix()
        oracle = OracleMetric(backing)
        sub = oracle.restrict([1, 6, 3])
        assert isinstance(sub, DistanceMatrix)
        assert sub.distance(0, 2) == pytest.approx(backing[1, 3])


# ----------------------------------------------------------------------
# Quality-function restriction
# ----------------------------------------------------------------------
class TestFunctionRestrict:
    def test_modular_slice(self):
        fn = ModularFunction([0.5, 1.0, 1.5, 2.0])
        sub = fn.restrict([3, 1])
        assert isinstance(sub, ModularFunction)
        assert sub.n == 2
        assert sub.value({0, 1}) == pytest.approx(3.0)
        fn.set_weight(3, 9.0)
        assert sub.value({0}) == pytest.approx(2.0)  # independent copy

    def test_zero_function(self):
        sub = ZeroFunction(6).restrict([0, 5])
        assert isinstance(sub, ZeroFunction)
        assert sub.n == 2

    def test_generic_wrapper_delegates(self):
        coverage = CoverageFunction.random(10, 6, seed=0)
        pool = [2, 7, 4]
        sub = coverage.restrict(pool)
        assert isinstance(sub, RestrictedSetFunction)
        assert sub.n == 3
        assert sub.value({0, 2}) == pytest.approx(coverage.value({2, 4}))
        assert sub.marginal(1, {0}) == pytest.approx(coverage.marginal(7, {2}))
        assert sub.is_modular == coverage.is_modular

    def test_out_of_universe_rejected(self):
        with pytest.raises(InvalidParameterError):
            ModularFunction([1.0, 2.0]).restrict([0, 5])
        with pytest.raises(InvalidParameterError):
            CoverageFunction.random(4, 3, seed=0).restrict([9])


# ----------------------------------------------------------------------
# Matroid restriction
# ----------------------------------------------------------------------
class TestMatroidRestrict:
    def test_uniform(self):
        sub = UniformMatroid(10, 4).restrict([0, 1, 2])
        assert isinstance(sub, UniformMatroid)
        assert sub.n == 3 and sub.p == 3
        sub = UniformMatroid(10, 2).restrict(range(5))
        assert sub.p == 2

    def test_partition_keeps_blocks_and_capacities(self):
        matroid = PartitionMatroid([0, 0, 1, 1, 2, 2], {0: 1, 1: 2, 2: 1})
        sub = matroid.restrict([0, 2, 3, 4])  # local blocks: [0, 1, 1, 2]
        assert isinstance(sub, PartitionMatroid)
        assert sub.is_independent({1, 2})  # both in block 1, capacity 2
        assert sub.is_independent({0, 1, 2, 3})  # within every capacity
        assert sub.rank() == matroid.rank([0, 2, 3, 4])

    def test_truncation_commutes(self):
        inner = PartitionMatroid([0, 0, 1, 1], {0: 2, 1: 2})
        sub = TruncatedMatroid(inner, 3).restrict([0, 1, 2])
        assert isinstance(sub, TruncatedMatroid)
        assert sub.rank() == 3
        assert sub.is_independent({0, 1, 2})

    def test_generic_wrapper_matches_inner_oracle(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]
        matroid = GraphicMatroid(5, edges)
        pool = [0, 1, 2, 4]
        sub = matroid.restrict(pool)
        assert isinstance(sub, RestrictedMatroid)
        from itertools import combinations

        for size in range(len(pool) + 1):
            for combo in combinations(range(len(pool)), size):
                expected = matroid.is_independent({pool[i] for i in combo})
                assert sub.is_independent(set(combo)) == expected

    def test_restricted_axioms_hold(self):
        matroid = PartitionMatroid([0, 1, 0, 1, 0], {0: 2, 1: 1})
        matroid.restrict([4, 1, 0]).check_axioms()

    def test_swap_feasibility_delegates(self):
        matroid = PartitionMatroid([0, 0, 1, 1], {0: 1, 1: 1})
        sub = RestrictedMatroid(matroid, [0, 1, 2, 3])
        basis = {0, 2}
        feasible = sub.swap_feasibility(
            basis, np.array([1, 3]), np.array([0, 2])
        )
        expected = matroid.swap_feasibility(
            {0, 2}, np.array([1, 3]), np.array([0, 2])
        )
        assert np.array_equal(feasible, expected)


# ----------------------------------------------------------------------
# The Restriction bundle
# ----------------------------------------------------------------------
class TestRestrictionBundle:
    @pytest.fixture
    def objective(self):
        return make_synthetic_instance(12, seed=9).objective

    def test_value_preservation(self, objective):
        pool = [8, 1, 5, 11]
        restriction = Restriction(objective, pool)
        assert restriction.objective.value({0, 2}) == pytest.approx(
            objective.value({8, 5})
        )

    def test_index_round_trip(self, objective):
        restriction = Restriction(objective, [8, 1, 5, 11])
        assert restriction.to_local([5, 8]) == [2, 0]
        assert restriction.to_global([2, 0]) == [5, 8]
        with pytest.raises(InvalidParameterError):
            restriction.to_local([3])

    def test_identity_detection(self, objective):
        assert Restriction(objective, range(12)).is_identity
        assert not Restriction(objective, [0, 2]).is_identity

    def test_lift_remaps_metadata(self, objective):
        from repro.core.baselines import gollapudi_sharma_greedy

        pool = [8, 1, 5, 11, 3, 6]
        result = gollapudi_sharma_greedy(objective, 4, candidates=pool)
        assert result.metadata["candidates"] == tuple(pool)
        for u, v in result.metadata["pairs"]:
            assert u in pool and v in pool


# ----------------------------------------------------------------------
# Property: every algorithm honors candidates= and matches the induced
# sub-instance (satellite of ISSUE 2; includes the local_search regression).
# ----------------------------------------------------------------------
POOLS = {
    "empty": [],
    "singleton": [7],
    "scattered": [3, 11, 2, 9, 14, 0, 5, 12],
    "contiguous": list(range(4, 12)),
    "full": list(range(15)),
}


class TestRestrictionEquivalence:
    @pytest.fixture
    def instance(self):
        return make_synthetic_instance(15, seed=21)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("pool_name", sorted(POOLS))
    def test_candidates_equal_induced_sub_instance(
        self, instance, algorithm, pool_name
    ):
        pool = POOLS[pool_name]
        restricted = solve(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            p=3,
            algorithm=algorithm,
            candidates=pool,
        )
        # Never select outside the pool.
        assert restricted.selected <= set(pool)
        # Equal to solving the induced sub-instance and lifting back.
        idx = np.asarray(pool, dtype=int)
        induced = solve(
            ModularFunction(instance.weights[idx]),
            instance.metric.restrict(pool),
            tradeoff=instance.tradeoff,
            p=3,
            algorithm=algorithm,
        )
        assert frozenset(pool[e] for e in induced.selected) == restricted.selected
        assert restricted.objective_value == pytest.approx(
            induced.objective_value, abs=1e-9
        )
        assert restricted.quality_value == pytest.approx(
            induced.quality_value, abs=1e-9
        )
        assert restricted.dispersion_value == pytest.approx(
            induced.dispersion_value, abs=1e-9
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_kernel_and_reference_paths_agree(self, instance, algorithm):
        """Matrix-backed (kernel) vs oracle (loop) paths: 1e-9 parity."""
        pool = [3, 11, 2, 9, 14, 0, 5, 12]
        kernel = solve(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            p=3,
            algorithm=algorithm,
            candidates=pool,
        )
        oracle = solve(
            instance.quality,
            OracleMetric(instance.metric.to_matrix()),
            tradeoff=instance.tradeoff,
            p=3,
            algorithm=algorithm,
            candidates=pool,
        )
        assert kernel.selected == oracle.selected
        assert kernel.objective_value == pytest.approx(
            oracle.objective_value, abs=1e-9
        )

    def test_local_search_regression_pool_0_to_4(self, instance):
        """Regression for the silently-ignored pool: local_search used to
        return elements outside [0..4] (e.g. {2, 4, 7}-style escapes)."""
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            p=3,
            algorithm="local_search",
            candidates=[0, 1, 2, 3, 4],
        )
        assert result.selected <= {0, 1, 2, 3, 4}
        assert result.size == 3

    def test_matroid_constraint_with_candidates(self, instance):
        matroid = PartitionMatroid([i % 3 for i in range(15)], {0: 2, 1: 2, 2: 2})
        pool = [0, 1, 2, 3, 4, 5, 6, 7]
        result = solve(
            instance.quality,
            instance.metric,
            tradeoff=instance.tradeoff,
            matroid=matroid,
            candidates=pool,
        )
        assert result.selected <= set(pool)
        assert matroid.is_independent(result.selected)

    def test_streaming_honors_candidates(self, instance):
        pool = [3, 11, 2, 9, 14, 0]
        result = streaming_diversify(instance.objective, 3, candidates=pool)
        assert result.selected <= set(pool)
        with pytest.raises(InvalidParameterError):
            streaming_diversify(
                instance.objective, 3, [1, 3], candidates=pool
            )  # arrival 1 outside the pool

    def test_submodular_quality_with_candidates(self, instance):
        coverage = CoverageFunction.random(15, 8, seed=2)
        pool = [1, 4, 6, 10, 13]
        result = solve(
            coverage,
            instance.metric,
            tradeoff=0.3,
            p=3,
            candidates=pool,
        )
        assert result.selected <= set(pool)
        assert result.size == 3
