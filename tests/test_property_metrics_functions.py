"""Property-based tests (hypothesis) for the metric and set-function substrates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.functions.coverage import CoverageFunction
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.modular import ModularFunction
from repro.functions.saturated import SaturatedCoverageFunction
from repro.metrics.aggregates import (
    MarginalDistanceTracker,
    marginal_distance,
    set_distance,
)
from repro.metrics.discrete import UniformRandomMetric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.validation import is_metric

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
sizes = st.integers(min_value=2, max_value=8)
seeds = st.integers(min_value=0, max_value=10_000)


def _subset_strategy(n: int):
    return st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)


# ----------------------------------------------------------------------
# Metric properties
# ----------------------------------------------------------------------
class TestMetricProperties:
    @given(n=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_uniform_random_metric_always_metric(self, n, seed):
        assert is_metric(UniformRandomMetric(n, seed=seed))

    @given(n=sizes, seed=seeds, dim=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_euclidean_always_metric(self, n, seed, dim):
        rng = np.random.default_rng(seed)
        assert is_metric(EuclideanMetric(rng.normal(size=(n, dim))))

    @given(n=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_tracker_matches_brute_force(self, n, seed):
        metric = UniformRandomMetric(n, seed=seed)
        rng = np.random.default_rng(seed + 1)
        members = list(rng.choice(n, size=rng.integers(0, n), replace=False))
        tracker = MarginalDistanceTracker(metric, initial=members)
        assert tracker.internal_dispersion == pytest.approx(
            set_distance(metric, members)
        )
        for u in range(n):
            if u in members:
                continue
            assert tracker.marginal(u) == pytest.approx(
                marginal_distance(metric, u, members)
            )

    @given(n=sizes, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_lemma1_ravi_inequality(self, n, seed):
        """Lemma 1: (|X| - 1)·d(X, Y) ≥ |Y|·d(X) for disjoint X, Y in a metric."""
        metric = UniformRandomMetric(n, seed=seed)
        rng = np.random.default_rng(seed + 2)
        elements = list(range(n))
        rng.shuffle(elements)
        split = rng.integers(1, n)
        x_set, y_set = elements[:split], elements[split:]
        if not x_set or not y_set:
            return
        from repro.metrics.aggregates import set_cross_distance

        lhs = (len(x_set) - 1) * set_cross_distance(metric, x_set, y_set)
        rhs = len(y_set) * set_distance(metric, x_set)
        assert lhs >= rhs - 1e-9


# ----------------------------------------------------------------------
# Set-function properties
# ----------------------------------------------------------------------
def _check_submodular_monotone(function, n, rng):
    for _ in range(10):
        small = set(map(int, rng.choice(n, size=rng.integers(0, n), replace=False)))
        extra = set(map(int, rng.choice(n, size=rng.integers(0, n), replace=False)))
        large = small | extra
        outside = [u for u in range(n) if u not in large]
        if not outside:
            continue
        u = int(rng.choice(outside))
        gain_small = function.marginal(u, small)
        gain_large = function.marginal(u, large)
        assert gain_small >= -1e-9  # monotone
        assert gain_large <= gain_small + 1e-9  # submodular


class TestFunctionProperties:
    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_modular_marginals_constant(self, n, seed):
        rng = np.random.default_rng(seed)
        f = ModularFunction(rng.uniform(0, 1, size=n))
        _check_submodular_monotone(f, n, rng)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_coverage_submodular_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        f = CoverageFunction.random(n, num_topics=5, topics_per_element=2, seed=seed)
        _check_submodular_monotone(f, n, rng)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_facility_location_submodular_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        f = FacilityLocationFunction(rng.uniform(0, 1, size=(n, n)))
        _check_submodular_monotone(f, n, rng)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_saturated_coverage_submodular_monotone(self, n, seed):
        rng = np.random.default_rng(seed)
        features = rng.uniform(0.1, 1.0, size=(n, 3))
        f = SaturatedCoverageFunction.from_features(features, saturation=0.4)
        _check_submodular_monotone(f, n, rng)

    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_value_equals_sum_of_marginals_along_any_order(self, n, seed):
        """f(S) = Σ_i f_{u_i}({u_1..u_{i-1}}) — the telescoping identity."""
        rng = np.random.default_rng(seed)
        f = CoverageFunction.random(n, num_topics=6, seed=seed)
        order = list(rng.permutation(n))
        prefix: set = set()
        total = 0.0
        for u in order:
            total += f.marginal(int(u), prefix)
            prefix.add(int(u))
        assert total == pytest.approx(f.value(prefix))


# ----------------------------------------------------------------------
# Dispersion super-modularity (the reason Nemhauser et al. doesn't apply)
# ----------------------------------------------------------------------
class TestDispersionSupermodularity:
    @given(n=sizes, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_distance_marginals_increase_with_set(self, n, seed):
        metric = UniformRandomMetric(n, seed=seed)
        rng = np.random.default_rng(seed + 3)
        small = set(map(int, rng.choice(n, size=rng.integers(0, n), replace=False)))
        extra = set(map(int, rng.choice(n, size=rng.integers(0, n), replace=False)))
        large = small | extra
        outside = [u for u in range(n) if u not in large]
        if not outside:
            return
        u = int(rng.choice(outside))
        assert marginal_distance(metric, u, large) >= marginal_distance(
            metric, u, small
        ) - 1e-9
