"""Crash durability: the WAL, snapshot rotation, and session recovery.

The contract under test is bit-identical crash replay: a durable session
journals every tick *before* applying it, so recovering its directory — at
any crash point, including mid-append torn tails and the window between a
compaction snapshot and the log truncation — rebuilds exactly the state the
live process had at its last journaled tick boundary.  Mid-log corruption,
by contrast, must refuse loudly (``WalCorruptionError``), never silently
drop acknowledged writes.
"""

from __future__ import annotations

import os
import pickle
import shutil
import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checkpoint import (
    SNAPSHOT_FORMAT_VERSION,
    SolveCheckpoint,
    check_snapshot_version,
    universe_fingerprint,
)
from repro.durability.recovery import DurableCheckpoint
from repro.durability.snapshot import SnapshotStore, read_framed, write_framed
from repro.durability.wal import (
    RECORD_INIT,
    RECORD_TICK,
    WAL_MAGIC,
    WriteAheadLog,
    read_wal,
)
from repro.dynamic.events import (
    EventBatchBuilder,
    decode_event_batch,
    encode_event_batch,
)
from repro.dynamic.session import DynamicSession
from repro.exceptions import (
    DurabilityError,
    DurabilityWarning,
    InvalidParameterError,
    RecoveryError,
    SnapshotVersionError,
    WalCorruptionError,
)
from repro.testing.faults import (
    SimulatedCrash,
    crash_after_snapshot,
    flip_byte,
    tear_wal_tail,
)


def _dense_instance(n=12, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0, 5, n)
    distances = rng.uniform(1, 2, (n, n))
    distances = (distances + distances.T) / 2
    np.fill_diagonal(distances, 0.0)
    return weights, distances


def _sharded_instance(n=48, d=3, seed=1):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, d)), rng.uniform(0.5, 2.0, n)


def _tick(rng, n):
    """One deterministic weight-delta batch over a live universe of n."""
    builder = EventBatchBuilder()
    for element in rng.choice(n, size=3, replace=False):
        # increases only: random decreases can dip below zero mid-run, and
        # deterministic rejection replay has its own dedicated test
        builder.change_weight(int(element), float(rng.uniform(0.05, 0.45)))
    return builder.build()


def _assert_same_state(a: DynamicSession, b: DynamicSession) -> None:
    assert a.solution == b.solution
    assert a.solution_value == b.solution_value  # bit-identical, no approx
    assert a.ticks == b.ticks
    for element in range(min(a.n, 6)):
        assert a.weight(element) == b.weight(element)


# ----------------------------------------------------------------------
# Write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_INIT, 0, b"init-body")
            wal.append(RECORD_TICK, 1, b"")
            wal.append(RECORD_TICK, 2, b"\x00" * 100)
        records, valid = read_wal(path)
        assert [(r.kind, r.seq, r.body) for r in records] == [
            (RECORD_INIT, 0, b"init-body"),
            (RECORD_TICK, 1, b""),
            (RECORD_TICK, 2, b"\x00" * 100),
        ]
        assert valid == os.path.getsize(path)

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(str(tmp_path / "w.log"), fsync="sometimes")
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(str(tmp_path / "w.log"), fsync_interval_s=0.0)

    @pytest.mark.parametrize("fsync", ["always", "interval", "off"])
    def test_all_policies_write_identically(self, tmp_path, fsync):
        path = str(tmp_path / f"{fsync}.log")
        with WriteAheadLog(path, fsync=fsync) as wal:
            wal.append(RECORD_TICK, 1, b"abc")
        records, _ = read_wal(path)
        assert records[0].body == b"abc"

    def test_empty_file_reads_as_empty_log(self, tmp_path):
        path = tmp_path / "empty.log"
        path.touch()
        assert read_wal(str(path)) == ([], 0)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.log"
        path.write_bytes(b"NOTMAGIC" + b"x" * 32)
        with pytest.raises(WalCorruptionError):
            read_wal(str(path))

    def test_torn_tail_repaired_with_warning(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"first")
            wal.append(RECORD_TICK, 2, b"second")
        tear_wal_tail(path, 3)
        with pytest.warns(DurabilityWarning):
            records, valid = read_wal(path, repair=True)
        assert [r.seq for r in records] == [1]
        # repair truncated the file to the valid prefix: a re-read is clean
        assert os.path.getsize(path) == valid
        assert read_wal(path) == (records, valid)

    def test_partial_header_is_torn_not_corrupt(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"first")
        with open(path, "ab") as handle:
            handle.write(b"\x07\x00")  # 2 of 12 header bytes made it to disk
        with pytest.warns(DurabilityWarning):
            records, _ = read_wal(path)
        assert [r.seq for r in records] == [1]

    def test_corrupt_final_record_is_torn(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"first")
            wal.append(RECORD_TICK, 2, b"second")
        flip_byte(path, -2)  # inside the final record's payload
        with pytest.warns(DurabilityWarning):
            records, _ = read_wal(path)
        assert [r.seq for r in records] == [1]

    def test_mid_log_corruption_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"first-payload")
            wal.append(RECORD_TICK, 2, b"second")
        flip_byte(path, len(WAL_MAGIC) + 12 + 9 + 2)  # first record's body
        with pytest.raises(WalCorruptionError):
            read_wal(path, repair=True)

    def test_append_at_overwrites_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"keep")
            wal.append(RECORD_TICK, 2, b"torn")
        tear_wal_tail(path, 1)
        with pytest.warns(DurabilityWarning):
            _, valid = read_wal(path)
        with WriteAheadLog(path, fsync="off", append_at=valid) as wal:
            wal.append(RECORD_TICK, 2, b"rewritten")
        records, _ = read_wal(path)
        assert [(r.seq, r.body) for r in records] == [(1, b"keep"), (2, b"rewritten")]

    def test_reset_truncates_to_magic(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path, fsync="off") as wal:
            wal.append(RECORD_TICK, 1, b"gone after reset")
            wal.reset()
            wal.append(RECORD_TICK, 2, b"survivor")
        records, _ = read_wal(path)
        assert [r.seq for r in records] == [2]


# ----------------------------------------------------------------------
# Snapshot store
# ----------------------------------------------------------------------
class TestSnapshotStore:
    def test_generations_are_monotonic(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        assert store.generations() == []
        assert store.write({"tick": 1})[0] == 1
        assert store.write({"tick": 2})[0] == 2
        assert store.load(1) == {"tick": 1}
        assert store.load_latest() == (2, {"tick": 2})

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        store.write({"tick": 1})
        _, path = store.write({"tick": 2})
        flip_byte(path, -1)
        with pytest.warns(DurabilityWarning):
            assert store.load_latest() == (1, {"tick": 1})

    def test_all_corrupt_means_none(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        _, path = store.write({"tick": 1})
        flip_byte(path, -1)
        with pytest.warns(DurabilityWarning):
            assert store.load_latest() is None

    def test_prune_keeps_newest(self, tmp_path):
        store = SnapshotStore(str(tmp_path))
        for tick in range(5):
            store.write({"tick": tick})
        store.prune(keep=2)
        assert store.generations() == [4, 5]

    def test_framed_write_leaves_no_temp_files(self, tmp_path):
        path = str(tmp_path / "one.snap")
        write_framed(path, b"payload")
        assert read_framed(path) == b"payload"
        assert os.listdir(tmp_path) == ["one.snap"]

    def test_framed_read_detects_damage(self, tmp_path):
        path = str(tmp_path / "one.snap")
        write_framed(path, b"payload-bytes")
        flip_byte(path, -4)
        with pytest.raises(DurabilityError):
            read_framed(path)


# ----------------------------------------------------------------------
# Event-batch wire format
# ----------------------------------------------------------------------
class TestEventBatchCodec:
    def test_delta_batch_round_trip(self):
        batch = (
            EventBatchBuilder()
            .change_weight(3, 0.5)
            .change_weight(1, -0.25)
            .change_distance(0, 4, 0.125)
            .build()
        )
        decoded = decode_event_batch(encode_event_batch(batch))
        assert np.array_equal(decoded.weight_delta_elements, [3, 1])
        assert np.array_equal(decoded.weight_deltas, [0.5, -0.25])
        assert np.array_equal(decoded.distance_delta_pairs, [[0, 4]])
        assert np.array_equal(decoded.distance_deltas, [0.125])
        assert not decoded.weight_deltas.flags.writeable

    def test_insert_rows_and_deletes_round_trip(self):
        batch = (
            EventBatchBuilder()
            .insert(1.5, distances=np.linspace(1.0, 2.0, 8))
            .insert(0.5, distances=np.linspace(2.0, 1.0, 9))
            .delete(6)
            .build()
        )
        decoded = decode_event_batch(encode_event_batch(batch))
        assert decoded.num_inserts == 2
        assert np.array_equal(decoded.insert_distances[1], np.linspace(2.0, 1.0, 9))
        assert np.array_equal(decoded.delete_elements, [6])

    def test_insert_points_round_trip(self):
        batch = (
            EventBatchBuilder()
            .insert(2.0, point=np.array([0.1, 0.2, 0.3]))
            .build()
        )
        decoded = decode_event_batch(encode_event_batch(batch))
        assert decoded.insert_points.shape == (1, 3)
        assert np.array_equal(decoded.insert_points, batch.insert_points)

    def test_newer_encoding_version_rejected(self, monkeypatch):
        import repro.dynamic.events as events

        monkeypatch.setattr(events, "_ENCODING_VERSION", 999)
        data = encode_event_batch(EventBatchBuilder().change_weight(0, 1.0).build())
        monkeypatch.undo()
        with pytest.raises(SnapshotVersionError):
            decode_event_batch(data)


# ----------------------------------------------------------------------
# Durable sessions: journal-before-apply and crash replay
# ----------------------------------------------------------------------
class TestDurableSession:
    def test_dense_recover_matches_uncrashed_twin(self, tmp_path):
        weights, distances = _dense_instance()
        durable = DynamicSession(
            weights, 4, distances=distances, durable_dir=str(tmp_path / "d")
        )
        twin = DynamicSession(weights, 4, distances=distances)
        rng = np.random.default_rng(7)
        for _ in range(6):
            batch = _tick(rng, durable.n)
            durable.apply_events(batch)
            twin.apply_events(batch)
        _assert_same_state(durable, twin)
        durable.close()

        recovered = DynamicSession.recover(str(tmp_path / "d"))
        _assert_same_state(recovered, twin)
        # and the recovered session keeps journaling: more ticks stay in sync
        batch = _tick(rng, recovered.n)
        recovered.apply_events(batch)
        twin.apply_events(batch)
        _assert_same_state(recovered, twin)
        recovered.close()

    def test_sharded_recover_matches_uncrashed_twin(self, tmp_path):
        points, weights = _sharded_instance()
        durable = DynamicSession(
            weights,
            5,
            points=points,
            shard_size=16,
            durable_dir=str(tmp_path / "s"),
            snapshot_every=3,
        )
        twin = DynamicSession(weights, 5, points=points, shard_size=16)
        rng = np.random.default_rng(11)
        for _ in range(7):
            batch = _tick(rng, durable.n)
            durable.apply_events(batch)
            twin.apply_events(batch)
        durable.close()
        recovered = DynamicSession.recover(str(tmp_path / "s"))
        _assert_same_state(recovered, twin)
        recovered.close()

    def test_torn_final_record_recovers_previous_tick(self, tmp_path):
        weights, distances = _dense_instance()
        directory = str(tmp_path / "d")
        session = DynamicSession(
            weights, 4, distances=distances, durable_dir=directory, fsync="off"
        )
        reference = DynamicSession(weights, 4, distances=distances)
        rng = np.random.default_rng(3)
        for index in range(5):
            batch = _tick(rng, session.n)
            session.apply_events(batch)
            if index < 4:
                reference.apply_events(batch)  # reference stops one tick short
        session.close()
        tear_wal_tail(os.path.join(directory, "wal.log"), 5)
        with pytest.warns(DurabilityWarning):
            recovered = DynamicSession.recover(directory)
        _assert_same_state(recovered, reference)
        recovered.close()

    def test_mid_log_corruption_refuses_recovery(self, tmp_path):
        weights, distances = _dense_instance()
        directory = str(tmp_path / "d")
        session = DynamicSession(
            weights, 4, distances=distances, durable_dir=directory, fsync="off"
        )
        rng = np.random.default_rng(4)
        for _ in range(4):
            session.apply_events(_tick(rng, session.n))
        session.close()
        wal_path = os.path.join(directory, "wal.log")
        # damage the init record's payload: mid-log, records follow it
        flip_byte(wal_path, len(WAL_MAGIC) + 12 + 9 + 50)
        with pytest.raises(WalCorruptionError):
            DynamicSession.recover(directory)

    def test_journal_before_apply_covers_rejected_ticks(self, tmp_path):
        weights, distances = _dense_instance()
        directory = str(tmp_path / "d")
        session = DynamicSession(
            weights, 4, distances=distances, durable_dir=directory, fsync="off"
        )
        good = EventBatchBuilder().change_weight(0, 0.5).build()
        session.apply_events(good)
        # a tick the engine rejects is journaled first (journal-before-apply);
        # replay must reproduce the rejection, not choke on the record
        bad = EventBatchBuilder().change_weight(1, -100.0).build()
        with pytest.raises(Exception):
            session.apply_events(bad)
        session.apply_events(EventBatchBuilder().change_weight(2, 0.25).build())
        reference_solution = session.solution
        reference_value = session.solution_value
        session.close()
        recovered = DynamicSession.recover(directory)
        assert recovered.solution == reference_solution
        assert recovered.solution_value == reference_value
        recovered.close()

    def test_compaction_truncates_and_rotates(self, tmp_path):
        weights, distances = _dense_instance()
        directory = str(tmp_path / "d")
        session = DynamicSession(
            weights,
            4,
            distances=distances,
            durable_dir=directory,
            fsync="off",
            snapshot_every=2,
            keep_snapshots=2,
        )
        rng = np.random.default_rng(5)
        for _ in range(6):
            session.apply_events(_tick(rng, session.n))
        store = session.durable
        assert store.snapshots.generations() == [2, 3]  # pruned to keep=2
        # the journal was truncated at the last compaction: only magic remains
        assert os.path.getsize(store.wal_path) == len(WAL_MAGIC)
        session.close()


# ----------------------------------------------------------------------
# Recovery edge cases
# ----------------------------------------------------------------------
class TestRecoveryEdgeCases:
    def _durable_session(self, directory, **kwargs):
        weights, distances = _dense_instance()
        kwargs.setdefault("fsync", "off")
        session = DynamicSession(
            weights, 4, distances=distances, durable_dir=directory, **kwargs
        )
        return session

    def test_nothing_to_recover(self, tmp_path):
        directory = tmp_path / "fresh"
        directory.mkdir()
        (directory / "wal.log").touch()  # crash beat even the magic write
        with pytest.raises(RecoveryError, match="nothing to recover"):
            DynamicSession.recover(str(directory))

    def test_snapshot_only_recovery(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory, snapshot_every=2)
        rng = np.random.default_rng(6)
        for _ in range(4):
            session.apply_events(_tick(rng, session.n))
        reference_solution = session.solution
        reference_value = session.solution_value
        session.close()
        os.remove(os.path.join(directory, "wal.log"))  # journal lost entirely
        recovered = DynamicSession.recover(directory)
        assert recovered.solution == reference_solution
        assert recovered.solution_value == reference_value
        assert recovered.ticks == 4
        recovered.close()

    def test_log_only_recovery(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory)  # snapshot_every=None
        rng = np.random.default_rng(8)
        for _ in range(3):
            session.apply_events(_tick(rng, session.n))
        reference_value = session.solution_value
        session.close()
        assert session.durable is None
        recovered = DynamicSession.recover(directory)
        assert recovered.durable.snapshots.generations() == []
        assert recovered.solution_value == reference_value
        recovered.close()

    def test_crash_between_snapshot_and_truncate(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory, snapshot_every=3)
        twin_weights, twin_distances = _dense_instance()
        twin = DynamicSession(twin_weights, 4, distances=twin_distances)
        rng = np.random.default_rng(9)
        for _ in range(2):
            batch = _tick(rng, session.n)
            session.apply_events(batch)
            twin.apply_events(batch)
        crash_after_snapshot(session.durable)
        fatal = _tick(rng, session.n)
        with pytest.raises(SimulatedCrash):
            session.apply_events(fatal)  # tick 3 applies, compaction dies
        twin.apply_events(fatal)
        session.close()
        # both the new snapshot and the full journal exist: the double state
        snapshots = SnapshotStore(os.path.join(directory, "snapshots"))
        assert snapshots.generations() == [1]
        _, untruncated = read_wal(os.path.join(directory, "wal.log"))
        assert untruncated > len(WAL_MAGIC)
        # recovery must not replay the already-covered records on top of the
        # snapshot (that would double-apply ticks 1-3)
        recovered = DynamicSession.recover(directory)
        _assert_same_state(recovered, twin)
        recovered.close()

    def test_double_recovery_is_idempotent(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory, snapshot_every=2)
        rng = np.random.default_rng(10)
        for _ in range(5):
            session.apply_events(_tick(rng, session.n))
        session.close()
        first = DynamicSession.recover(directory)
        first.close()
        second = DynamicSession.recover(directory)
        _assert_same_state(first, second)
        second.close()

    def test_start_fresh_refuses_existing_journal(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory)
        session.apply_events(EventBatchBuilder().change_weight(0, 0.5).build())
        session.close()
        with pytest.raises(RecoveryError, match="recover"):
            self._durable_session(directory)

    def test_mismatched_lineage_rejected(self, tmp_path):
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        session_a = self._durable_session(dir_a, snapshot_every=1)
        session_a.apply_events(EventBatchBuilder().change_weight(0, 0.5).build())
        session_a.close()
        weights, distances = _dense_instance(seed=99)
        session_b = DynamicSession(
            weights, 4, distances=distances, durable_dir=dir_b, fsync="off"
        )
        session_b.apply_events(EventBatchBuilder().change_weight(1, 0.5).build())
        session_b.close()
        # graft A's compaction snapshot onto B's journal
        shutil.rmtree(os.path.join(dir_b, "snapshots"), ignore_errors=True)
        shutil.copytree(
            os.path.join(dir_a, "snapshots"), os.path.join(dir_b, "snapshots")
        )
        with pytest.raises(SnapshotVersionError, match="different durable"):
            DynamicSession.recover(dir_b)

    def test_newer_checkpoint_version_rejected(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory, snapshot_every=1)
        session.apply_events(EventBatchBuilder().change_weight(0, 0.5).build())
        session.close()
        snapshots = SnapshotStore(os.path.join(directory, "snapshots"))
        generation, checkpoint = snapshots.load_latest()
        assert isinstance(checkpoint, DurableCheckpoint)
        bumped = dataclasses.replace(
            checkpoint, format_version=SNAPSHOT_FORMAT_VERSION + 1
        )
        write_framed(
            snapshots.path_for(generation),
            pickle.dumps(bumped, protocol=pickle.HIGHEST_PROTOCOL),
        )
        with pytest.raises(SnapshotVersionError, match="format_version"):
            DynamicSession.recover(directory)

    def test_recover_overrides_journaled_config(self, tmp_path):
        directory = str(tmp_path / "d")
        session = self._durable_session(directory, snapshot_every=2)
        session.apply_events(EventBatchBuilder().change_weight(0, 0.5).build())
        session.close()
        recovered = DynamicSession.recover(directory, snapshot_every=7)
        assert recovered.durable.snapshot_every == 7
        recovered.close()
        again = DynamicSession.recover(directory)
        assert again.durable.snapshot_every == 2  # journaled value, untouched
        again.close()


# ----------------------------------------------------------------------
# Crash at every record boundary (property)
# ----------------------------------------------------------------------
TICKS = 5


def _crash_states(tmp_path_factory_dir, seed):
    """Durable run journaling TICKS ticks; returns per-boundary WAL images
    plus the reference state after each tick."""
    weights, distances = _dense_instance(seed=seed)
    directory = os.path.join(tmp_path_factory_dir, f"run-{seed}")
    session = DynamicSession(
        weights, 4, distances=distances, durable_dir=directory, fsync="off"
    )
    reference = DynamicSession(weights, 4, distances=distances)
    wal_path = os.path.join(directory, "wal.log")
    wal_images = [open(wal_path, "rb").read()]
    states = [(reference.solution, reference.solution_value)]
    rng = np.random.default_rng(seed)
    for _ in range(TICKS):
        batch = _tick(rng, session.n)
        session.apply_events(batch)
        reference.apply_events(batch)
        wal_images.append(open(wal_path, "rb").read())
        states.append((reference.solution, reference.solution_value))
    session.close()
    return directory, wal_images, states


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2),
    crash_tick=st.integers(min_value=0, max_value=TICKS),
    torn_bytes=st.integers(min_value=0, max_value=40),
)
def test_crash_anywhere_recovers_uncrashed_state(
    tmp_path_factory, seed, crash_tick, torn_bytes
):
    """Crash after any journaled tick — clean at the record boundary or with
    a torn partial append on top — and recovery equals the uncrashed state at
    the last intact boundary, bit for bit."""
    base = str(tmp_path_factory.mktemp("crash"))
    directory, wal_images, states = _crash_states(base, seed)
    image = wal_images[crash_tick]
    frame_size = len(image) - len(wal_images[crash_tick - 1]) if crash_tick else 0
    torn = min(torn_bytes, max(0, frame_size - 1))  # never tear past one record
    crash_dir = os.path.join(base, f"crash-{crash_tick}-{torn}")
    os.makedirs(crash_dir)
    with open(os.path.join(crash_dir, "wal.log"), "wb") as handle:
        handle.write(image[: len(image) - torn])

    expected_tick = crash_tick - 1 if torn else crash_tick
    if torn:
        with pytest.warns(DurabilityWarning):
            recovered = DynamicSession.recover(crash_dir)
    else:
        recovered = DynamicSession.recover(crash_dir)
    solution, value = states[expected_tick]
    assert recovered.solution == solution
    assert recovered.solution_value == value
    assert recovered.ticks == expected_tick
    recovered.close()


# ----------------------------------------------------------------------
# Snapshot versioning and fingerprints (all four snapshot types)
# ----------------------------------------------------------------------
class TestSnapshotVersioning:
    def test_unversioned_objects_pass(self):
        class Legacy:
            pass

        legacy = Legacy()
        assert check_snapshot_version(legacy) is legacy

    def test_invalid_version_rejected(self):
        checkpoint = SolveCheckpoint(kind="greedy", n=4, p=2, format_version=0)
        with pytest.raises(SnapshotVersionError):
            check_snapshot_version(checkpoint)

    def test_solve_checkpoint_fingerprint_guard(self):
        checkpoint = SolveCheckpoint(
            kind="greedy",
            n=10,
            p=3,
            fingerprint=universe_fingerprint("solve", "greedy", 10, 0.5),
        )
        checkpoint.require("greedy", 10, fingerprint=checkpoint.fingerprint)
        with pytest.raises(SnapshotVersionError, match="different universe"):
            checkpoint.require(
                "greedy",
                10,
                fingerprint=universe_fingerprint("solve", "greedy", 10, 0.75),
            )

    def test_engine_snapshot_version_guard(self):
        weights, distances = _dense_instance()
        session = DynamicSession(weights, 4, distances=distances)
        snapshot = session.snapshot()
        assert snapshot.format_version == SNAPSHOT_FORMAT_VERSION
        assert snapshot.fingerprint is not None
        bumped = dataclasses.replace(
            snapshot, format_version=SNAPSHOT_FORMAT_VERSION + 1
        )
        with pytest.raises(SnapshotVersionError):
            DynamicSession.restore(bumped)

    def test_session_snapshot_version_guard(self):
        points, weights = _sharded_instance()
        session = DynamicSession(weights, 5, points=points, shard_size=16)
        snapshot = session.snapshot()
        assert snapshot.format_version == SNAPSHOT_FORMAT_VERSION
        assert snapshot.fingerprint is not None
        bumped = dataclasses.replace(
            snapshot, format_version=SNAPSHOT_FORMAT_VERSION + 1
        )
        with pytest.raises(SnapshotVersionError):
            DynamicSession.restore(bumped)

    def test_corpus_snapshot_version_guard(self, tmp_path):
        from repro.functions.modular import ModularFunction
        from repro.metrics.euclidean import EuclideanMetric
        from repro.serve.corpus import PreparedCorpus

        rng = np.random.default_rng(0)
        corpus = PreparedCorpus(
            ModularFunction(rng.random(20)),
            EuclideanMetric(rng.random((20, 3))),
            tradeoff=0.5,
        )
        snapshot = corpus.snapshot()
        assert snapshot.format_version == SNAPSHOT_FORMAT_VERSION
        assert snapshot.fingerprint is not None
        bumped = dataclasses.replace(
            snapshot, format_version=SNAPSHOT_FORMAT_VERSION + 1
        )
        with pytest.raises(SnapshotVersionError):
            PreparedCorpus.restore(bumped)
        path = str(tmp_path / "c.snap")
        bumped.save(path, durable=True)
        with pytest.raises(SnapshotVersionError):
            PreparedCorpus.load(path)
