"""Tests for DistanceMatrix and the Metric base helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, MetricError
from repro.metrics.matrix import (
    DistanceMatrix,
    GrowableDistanceMatrix,
    as_distance_matrix,
)
from repro.metrics.euclidean import EuclideanMetric


class TestConstruction:
    def test_valid_matrix(self, small_matrix):
        assert small_matrix.n == 4
        assert small_matrix.distance(0, 1) == 1.0
        assert small_matrix.distance(1, 0) == 1.0

    def test_rejects_non_square(self):
        with pytest.raises(InvalidParameterError):
            DistanceMatrix(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        matrix = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(MetricError):
            DistanceMatrix(matrix)

    def test_rejects_negative(self):
        matrix = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(MetricError):
            DistanceMatrix(matrix)

    def test_rejects_nonzero_diagonal(self):
        matrix = np.array([[1.0, 1.0], [1.0, 0.0]])
        with pytest.raises(MetricError):
            DistanceMatrix(matrix)

    def test_validate_triangle_flag(self):
        bad = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        DistanceMatrix(bad)  # accepted without validation
        with pytest.raises(MetricError):
            DistanceMatrix(bad, validate_triangle=True)


class TestBulkHelpers:
    def test_distances_from(self, small_matrix):
        row = small_matrix.distances_from(0, [1, 2, 3])
        assert np.allclose(row, [1.0, 2.0, 1.5])

    def test_distances_from_empty(self, small_matrix):
        assert small_matrix.distances_from(0, []).shape == (0,)

    def test_to_matrix_roundtrip(self, small_matrix):
        rebuilt = DistanceMatrix(small_matrix.to_matrix())
        assert rebuilt.distance(2, 3) == small_matrix.distance(2, 3)

    def test_pairs_enumeration(self, small_matrix):
        pairs = list(small_matrix.pairs())
        assert len(pairs) == 6
        assert (0, 1, 1.0) in pairs

    def test_len(self, small_matrix):
        assert len(small_matrix) == 4


class TestMutation:
    def test_set_distance_is_symmetric(self, small_matrix):
        small_matrix.set_distance(0, 1, 1.7)
        assert small_matrix.distance(0, 1) == 1.7
        assert small_matrix.distance(1, 0) == 1.7

    def test_set_distance_rejects_self(self, small_matrix):
        with pytest.raises(InvalidParameterError):
            small_matrix.set_distance(1, 1, 2.0)

    def test_set_distance_rejects_negative(self, small_matrix):
        with pytest.raises(MetricError):
            small_matrix.set_distance(0, 1, -0.5)

    def test_copy_is_independent(self, small_matrix):
        clone = small_matrix.copy()
        clone.set_distance(0, 1, 1.9)
        assert small_matrix.distance(0, 1) == 1.0


class TestBulkMutation:
    def test_set_distances_matches_scalar_loop(self, small_matrix):
        us = np.array([0, 1, 2])
        vs = np.array([1, 3, 3])
        values = np.array([0.5, 0.7, 0.9])
        batched = small_matrix.copy()
        batched.set_distances(us, vs, values)
        scalar = small_matrix.copy()
        for u, v, value in zip(us, vs, values):
            scalar.set_distance(int(u), int(v), float(value))
        np.testing.assert_allclose(batched.to_matrix(), scalar.to_matrix())
        # symmetric writes
        assert batched.distance(1, 0) == pytest.approx(0.5)

    def test_set_distances_rejects_bad_entries(self, small_matrix):
        with pytest.raises(InvalidParameterError):
            small_matrix.set_distances(
                np.array([0]), np.array([0]), np.array([1.0])
            )
        with pytest.raises(MetricError):
            small_matrix.set_distances(
                np.array([0]), np.array([1]), np.array([-0.5])
            )

    def test_set_distances_empty_is_noop(self, small_matrix):
        before = small_matrix.to_matrix()
        empty = np.array([], dtype=int)
        small_matrix.set_distances(empty, empty, np.array([]))
        np.testing.assert_array_equal(small_matrix.to_matrix(), before)


class TestGrowableMatrix:
    def _growable(self, n=4):
        rng = np.random.default_rng(0)
        matrix = rng.uniform(1.0, 2.0, (n, n))
        matrix = (matrix + matrix.T) / 2
        np.fill_diagonal(matrix, 0.0)
        return GrowableDistanceMatrix(matrix)

    def test_insert_appends_slot(self):
        growable = self._growable(4)
        row = np.array([0.1, 0.2, 0.3, 0.4])
        new = growable.insert(row)
        assert new == 4
        assert growable.n == 5
        assert growable.active_count == 5
        assert growable.distance(4, 2) == pytest.approx(0.3)
        assert growable.distance(2, 4) == pytest.approx(0.3)

    def test_capacity_doubles_amortized(self):
        growable = self._growable(2)
        start_capacity = growable.capacity
        for i in range(10):
            growable.insert(np.full(growable.n, 1.0))
        assert growable.n == 12
        assert growable.capacity >= 12
        assert growable.capacity > start_capacity

    def test_deactivate_and_slot_reuse(self):
        growable = self._growable(4)
        growable.deactivate([1])
        assert not growable.is_active(1)
        assert growable.active_count == 3
        assert growable.active_ids().tolist() == [0, 2, 3]
        # Retired row/column is zeroed.
        assert growable.distance(1, 0) == 0.0
        # Next insert revives the lowest free slot.
        revived = growable.insert(np.array([0.5, 0.0, 0.5, 0.5]))
        assert revived == 1
        assert growable.is_active(1)
        assert growable.distance(1, 3) == pytest.approx(0.5)

    def test_deactivate_rejects_dead_or_unknown(self):
        growable = self._growable(4)
        growable.deactivate([2])
        with pytest.raises(InvalidParameterError):
            growable.deactivate([2])
        with pytest.raises(InvalidParameterError):
            growable.deactivate([99])

    def test_insert_row_length_must_match_slots(self):
        growable = self._growable(4)
        with pytest.raises(InvalidParameterError):
            growable.insert(np.ones(3))

    def test_active_mask_is_readonly(self):
        growable = self._growable(4)
        with pytest.raises(ValueError):
            growable.active_mask[0] = False

    def test_copy_preserves_slots_and_free_list(self):
        growable = self._growable(4)
        growable.deactivate([0])
        clone = growable.copy()
        assert clone.active_ids().tolist() == growable.active_ids().tolist()
        # The copy's free list yields the same reuse order...
        assert clone.insert(np.full(4, 1.0)) == 0
        # ...without affecting the original.
        assert not growable.is_active(0)


class TestConstructors:
    def test_from_points_euclidean(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        matrix = DistanceMatrix.from_points(points)
        assert matrix.distance(0, 1) == pytest.approx(5.0)

    def test_from_points_cosine(self):
        points = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        matrix = DistanceMatrix.from_points(points, metric="cosine")
        assert matrix.distance(0, 1) == pytest.approx(1.0)
        assert matrix.distance(0, 2) == pytest.approx(0.0)

    def test_from_points_rejects_zero_vector_for_cosine(self):
        with pytest.raises(InvalidParameterError):
            DistanceMatrix.from_points(
                np.array([[0.0, 0.0], [1.0, 1.0]]), metric="cosine"
            )

    def test_from_points_unknown_metric(self):
        with pytest.raises(InvalidParameterError):
            DistanceMatrix.from_points(np.eye(3), metric="manhattan")

    def test_zeros(self):
        assert DistanceMatrix.zeros(3).distance(0, 2) == 0.0

    def test_restrict_reindexes(self, small_matrix):
        sub = small_matrix.restrict([0, 2])
        assert sub.n == 2
        assert sub.distance(0, 1) == small_matrix.distance(0, 2)

    def test_as_distance_matrix_converts_other_metrics(self):
        euclid = EuclideanMetric(np.array([[0.0], [1.0], [3.0]]))
        converted = as_distance_matrix(euclid)
        assert isinstance(converted, DistanceMatrix)
        assert converted.distance(0, 2) == pytest.approx(3.0)

    def test_as_distance_matrix_identity(self, small_matrix):
        assert as_distance_matrix(small_matrix) is small_matrix
