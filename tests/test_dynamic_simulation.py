"""Tests for the Section 7.3 simulation environments."""

from __future__ import annotations

import pytest

from repro.data.synthetic import make_synthetic_instance
from repro.dynamic.simulation import (
    Environment,
    run_dynamic_simulation,
    worst_ratio_curve,
)
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def tiny_instance():
    return make_synthetic_instance(8, seed=11)


class TestRunSimulation:
    @pytest.mark.parametrize(
        "environment",
        [
            Environment.VPERTURBATION,
            Environment.EPERTURBATION,
            Environment.MPERTURBATION,
        ],
    )
    def test_runs_and_tracks_ratios(self, tiny_instance, environment):
        record = run_dynamic_simulation(
            tiny_instance.weights,
            tiny_instance.distances,
            p=3,
            tradeoff=0.2,
            environment=environment,
            steps=5,
            seed=0,
        )
        assert record.environment is environment
        assert len(record.ratios) <= 5
        assert all(ratio >= 1.0 - 1e-9 for ratio in record.ratios)
        assert record.worst_ratio == max(record.ratios)

    def test_ratio_stays_below_three(self, tiny_instance):
        # The provable bound after a single oblivious update per perturbation.
        record = run_dynamic_simulation(
            tiny_instance.weights,
            tiny_instance.distances,
            p=3,
            tradeoff=0.2,
            environment=Environment.MPERTURBATION,
            steps=10,
            seed=1,
        )
        assert record.worst_ratio <= 3.0 + 1e-9

    def test_reproducible_with_same_seed(self, tiny_instance):
        first = run_dynamic_simulation(
            tiny_instance.weights,
            tiny_instance.distances,
            3,
            0.2,
            Environment.VPERTURBATION,
            steps=5,
            seed=3,
        )
        second = run_dynamic_simulation(
            tiny_instance.weights,
            tiny_instance.distances,
            3,
            0.2,
            Environment.VPERTURBATION,
            steps=5,
            seed=3,
        )
        assert first.ratios == second.ratios

    def test_zero_steps(self, tiny_instance):
        record = run_dynamic_simulation(
            tiny_instance.weights,
            tiny_instance.distances,
            3,
            0.2,
            Environment.VPERTURBATION,
            steps=0,
            seed=0,
        )
        assert record.ratios == ()
        assert record.worst_ratio == 1.0

    def test_negative_steps_rejected(self, tiny_instance):
        with pytest.raises(InvalidParameterError):
            run_dynamic_simulation(
                tiny_instance.weights,
                tiny_instance.distances,
                3,
                0.2,
                Environment.VPERTURBATION,
                steps=-1,
            )


class TestWorstRatioCurve:
    def test_curve_covers_all_tradeoffs(self, tiny_instance):
        curve = worst_ratio_curve(
            tiny_instance.weights,
            tiny_instance.distances,
            p=3,
            tradeoffs=[0.2, 0.8],
            environment=Environment.MPERTURBATION,
            steps=3,
            repeats=2,
            seed=5,
        )
        assert set(curve) == {0.2, 0.8}
        assert all(1.0 <= ratio <= 3.0 + 1e-9 for ratio in curve.values())

    def test_repeats_validation(self, tiny_instance):
        with pytest.raises(InvalidParameterError):
            worst_ratio_curve(
                tiny_instance.weights,
                tiny_instance.distances,
                3,
                [0.2],
                Environment.VPERTURBATION,
                repeats=0,
            )
