#!/usr/bin/env python3
"""Stock-portfolio selection under a partition-matroid sector constraint.

The paper motivates the matroid generalization (Section 5) with exactly this
scenario: pick stocks with high utility for profit (a monotone submodular
function — the marginal value of yet another similar stock decreases), keep
the selection spread out in a risk/return embedding (the dispersion term),
and use a partition matroid so every economic sector appears with bounded
multiplicity.  The cardinality-constrained greedy cannot express the sector
constraint — the Appendix even shows greedy can be arbitrarily bad under a
partition matroid — so the single-swap local search of Theorem 2 is used.

Run:  python examples/portfolio_selection.py [--quick]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import local_search_diversify, make_portfolio_instance
from repro.core.greedy import greedy_diversify


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use fewer stocks")
    parser.add_argument("--stocks", type=int, default=None)
    parser.add_argument("--per-sector", type=int, default=2)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    n = args.stocks or (18 if args.quick else 60)
    instance = make_portfolio_instance(
        n, sector_capacity=args.per_sector, tradeoff=0.5, seed=args.seed
    )
    objective = instance.objective
    matroid = instance.matroid
    print(
        f"Universe: {n} stocks across {len(set(instance.sectors))} sectors, "
        f"at most {args.per_sector} per sector (matroid rank {matroid.rank()})"
    )
    print()

    # Local search under the partition matroid (Theorem 2's algorithm).
    portfolio = local_search_diversify(objective, matroid)
    sector_counts = Counter(instance.sectors[i] for i in portfolio.selected)
    print("Local-search portfolio (sector-balanced):")
    for stock in sorted(portfolio.selected):
        print(
            f"  stock {stock:>3}  sector={instance.sectors[stock]:<12} "
            f"return={instance.expected_returns[stock]:.3f} "
            f"risk={instance.risk_return[stock, 0]:.3f}"
        )
    print(
        f"  objective={portfolio.objective_value:.3f}, "
        f"sectors used={dict(sector_counts)}"
    )
    print()

    # Contrast: the same budget with only a cardinality constraint (greedy),
    # which is free to ignore sectors entirely.
    budget = matroid.rank()
    unconstrained = greedy_diversify(objective, budget)
    unconstrained_sectors = Counter(instance.sectors[i] for i in unconstrained.selected)
    print(
        f"Cardinality-only greedy with the same budget ({budget} stocks) uses sectors "
        f"{dict(unconstrained_sectors)} — potentially concentrated, which is what the "
        "matroid constraint prevents."
    )
    print(
        f"Objective values: matroid local search={portfolio.objective_value:.3f}, "
        f"unconstrained greedy={unconstrained.objective_value:.3f}"
    )


if __name__ == "__main__":
    main()
