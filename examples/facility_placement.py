#!/usr/bin/env python3
"""Facility placement: the dispersion roots of max-sum diversification.

Section 3 of the paper traces the dispersion term back to location theory:
place p facilities so that the sum of their pairwise distances is maximal
(undesirable or competing facilities should be far apart).  This example
places franchises on a map where every candidate site also has an expected
demand (the quality term), and compares:

* pure dispersion (ignore demand entirely),
* pure demand (ignore geography),
* max-sum diversification (Greedy B), which balances both, and
* a district-balanced variant using a partition matroid and local search.

Run:  python examples/facility_placement.py [--quick]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import (
    ZeroFunction,
    Objective,
    greedy_dispersion,
    greedy_diversify,
    local_search_diversify,
    make_geo_instance,
    mmr_select,
)


def describe(name, instance, selected) -> None:
    demand = sum(instance.demand[i] for i in selected)
    districts = Counter(instance.district[i] for i in selected)
    print(f"{name:<26} sites={sorted(selected)}")
    print(f"{'':<26} total demand={demand:.2f}, district spread={dict(districts)}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="use fewer candidate sites"
    )
    parser.add_argument("--sites", type=int, default=None)
    parser.add_argument("--p", type=int, default=6)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    n = args.sites or (25 if args.quick else 80)
    instance = make_geo_instance(n, num_districts=4, tradeoff=0.15, seed=args.seed)
    objective = instance.objective
    print(
        f"{n} candidate sites, selecting p={args.p} facilities, "
        f"lambda={instance.tradeoff}"
    )
    print()

    # Pure dispersion (f ≡ 0): the classical max-sum p-dispersion problem.
    dispersion_only = greedy_dispersion(instance.metric, args.p)
    describe("pure dispersion", instance, dispersion_only.selected)
    print()

    # Pure demand: top-p sites by demand (MMR with theta = 1).
    demand_only = mmr_select(objective, args.p, theta=1.0)
    describe("pure demand (top-p)", instance, demand_only.selected)
    print()

    # Max-sum diversification: Greedy B on demand + spread.
    combined = greedy_diversify(objective, args.p)
    describe("max-sum diversification", instance, combined.selected)
    print()

    # District-balanced variant: at most ceil(p / 4) facilities per district.
    per_district = -(-args.p // 4)
    matroid = instance.district_matroid(per_district)
    balanced = local_search_diversify(objective, matroid)
    describe(f"balanced (≤{per_district}/district)", instance, balanced.selected)
    print()

    pure_dispersion_value = Objective(
        ZeroFunction(n), instance.metric, 1.0
    ).value(dispersion_only.selected)
    print(
        "Dispersion achieved: "
        f"pure-dispersion={pure_dispersion_value:.2f}, "
        f"diversified={combined.dispersion_value:.2f}, "
        f"demand-only={demand_only.dispersion_value:.2f}"
    )


if __name__ == "__main__":
    main()
