#!/usr/bin/env python3
"""Query serving: a prepared corpus behind an async micro-batching server.

A production deployment answers a stream of queries against one fixed
corpus.  The serving tier splits that into two pieces:

* :class:`repro.PreparedCorpus` — pay the per-corpus work once (materialize
  or deliberately stay lazy, hoist modular weights, warm gain-state caches,
  cache restriction views per candidate pool), then solve against it many
  times;
* :class:`repro.Server` — an asyncio front end that coalesces concurrent
  ``submit`` calls into micro-batch windows executed off the event loop,
  with per-request deadlines and disconnect cancellation.

This example prepares a corpus, serves a burst of concurrent clients
(some sharing hot candidate pools, so the restriction cache earns its keep),
shows a per-request deadline expiring into a best-so-far result, and
round-trips the corpus through a snapshot — the warm-restart path a
recovered serving process takes.

Run:  python examples/serving_demo.py [--quick]
"""

from __future__ import annotations

import argparse
import asyncio
import os
import tempfile

import numpy as np

from repro import PreparedCorpus, Server, make_feature_instance


async def serve_burst(corpus: PreparedCorpus, *, clients: int, p: int) -> None:
    rng = np.random.default_rng(7)
    n = corpus.n
    hot_pool = rng.choice(n, size=min(128, n), replace=False).tolist()

    async with Server(corpus, max_batch_size=16, max_wait_s=0.005) as server:

        async def client(index: int):
            # Even clients share one hot pool; odd clients bring their own.
            if index % 2 == 0:
                pool = hot_pool
            else:
                pool = rng.choice(n, size=min(128, n), replace=False).tolist()
            return await server.submit(pool, p=p)

        results = await asyncio.gather(*(client(i) for i in range(clients)))
        stats = server.stats.snapshot()

    print(f"served {len(results)} concurrent clients:")
    print(
        f"  {int(stats['windows'])} windows, mean "
        f"{stats['mean_window_size']:.1f} requests/window, "
        f"{stats['qps']:.0f} QPS, p50 {stats['p50_ms']:.1f} ms, "
        f"p99 {stats['p99_ms']:.1f} ms"
    )
    cache = corpus.cache_info()
    print(f"  restriction cache: {cache['hits']} hits, {cache['misses']} misses")
    sample = results[0]
    print(f"  sample result: {sorted(sample.selected)[:5]}... "
          f"objective={sample.objective_value:.3f}")


async def serve_deadline(corpus: PreparedCorpus, *, p: int) -> None:
    async with Server(corpus) as server:
        result = await server.submit(None, p=p, deadline_s=1e-4)
    interrupted = result.metadata.get("interrupted", False)
    print("a 0.1 ms deadline on a full-universe query:")
    print(
        f"  interrupted={interrupted}, returned {len(result.selected)} of {p} "
        "elements (best-so-far, always feasible)"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a smaller corpus")
    parser.add_argument("--n", type=int, default=None, help="universe size")
    parser.add_argument("--p", type=int, default=8, help="result-set size")
    parser.add_argument("--clients", type=int, default=None, help="burst size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = args.n or (2_000 if args.quick else 50_000)
    clients = args.clients or (8 if args.quick else 32)
    instance = make_feature_instance(n, dimension=8, tradeoff=0.3, seed=args.seed)
    corpus = PreparedCorpus(
        instance.quality,
        instance.metric,
        tradeoff=instance.tradeoff,
        shard_size=None if args.quick else 4096,
    )
    tier = "matrix" if corpus.materialized else "lazy"
    print(f"prepared corpus: n={n}, {tier} tier, sharded={corpus.sharded}")
    print()

    asyncio.run(serve_burst(corpus, clients=clients, p=args.p))
    print()
    asyncio.run(serve_deadline(corpus, p=args.p))
    print()

    # Warm restart: snapshot the prepared corpus, reload it as a recovered
    # process would, and answer the same query on both.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "corpus.pkl")
        corpus.save(path)
        recovered = PreparedCorpus.load(path)
    pool = list(range(min(64, n)))
    before = corpus.solve(pool, p=args.p)
    after = recovered.solve(pool, p=args.p)
    print("snapshot round trip (the serving-process recovery path):")
    print(f"  same selection after reload: {before.selected == after.selected}")


if __name__ == "__main__":
    main()
