#!/usr/bin/env python3
"""Observability: span traces and Prometheus-style metrics for the stack.

Passing ``trace=Trace()`` into :func:`repro.solve` (or a
:class:`repro.DynamicSession`, or a :class:`repro.Server`) records nested
wall-clock spans — restriction, per-shard solves, greedy rounds, WAL
appends, tick repairs — and exports them as Chrome ``trace_event`` JSON
(open the file in ``chrome://tracing`` or https://ui.perfetto.dev).  The
process-wide metrics registry independently accumulates counters and
latency histograms, rendered in Prometheus text format.

This demo:

1. runs a sharded solve with tracing on and prints the per-phase breakdown
   from ``result.metadata["timings"]``;
2. drives a few dynamic ticks through a traced ``DynamicSession`` (showing
   the no-swap certificate hits in the span attributes);
3. exports both traces and re-parses them, validating the Chrome-trace
   schema and parent/child nesting — the same checks CI's smoke job runs;
4. prints an excerpt of the enabled metrics registry.

Run:  python examples/tracing_demo.py [--quick] [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

import numpy as np

from repro import (
    DynamicSession,
    EventBatch,
    Trace,
    WeightIncrease,
    get_registry,
    make_feature_instance,
    solve,
)


def check_chrome_trace(path: str) -> dict:
    """Re-parse an exported trace, asserting the Chrome-trace schema."""
    with open(path, "r", encoding="utf-8") as stream:
        doc = json.load(stream)
    assert set(doc) == {"traceEvents", "displayTimeUnit"}, sorted(doc)
    events = doc["traceEvents"]
    assert events, "trace must contain at least one event"
    ids = set()
    for event in events:
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            assert key in event, f"event missing {key!r}: {event}"
        assert event["ph"] == "X" and event["cat"] == "repro"
        assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        ids.add(event["args"]["span_id"])
    for event in events:
        parent = event["args"]["parent_id"]
        assert parent is None or parent in ids, f"dangling parent {parent}"
    return doc


def solve_demo(out_dir: str, *, quick: bool) -> None:
    n = 5_000 if quick else 200_000
    instance = make_feature_instance(n, dimension=8, seed=0)
    trace = Trace()
    result = solve(
        instance.quality,
        instance.metric,
        tradeoff=instance.tradeoff,
        p=10,
        shards=4 if quick else 16,
        shard_workers=2,
        trace=trace,
    )
    path = os.path.join(out_dir, "solve.trace.json")
    trace.export(path)
    doc = check_chrome_trace(path)

    print(f"sharded solve, n={n}: objective={result.objective_value:.3f}")
    print("  per-phase timings (result.metadata['timings']):")
    for name, seconds in result.metadata["timings"].items():
        print(f"    {name:<14} {seconds * 1000.0:9.2f} ms")
    print(f"  exported {len(doc['traceEvents'])} span events -> {path}")


def dynamic_demo(out_dir: str, *, quick: bool) -> None:
    n = 80 if quick else 400
    rng = np.random.default_rng(1)
    points = rng.normal(size=(n, 4))
    diff = points[:, None, :] - points[None, :, :]
    distances = np.sqrt((diff**2).sum(axis=-1))
    weights = rng.uniform(1.0, 2.0, size=n)

    trace = Trace()
    session = DynamicSession(weights, 8, distances=distances, trace=trace)
    ticks = 6 if quick else 30
    hits = 0
    for tick in range(ticks):
        element = int(rng.integers(n))
        batch = EventBatch.from_perturbations([WeightIncrease(element, 0.05)])
        outcome = session.apply_events(batch)
        if outcome.metadata["certified_stable"]:
            hits += 1
    path = os.path.join(out_dir, "ticks.trace.json")
    trace.export(path)
    doc = check_chrome_trace(path)

    # Validate the tick -> apply -> repair nesting from the export itself.
    events = doc["traceEvents"]
    by_id = {e["args"]["span_id"]: e for e in events}
    repairs = [e for e in events if e["name"] == "repair"]
    assert repairs, "expected repair spans"
    for repair in repairs:
        apply_event = by_id[repair["args"]["parent_id"]]
        assert apply_event["name"] == "apply"
        assert by_id[apply_event["args"]["parent_id"]]["name"] == "tick"

    print(f"dynamic session: {ticks} ticks, certificate hits={hits}")
    print(f"  exported {len(events)} span events -> {path}")
    last = session.engine.history[-1][1] if session.engine.history else None
    if last is not None and "timings" in last.metadata:
        print(f"  last tick timings: {last.metadata['timings']}")


def metrics_demo() -> None:
    lines = get_registry().render().splitlines()
    interesting = [
        line
        for line in lines
        if line.startswith(("# TYPE", "repro_ticks", "repro_solve_total"))
    ]
    print("metrics registry excerpt:")
    for line in interesting[:12]:
        print(f"  {line}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument(
        "--out", default=None, help="directory for the exported traces"
    )
    args = parser.parse_args()

    out_dir = args.out or tempfile.mkdtemp(prefix="repro-traces-")
    os.makedirs(out_dir, exist_ok=True)
    get_registry().enable()

    solve_demo(out_dir, quick=args.quick)
    print()
    dynamic_demo(out_dir, quick=args.quick)
    print()
    metrics_demo()
    print("\nall trace exports re-parsed and schema-checked OK")


if __name__ == "__main__":
    main()
