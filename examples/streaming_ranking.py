#!/usr/bin/env python3
"""Streaming diversification: keep a diverse top-p while documents arrive.

Section 2 of the paper discusses the incremental setting of Minack et al.:
the candidate pool is too large (or arrives too late) to run an offline
algorithm, so a diverse result set must be maintained with one pass and O(p)
memory.  This example streams a LETOR-like document pool in arrival order
through the library's StreamingDiversifier (one swap check per arrival) and
compares the final set against the offline Greedy B on the same data.

Run:  python examples/streaming_ranking.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SyntheticLetorCorpus, greedy_diversify
from repro.core.streaming import StreamingDiversifier


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a smaller pool")
    parser.add_argument("--p", type=int, default=10, help="result-set size to maintain")
    parser.add_argument("--tradeoff", type=float, default=0.2)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    pool_size = 80 if args.quick else 370
    corpus = SyntheticLetorCorpus(
        num_queries=1, docs_per_query=pool_size, seed=args.seed
    )
    query = corpus.query(0)
    objective = query.objective(args.tradeoff)

    arrival_order = [
        int(x) for x in np.random.default_rng(args.seed).permutation(query.n)
    ]
    engine = StreamingDiversifier(objective, p=args.p)

    checkpoints = {max(1, query.n // 4), max(1, query.n // 2), query.n}
    print(f"Streaming {query.n} documents, maintaining a diverse top-{args.p}")
    print()
    for count, element in enumerate(arrival_order, start=1):
        engine.process(element)
        if count in checkpoints:
            print(
                f"after {count:>4} arrivals: value={engine.solution_value:8.3f} "
                f"swaps so far={engine.swaps:3d} current set={sorted(engine.solution)}"
            )

    streaming_result = engine.result()
    offline = greedy_diversify(objective, args.p)
    print()
    print(f"one-pass streaming : {streaming_result.objective_value:.3f} "
          f"({engine.swaps} swaps over {query.n} arrivals)")
    print(f"offline Greedy B   : {offline.objective_value:.3f}")
    print(
        "streaming / offline ratio: "
        f"{streaming_result.objective_value / offline.objective_value:.4f}"
    )
    overlap = len(streaming_result.selected & offline.selected)
    print(f"overlap between the two result sets: {overlap} of {args.p} documents")


if __name__ == "__main__":
    main()
