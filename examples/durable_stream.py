#!/usr/bin/env python3
"""Durability: journaled dynamic sessions that survive a crash.

A ``DynamicSession`` opened with ``durable_dir=`` journals every event batch
to a checksummed write-ahead log *before* applying it, and periodically
rotates an atomic snapshot so the log never grows without bound.  This
example runs the Section 6 perturbation stream through a durable session,
then simulates two crashes:

* a **torn write** — the process dies mid-append, leaving a truncated final
  record.  Recovery detects the bad checksum, warns, drops the torn tail and
  lands on the last fully-journaled tick;
* a **clean crash** — the process dies between ticks.  Recovery replays the
  journal and reconstructs the exact pre-crash state, bit for bit.

Run:  python examples/durable_stream.py [--quick]
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import warnings

import numpy as np

from repro import (
    DurabilityWarning,
    DynamicSession,
    EventBatchBuilder,
    make_synthetic_instance,
)
from repro.testing import tear_wal_tail


def random_tick(rng, n, events=6):
    """One tick of weight/distance resets, as in Section 7.3's MPERTURBATION."""
    builder = EventBatchBuilder()
    while len(builder) < events:
        element = int(rng.integers(0, n))
        if rng.uniform() < 0.5:
            builder.set_weight(element, float(rng.uniform(0.5, 1.5)))
        else:
            other = int(rng.integers(0, n))
            if other != element:
                builder.set_distance(element, other, float(rng.uniform(1.0, 2.0)))
    return builder.build()


def open_session(instance, p, directory, **options):
    return DynamicSession(
        instance.weights,
        p,
        distances=instance.distances,
        tradeoff=instance.tradeoff,
        durable_dir=directory,
        **options,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="fewer ticks / smaller instance"
    )
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--p", type=int, default=5)
    parser.add_argument("--ticks", type=int, default=None)
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args()

    n = args.n or (16 if args.quick else 40)
    ticks = args.ticks or (6 if args.quick else 20)
    instance = make_synthetic_instance(n, seed=args.seed)
    workdir = tempfile.mkdtemp(prefix="repro-durable-")
    directory = os.path.join(workdir, "session")

    try:
        # ------------------------------------------------------------------
        # Journal a stream with fsync="always": every tick is on disk before
        # it is applied, so nothing short of media failure can lose it.
        # ------------------------------------------------------------------
        rng = np.random.default_rng(args.seed + 1)
        session = open_session(instance, args.p, directory, fsync="always")
        print(f"n={n}, p={args.p}, ticks={ticks}, durable_dir={directory}")
        print(
            f"initial solution {sorted(session.solution)} "
            f"value={session.solution_value:.3f}"
        )
        states = []
        for tick in range(1, ticks + 1):
            outcome = session.apply_events(random_tick(rng, n))
            states.append((session.solution, session.solution_value))
            print(
                f"tick {tick:>2}: value={outcome.objective_value:8.3f} "
                f"swaps={outcome.num_swaps} (journaled)"
            )
        session.close()

        # ------------------------------------------------------------------
        # Crash 1: a torn write.  Chop bytes off the final WAL record — the
        # on-disk image a mid-append power cut leaves behind.  Recovery warns,
        # truncates the torn tail, and lands on the previous tick.
        # ------------------------------------------------------------------
        wal_path = os.path.join(directory, "wal.log")
        tear_wal_tail(wal_path, nbytes=7)
        print("\nsimulated crash: tore 7 bytes off the final WAL record")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            recovered = DynamicSession.recover(directory)
        notes = [w for w in caught if issubclass(w.category, DurabilityWarning)]
        print(f"recovery warned: {notes[0].message}" if notes else "no warning?!")
        expect_solution, expect_value = states[-2]
        assert recovered.ticks == ticks - 1
        assert recovered.solution == expect_solution
        assert recovered.solution_value == expect_value
        print(
            f"recovered at tick {recovered.ticks}: solution "
            f"{sorted(recovered.solution)} value={recovered.solution_value:.3f} "
            "(the last fully-journaled state)"
        )

        # ------------------------------------------------------------------
        # Crash 2: die between ticks.  Re-journal the lost tick plus a few
        # more, drop the session without closing it, and recover again — the
        # replayed state matches the pre-crash state exactly.
        # ------------------------------------------------------------------
        for _ in range(3):
            recovered.apply_events(random_tick(rng, n))
        pre_crash = (recovered.ticks, recovered.solution, recovered.solution_value)
        recovered.durable.sync()  # flushed, but never close()d: a hard crash
        del recovered
        print(
            f"\nsimulated crash: process killed after tick {pre_crash[0]} "
            "(no clean shutdown)"
        )
        replayed = DynamicSession.recover(directory)
        assert (replayed.ticks, replayed.solution, replayed.solution_value) == (
            pre_crash
        )
        print(
            f"recovered at tick {replayed.ticks}: solution "
            f"{sorted(replayed.solution)} value={replayed.solution_value:.3f} "
            "(bit-identical replay)"
        )

        # ------------------------------------------------------------------
        # Compaction: with snapshot_every=, the session rotates an atomic
        # snapshot and truncates the log, so recovery cost stays bounded by
        # the snapshot interval instead of the session's lifetime.
        # ------------------------------------------------------------------
        replayed.close()
        compacting = DynamicSession.recover(directory, snapshot_every=4)
        for _ in range(8):
            compacting.apply_events(random_tick(rng, n))
        compacting.durable.sync()
        from repro.durability import read_wal

        wal_records, _ = read_wal(compacting.durable.wal_path)
        print(
            f"\ncompaction: after 8 more ticks with snapshot_every=4 the log "
            f"holds {len(wal_records)} record(s); snapshots "
            f"{sorted(os.listdir(os.path.join(directory, 'snapshots')))}"
        )
        compacting.close()
        final = DynamicSession.recover(directory)
        assert final.ticks == compacting.ticks
        assert final.solution == compacting.solution
        print(
            f"final recovery from snapshot + short log: tick {final.ticks}, "
            f"solution {sorted(final.solution)} value={final.solution_value:.3f}"
        )
        final.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
