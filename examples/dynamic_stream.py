#!/usr/bin/env python3
"""Dynamic updates: maintaining a diverse result set while the data changes.

Section 6 of the paper studies the setting where element weights and pairwise
distances change over time and the solution must be repaired with as few
swaps as possible.  This example seeds a solution with Greedy B (a
2-approximation), then streams random perturbations through the
DynamicDiversifier, applying the oblivious single-swap update rule after each
one, and reports:

* how often the update rule actually swapped,
* the objective trajectory, and
* (for the default small instance) the exact approximation ratio after every
  step — the quantity Figure 1 plots, which stays far below the provable 3.

Run:  python examples/dynamic_stream.py [--quick]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    DistanceDecrease,
    DistanceIncrease,
    DynamicDiversifier,
    WeightDecrease,
    WeightIncrease,
    make_synthetic_instance,
)


def random_perturbation(engine, rng):
    """Reset a random weight or a random distance, as in Section 7.3's MPERTURBATION."""
    if rng.uniform() < 0.5:
        element = int(rng.integers(0, engine.n))
        target = float(rng.uniform(0.0, 1.0))
        delta = target - engine.weight(element)
        if delta > 1e-9:
            return WeightIncrease(element, delta)
        if delta < -1e-9:
            return WeightDecrease(element, -delta)
        return None
    u, v = map(int, rng.choice(engine.n, size=2, replace=False))
    target = float(rng.uniform(1.0, 2.0))
    delta = target - engine.distance(u, v)
    if delta > 1e-9:
        return DistanceIncrease(u, v, delta)
    if delta < -1e-9:
        return DistanceDecrease(u, v, -delta)
    return None


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="fewer steps / smaller instance"
    )
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--p", type=int, default=5)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--seed", type=int, default=17)
    args = parser.parse_args()

    n = args.n or (12 if args.quick else 30)
    steps = args.steps or (10 if args.quick else 40)
    track_ratio = n <= 20  # exact optimum is recomputed per step; keep it small

    instance = make_synthetic_instance(n, seed=args.seed)
    engine = DynamicDiversifier(
        instance.weights, instance.distances, args.p, tradeoff=instance.tradeoff
    )
    rng = np.random.default_rng(args.seed + 1)

    print(f"n={n}, p={args.p}, lambda={instance.tradeoff}, steps={steps}")
    print(
        f"initial solution {sorted(engine.solution)} "
        f"value={engine.solution_value:.3f}"
    )
    print()

    swaps = 0
    worst_ratio = 1.0
    for step in range(1, steps + 1):
        perturbation = random_perturbation(engine, rng)
        if perturbation is None:
            continue
        outcome = engine.apply(perturbation, updates=1)
        swaps += outcome.num_swaps
        line = (
            f"step {step:>3}: {type(perturbation).__name__:<16} "
            f"value={outcome.objective_value:8.3f} swapped={'yes' if outcome.changed else 'no '}"
        )
        if track_ratio:
            ratio = engine.approximation_ratio()
            worst_ratio = max(worst_ratio, ratio)
            line += f" ratio={ratio:.4f}"
        print(line)

    print()
    print(f"total swaps performed: {swaps} over {steps} perturbations")
    if track_ratio:
        print(
            f"worst observed approximation ratio: {worst_ratio:.4f} "
            "(the paper proves ≤ 3 and observes ≈ 1.11 at worst)"
        )
    print(f"final solution {sorted(engine.solution)} value={engine.solution_value:.3f}")

    # ------------------------------------------------------------------
    # The same stream, batched: collect whole ticks of events and apply
    # them in one vectorized pass through the DynamicSession facade.
    # ------------------------------------------------------------------
    from repro import DynamicSession, EventBatchBuilder

    session = DynamicSession(
        instance.weights, args.p, distances=instance.distances,
        tradeoff=instance.tradeoff,
    )
    rng = np.random.default_rng(args.seed + 1)
    tick_size = 8
    ticks = max(steps // tick_size, 1)
    print()
    print(f"batched replay: {ticks} ticks x {tick_size} events")
    for tick in range(1, ticks + 1):
        builder = EventBatchBuilder()
        while len(builder) < tick_size:
            element = int(rng.integers(0, session.n))
            if rng.uniform() < 0.5:
                builder.set_weight(element, float(rng.uniform(0.0, 1.0)))
            else:
                other = int(rng.integers(0, session.n))
                if other != element:
                    builder.set_distance(element, other, float(rng.uniform(1.0, 2.0)))
        outcome = session.apply_events(builder.build())
        certified = outcome.metadata.get("certified_stable", False)
        print(
            f"tick {tick:>2}: value={outcome.objective_value:8.3f} "
            f"swaps={outcome.num_swaps} certified={'yes' if certified else 'no'}"
        )
    print(
        f"batched final solution {sorted(session.solution)} "
        f"value={session.solution_value:.3f}"
    )


if __name__ == "__main__":
    main()
