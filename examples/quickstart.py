#!/usr/bin/env python3
"""Quickstart: max-sum diversification on the paper's synthetic workload.

Generates a synthetic instance (weights in [0, 1], distances in [1, 2],
λ = 0.2 — exactly Section 7.1 of the paper), then runs and compares:

* Greedy B  — the paper's non-oblivious greedy (Theorem 1, 2-approximation),
* Greedy A  — the Gollapudi–Sharma baseline,
* LS        — Greedy B followed by time-budgeted single-swap local search,
* OPT       — the exact optimum (branch and bound), feasible at this size.

Run:  python examples/quickstart.py [--quick]
"""

from __future__ import annotations

import argparse

from repro import (
    exact_diversify,
    gollapudi_sharma_greedy,
    greedy_diversify,
    make_synthetic_instance,
    refine_with_local_search,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a smaller instance")
    parser.add_argument("--n", type=int, default=None, help="universe size")
    parser.add_argument("--p", type=int, default=None, help="result-set size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = args.n or (20 if args.quick else 50)
    p = args.p or (4 if args.quick else 7)

    instance = make_synthetic_instance(n, seed=args.seed)
    objective = instance.objective
    print(f"Synthetic instance: n={n}, p={p}, lambda={instance.tradeoff}")
    print()

    greedy_b = greedy_diversify(objective, p)
    greedy_a = gollapudi_sharma_greedy(objective, p)
    refined = refine_with_local_search(objective, greedy_b, p=p)
    optimum = exact_diversify(objective, p)

    print(
        f"{'algorithm':<12} {'objective':>10} {'quality':>9} "
        f"{'dispersion':>11} {'time(ms)':>9}"
    )
    for result in (greedy_a, greedy_b, refined, optimum):
        print(
            f"{result.algorithm:<12} {result.objective_value:>10.4f} "
            f"{result.quality_value:>9.4f} {result.dispersion_value:>11.4f} "
            f"{result.elapsed_ms:>9.2f}"
        )
    print()
    print(f"Greedy B selected elements: {sorted(greedy_b.selected)}")
    print(f"Optimal  selected elements: {sorted(optimum.selected)}")
    print(
        "Observed approximation factors: "
        f"GreedyA={greedy_a.approximation_factor(optimum.objective_value):.4f}, "
        f"GreedyB={greedy_b.approximation_factor(optimum.objective_value):.4f}, "
        f"LS={refined.approximation_factor(optimum.objective_value):.4f} "
        "(Theorem 1 guarantees at most 2.0)"
    )


if __name__ == "__main__":
    main()
