#!/usr/bin/env python3
"""Diversified document search over a LETOR-like corpus (Section 7.2 scenario).

A query returns a pool of documents, each with an integral relevance grade
(0–5) and a feature vector.  Pure relevance ranking returns many documents
about the same dominant aspect; max-sum diversification trades a little
relevance for results that cover more aspects.

The example additionally shows the submodular-quality extension the paper's
Theorem 1 enables: replacing the modular relevance sum with a weighted
coverage function over the documents' latent aspects, so a second document on
an already-covered aspect contributes nothing to quality (but may still help
diversity).

Run:  python examples/document_search.py [--quick]
"""

from __future__ import annotations

import argparse
from collections import Counter

from repro import (
    CoverageFunction,
    Objective,
    SyntheticLetorCorpus,
    greedy_diversify,
    mmr_select,
)


def show_selection(title, query, result) -> None:
    aspects = Counter(query.documents[i].aspect for i in result.selected)
    grades = [query.documents[i].relevance for i in sorted(result.selected)]
    print(f"{title:<28} docs={sorted(result.selected)}")
    print(
        f"{'':<28} relevance grades={grades}, aspects covered={len(aspects)}, "
        f"objective={result.objective_value:.3f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a smaller pool")
    parser.add_argument("--p", type=int, default=8, help="number of results to return")
    parser.add_argument("--tradeoff", type=float, default=0.2, help="lambda")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    pool_size = 60 if args.quick else 370
    corpus = SyntheticLetorCorpus(
        num_queries=1, docs_per_query=pool_size, seed=args.seed
    )
    query = corpus.query(0).top_documents(50 if args.quick else 200)
    print(f"Query pool: {query.n} documents, returning p={args.p} results")
    print()

    # 1. Pure relevance: top-p by grade (theta = 1 MMR degenerates to this).
    objective = query.objective(args.tradeoff)
    relevance_only = mmr_select(objective, args.p, theta=1.0)
    show_selection("relevance-only (top-p)", query, relevance_only)
    print()

    # 2. Max-sum diversification with the modular relevance quality (the
    #    paper's Section 7.2 setting), solved with Greedy B.
    diversified = greedy_diversify(objective, args.p)
    show_selection("max-sum diversification", query, diversified)
    print()

    # 3. Submodular quality: aspect coverage weighted by relevance mass.
    aspect_topics = [[doc.aspect] for doc in query.documents]
    aspect_mass: dict = {}
    for doc in query.documents:
        aspect_mass[doc.aspect] = aspect_mass.get(doc.aspect, 0.0) + doc.relevance
    coverage = CoverageFunction(aspect_topics, aspect_mass)
    submodular_objective = Objective(coverage, query.metric(), args.tradeoff)
    covered = greedy_diversify(submodular_objective, args.p)
    show_selection("submodular aspect coverage", query, covered)
    print()

    aspects_relevance = len(
        {query.documents[i].aspect for i in relevance_only.selected}
    )
    aspects_diverse = len({query.documents[i].aspect for i in diversified.selected})
    aspects_covered = len({query.documents[i].aspect for i in covered.selected})
    print(
        "Aspect coverage comparison: "
        f"relevance-only={aspects_relevance}, diversified={aspects_diverse}, "
        f"submodular={aspects_covered}"
    )


if __name__ == "__main__":
    main()
