#!/usr/bin/env python3
"""Sharded core-set solving: diversify a universe too big for O(n²) memory.

Every solve path in this library used to assume a materialized distance
matrix, which caps n around the tens of thousands (an n=200000 matrix would
be 320 GB).  The sharded core-set pipeline lifts the cap: the universe is
partitioned into shards, each shard is solved as an independent sub-instance
on lazy feature-vector state, and the final algorithm runs on the small
union of per-shard winners — with indices lifted back to the full universe.

This example builds a large Euclidean corpus, solves it with
``solve(..., shards=...)``, compares the result against the global
(unsharded) greedy, and shows the shard-layout metadata the result carries.

Run:  python examples/sharded_coreset.py [--quick]
"""

from __future__ import annotations

import argparse
import time

from repro import make_feature_instance, solve, solve_sharded


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a smaller corpus")
    parser.add_argument("--n", type=int, default=None, help="universe size")
    parser.add_argument("--p", type=int, default=10, help="result-set size")
    parser.add_argument("--shards", type=int, default=None, help="shard count")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = args.n or (3_000 if args.quick else 100_000)
    shards = args.shards or (6 if args.quick else 64)
    instance = make_feature_instance(n, dimension=8, tradeoff=0.3, seed=args.seed)
    quality, metric = instance.quality, instance.metric
    print(f"corpus: n={n} points in 8 dimensions, selecting p={args.p}, λ=0.3")
    print(f"full distance matrix would hold {n * n:,} entries — never built")
    print()

    started = time.perf_counter()
    sharded = solve(quality, metric, tradeoff=0.3, p=args.p, shards=shards)
    sharded_seconds = time.perf_counter() - started
    info = sharded.metadata["sharding"]
    print(f"sharded solve ({shards} shards):")
    print(
        f"  objective={sharded.objective_value:.3f} "
        f"in {sharded_seconds * 1e3:.0f} ms"
    )
    print(
        f"  core-set: {info['core_size']} of {n} elements "
        f"(per-shard winners: {info['per_shard_p']}, "
        f"shard algorithm: {info['shard_algorithm']})"
    )
    print()

    # The global greedy still runs at this scale (its tracker only needs
    # metric rows), giving a parity baseline for the core-set objective.
    started = time.perf_counter()
    baseline = solve(quality, metric, tradeoff=0.3, p=args.p)
    baseline_seconds = time.perf_counter() - started
    parity = sharded.objective_value / baseline.objective_value
    print("global greedy baseline:")
    print(
        f"  objective={baseline.objective_value:.3f} "
        f"in {baseline_seconds * 1e3:.0f} ms"
    )
    print(f"  core-set parity: {parity:.4f} (composable core-sets predict ≈ 1)")
    print()

    # A richer final stage is affordable on the small core-set: refine the
    # union with local search instead of greedy.
    refined = solve_sharded(
        quality, metric, tradeoff=0.3, p=args.p, shards=shards,
        algorithm="local_search",
    )
    print("local-search final stage on the same core-set:")
    print(f"  objective={refined.objective_value:.3f} ({refined.iterations} swaps)")


if __name__ == "__main__":
    main()
