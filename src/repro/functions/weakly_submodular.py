"""Dispersion as a set function, and a submodularity-ratio diagnostic.

Footnote 1 of the paper points out that the max-sum dispersion measure
``d(S)`` is *not* submodular (it is supermodular) yet still well-behaved
enough — later formalized by Borodin, Le and Ye as "weak submodularity" —
for greedy and local search to keep constant factors on the combined
objective.  This module provides the two pieces needed to study that
behaviour empirically:

* :class:`DispersionFunction` — ``g(S) = Σ_{ {u,v} ⊆ S } d(u, v)`` wrapped as
  a :class:`~repro.functions.base.SetFunction` (monotone, normalized,
  supermodular), so the dispersion measure can be passed anywhere a set
  function is expected and analysed with the same verification tooling as the
  quality functions.
* :func:`submodularity_ratio` — the classical Das–Kempe-style diagnostic
  ``γ = min over disjoint (S, T) of  Σ_{t ∈ T} g_t(S) / [g(S ∪ T) − g(S)]``.
  Submodular functions have γ ≥ 1; modular functions have γ = 1 exactly; the
  dispersion function has γ = 0 when empty bases are allowed (the joint gain
  of a pair from ``S = ∅`` is positive while both individual marginals are
  zero), which is precisely why the paper needs a bespoke analysis instead of
  Nemhauser–Wolsey–Fisher.  The ``min_base_size`` parameter lets callers
  exclude tiny bases and observe how quickly the ratio recovers.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction
from repro.metrics.aggregates import set_distance
from repro.metrics.base import Metric
from repro.utils.rng import SeedLike, make_rng


class DispersionFunction(SetFunction):
    """The dispersion measure ``g(S) = Σ_{ {u,v} ⊆ S } d(u, v)`` as a set function.

    Monotone and normalized but *supermodular*: marginal gains grow with the
    set.  It is the term of the diversification objective that breaks plain
    submodular-maximization machinery, which is what the paper's Theorems 1
    and 2 work around.
    """

    def __init__(self, metric: Metric) -> None:
        self._metric = metric

    @property
    def n(self) -> int:
        return self._metric.n

    @property
    def metric(self) -> Metric:
        """The underlying metric."""
        return self._metric

    def value(self, subset: Iterable[Element]) -> float:
        return set_distance(self._metric, subset)

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        return float(sum(self._metric.distance(element, v) for v in members))

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        """Batch marginals as a submatrix row-sum when the metric is matrix-backed."""
        matrix = self._metric.matrix_view()
        if matrix is None:
            return super().gains(candidates, state)
        idx = np.asarray(candidates, dtype=int)
        if not state.members or idx.size == 0:
            return np.zeros(idx.size, dtype=float)
        out = matrix[np.ix_(idx, state.member_indices())].sum(axis=1)
        return state.mask_members(idx, out)

    @property
    def declares_submodular(self) -> bool:
        return False


def _ratio_for_pair(
    function: SetFunction, base: frozenset, extension: Tuple[Element, ...]
) -> Optional[float]:
    """Return ``Σ_t g_t(S) / (g(S+T) − g(S))``, or ``None`` when the joint gain is ~0."""
    joint = function.value(base | set(extension)) - function.value(base)
    if joint <= 1e-12:
        return None
    individual = sum(function.marginal(t, base) for t in extension)
    return individual / joint


def submodularity_ratio(
    function: SetFunction,
    *,
    min_base_size: int = 0,
    max_extension: int = 4,
    exhaustive_limit: int = 8,
    samples: int = 300,
    seed: SeedLike = None,
) -> float:
    """Worst observed ratio ``Σ_t g_t(S) / [g(S ∪ T) − g(S)]`` over disjoint (S, T).

    Parameters
    ----------
    function:
        The set function to probe.
    min_base_size:
        Only consider bases ``S`` with at least this many elements (0 includes
        the empty set).
    max_extension:
        Largest extension ``|T|`` considered (extensions have at least 2
        elements; single-element extensions always have ratio 1).
    exhaustive_limit:
        Exhaustive enumeration is used for ``n`` up to this value; random
        sampling otherwise.
    samples, seed:
        Sampling budget and seed for the large-``n`` mode.

    Returns
    -------
    float
        The smallest ratio found (``inf`` if no pair had a positive joint gain).
    """
    if min_base_size < 0:
        raise InvalidParameterError("min_base_size must be non-negative")
    if max_extension < 2:
        raise InvalidParameterError("max_extension must be at least 2")
    n = function.n
    worst = float("inf")
    if n <= exhaustive_limit:
        universe = range(n)
        for base_size in range(min_base_size, max(n - 1, 0)):
            for base in combinations(universe, base_size):
                base_set = frozenset(base)
                rest = [u for u in universe if u not in base_set]
                for ext_size in range(2, min(max_extension, len(rest)) + 1):
                    for extension in combinations(rest, ext_size):
                        ratio = _ratio_for_pair(function, base_set, extension)
                        if ratio is not None:
                            worst = min(worst, ratio)
        return worst
    rng = make_rng(seed)
    for _ in range(samples):
        upper = n - 2
        if upper <= min_base_size:
            break
        base_size = int(rng.integers(min_base_size, upper))
        base = frozenset(map(int, rng.choice(n, size=base_size, replace=False)))
        rest = [u for u in range(n) if u not in base]
        if len(rest) < 2:
            continue
        ext_size = int(rng.integers(2, min(max_extension, len(rest)) + 1))
        extension = tuple(map(int, rng.choice(rest, size=ext_size, replace=False)))
        ratio = _ratio_for_pair(function, base, extension)
        if ratio is not None:
            worst = min(worst, ratio)
    return worst
