"""Modular (linear) quality functions.

The modular case ``f(S) = Σ_{u ∈ S} w(u)`` is the setting of the original
Gollapudi–Sharma diversification problem, of the paper's experiments
(Section 7), and of the dynamic-update theory (Section 6), where the weights
``w(u)`` change over time.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction
from repro.utils.validation import check_candidate_pool, check_finite_array


class ModularFunction(SetFunction):
    """``f(S) = Σ_{u ∈ S} w(u)`` for non-negative weights ``w``.

    Weights are mutable through :meth:`set_weight` to support the
    dynamic-update engine (Type I / Type II perturbations).
    """

    def __init__(self, weights: Union[np.ndarray, Iterable[float]]) -> None:
        array = np.array(
            list(weights) if not isinstance(weights, np.ndarray) else weights,
            dtype=float,
        )
        if array.ndim != 1:
            raise InvalidParameterError("weights must be a 1-D array")
        # NaN passes ``array < 0`` silently; reject it (and ±inf) up front.
        check_finite_array("weights", array)
        if np.any(array < 0):
            raise InvalidParameterError("weights must be non-negative")
        self._weights = array
        self._weights_view = array.view()
        self._weights_view.flags.writeable = False

    # ------------------------------------------------------------------
    # SetFunction interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._weights.shape[0]

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        return float(self._weights[idx].sum())

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        return float(self._weights[element])

    @property
    def is_modular(self) -> bool:
        return True

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        """Batch gains are a weight-vector slice (members zeroed)."""
        idx = np.asarray(candidates, dtype=int)
        return state.mask_members(idx, self._weights[idx])

    @property
    def parallel_safe(self) -> bool:
        return True

    # ------------------------------------------------------------------
    # Weight access / mutation (dynamic updates)
    # ------------------------------------------------------------------
    @property
    def weights(self) -> np.ndarray:
        """The weight vector (a copy; use :meth:`set_weight` to mutate)."""
        return self._weights.copy()

    def weights_view(self) -> np.ndarray:
        """A read-only, copy-free view of the weight vector.

        The view reflects later :meth:`set_weight` mutations, so the
        vectorized kernels can hold onto it across dynamic updates.
        """
        return self._weights_view

    def weight(self, element: Element) -> float:
        """Return ``w(element)``."""
        return float(self._weights[element])

    def set_weight(self, element: Element, value: float) -> None:
        """Set ``w(element) = value`` (must stay non-negative)."""
        if value < 0:
            raise InvalidParameterError("weights must be non-negative")
        self._weights[element] = value

    def update_weights(
        self,
        elements: Union[np.ndarray, Iterable[Element]],
        values: Union[np.ndarray, Iterable[float]],
    ) -> None:
        """Vectorized batch of :meth:`set_weight` assignments.

        With a repeated element the *last* assignment wins (NumPy fancy-index
        semantics), matching a sequential loop of ``set_weight`` calls — the
        contract the batched event tick relies on.
        """
        idx = np.asarray(elements, dtype=int)
        vals = np.asarray(values, dtype=float)
        if idx.shape != vals.shape:
            raise InvalidParameterError(
                "elements and values must have matching shapes"
            )
        check_finite_array("weights", vals)
        if np.any(vals < 0):
            raise InvalidParameterError("weights must be non-negative")
        self._weights[idx] = vals

    @classmethod
    def _from_storage(cls, array: np.ndarray) -> "ModularFunction":
        """Wrap an externally owned weight array without copying.

        The dynamic engine's growable-storage path: the caller owns a
        capacity-doubled buffer and hands an active-prefix view here, so
        weight events mutate the storage directly and this function (and
        every kernel holding :meth:`weights_view`) observes them with no
        copies.  The caller is responsible for keeping entries finite and
        non-negative — exactly the :meth:`set_weight` invariants.
        """
        instance = object.__new__(cls)
        instance._weights = array
        view = array.view()
        view.flags.writeable = False
        instance._weights_view = view
        return instance

    def copy(self) -> "ModularFunction":
        """Return an independent copy (used by the dynamic engine)."""
        return ModularFunction(self._weights.copy())

    def restrict(self, elements: Iterable[Element]) -> "ModularFunction":
        """Restriction of a modular function is a weight-vector slice (O(k))."""
        idx = check_candidate_pool(elements, self.n)
        return ModularFunction(self._weights[idx])


class ZeroFunction(SetFunction):
    """The identically-zero function.

    With ``f ≡ 0`` the diversification objective degenerates to pure
    max-sum dispersion, which is how Corollary 1 recovers the Ravi et al.
    greedy dispersion guarantee from Theorem 1.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        self._n = int(n)
        self._weights_view = np.zeros(self._n)
        self._weights_view.flags.writeable = False

    @property
    def n(self) -> int:
        return self._n

    def value(self, subset: Iterable[Element]) -> float:
        return 0.0

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        return 0.0

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        return np.zeros(np.asarray(candidates, dtype=int).size, dtype=float)

    def weights_view(self) -> np.ndarray:
        """The (all-zero) weight vector as a read-only view."""
        return self._weights_view

    @property
    def is_modular(self) -> bool:
        return True

    @property
    def parallel_safe(self) -> bool:
        return True

    def restrict(self, elements: Iterable[Element]) -> "ZeroFunction":
        """Restriction of the zero function is the zero function on the pool."""
        return ZeroFunction(check_candidate_pool(elements, self.n).size)
