"""Facility-location quality functions.

``f(S) = Σ_{i ∈ U} max_{j ∈ S} sim(i, j)`` — every ground element is "served"
by its most similar selected element.  Monotone and submodular; the portfolio
and facility examples use it as the quality term while the dispersion term
keeps the selected facilities (or stocks) spread out.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction

#: Column-chunk width for batched gains, bounding the ``n × |C|`` temporary.
_GAINS_CHUNK = 512


class _FacilityGainState(GainState):
    """Running coverage vector ``coverage[i] = max_{j ∈ S} sim(i, j)``."""

    __slots__ = ("coverage",)


class FacilityLocationFunction(SetFunction):
    """Facility-location coverage over a non-negative similarity matrix."""

    def __init__(self, similarity: np.ndarray) -> None:
        matrix = np.asarray(similarity, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("similarity must be a square matrix")
        if np.any(matrix < 0):
            raise InvalidParameterError("similarities must be non-negative")
        self._similarity = matrix

    @property
    def n(self) -> int:
        return self._similarity.shape[0]

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        return float(self._similarity[:, idx].max(axis=1).sum())

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        if not members:
            current = np.zeros(self.n)
        else:
            idx = np.fromiter(members, dtype=int)
            current = self._similarity[:, idx].max(axis=1)
        improved = np.maximum(current, self._similarity[:, element])
        return float((improved - current).sum())

    # ------------------------------------------------------------------
    # Batched marginal-gain protocol
    # ------------------------------------------------------------------
    def gain_state(self, subset=()) -> _FacilityGainState:
        """O(n·|S|) state build: the coverage vector of the current set."""
        state = _FacilityGainState(subset)
        if state.members:
            idx = state.member_indices()
            state.coverage = self._similarity[:, idx].max(axis=1)
        else:
            state.coverage = np.zeros(self.n)
        return state

    def gains(self, candidates: Candidates, state: _FacilityGainState) -> np.ndarray:
        """Batch gains as one ``np.maximum`` + column sums per chunk."""
        idx = np.asarray(candidates, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        coverage = state.coverage
        base = coverage.sum()
        out = np.empty(idx.size, dtype=float)
        for start in range(0, idx.size, _GAINS_CHUNK):
            chunk = idx[start : start + _GAINS_CHUNK]
            improved = np.maximum(self._similarity[:, chunk], coverage[:, None])
            out[start : start + _GAINS_CHUNK] = improved.sum(axis=0) - base
        return state.mask_members(idx, out)

    def push(self, state: _FacilityGainState, element: Element) -> _FacilityGainState:
        """O(n) incremental update of the coverage vector."""
        super().push(state, element)
        np.maximum(state.coverage, self._similarity[:, element], out=state.coverage)
        return state

    @property
    def parallel_safe(self) -> bool:
        return True

    @classmethod
    def from_distances(cls, distances: np.ndarray, *, scale: float | None = None
                       ) -> "FacilityLocationFunction":
        """Convert a distance matrix into similarities via ``max_d - d``."""
        matrix = np.asarray(distances, dtype=float)
        top = float(matrix.max()) if scale is None else float(scale)
        return cls(np.maximum(top - matrix, 0.0))
