"""Facility-location quality functions.

``f(S) = Σ_{i ∈ U} max_{j ∈ S} sim(i, j)`` — every ground element is "served"
by its most similar selected element.  Monotone and submodular; the portfolio
and facility examples use it as the quality term while the dispersion term
keeps the selected facilities (or stocks) spread out.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction


class FacilityLocationFunction(SetFunction):
    """Facility-location coverage over a non-negative similarity matrix."""

    def __init__(self, similarity: np.ndarray) -> None:
        matrix = np.asarray(similarity, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("similarity must be a square matrix")
        if np.any(matrix < 0):
            raise InvalidParameterError("similarities must be non-negative")
        self._similarity = matrix

    @property
    def n(self) -> int:
        return self._similarity.shape[0]

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        return float(self._similarity[:, idx].max(axis=1).sum())

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        if not members:
            current = np.zeros(self.n)
        else:
            idx = np.fromiter(members, dtype=int)
            current = self._similarity[:, idx].max(axis=1)
        improved = np.maximum(current, self._similarity[:, element])
        return float((improved - current).sum())

    @classmethod
    def from_distances(cls, distances: np.ndarray, *, scale: float | None = None
                       ) -> "FacilityLocationFunction":
        """Convert a distance matrix into similarities via ``max_d - d``."""
        matrix = np.asarray(distances, dtype=float)
        top = float(matrix.max()) if scale is None else float(scale)
        return cls(np.maximum(top - matrix, 0.0))
