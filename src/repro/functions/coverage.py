"""Weighted coverage functions.

``f(S) = Σ_{topic t covered by S} weight(t)`` — the canonical monotone
submodular family.  The document-search example uses it to reward covering
many query aspects, the scenario the paper's introduction motivates
(different users expect different facets in the top results).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence, Set

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction

#: Largest ``n × num_topics`` incidence matrix (in entries) the batched-gains
#: path will materialize; bigger instances use the per-candidate index path.
_INCIDENCE_LIMIT = 64_000_000


class _CoverageGainState(GainState):
    """Boolean mask over dense topic ids: ``covered[t]`` iff some member has t."""

    __slots__ = ("covered",)


class CoverageFunction(SetFunction):
    """Weighted set coverage.

    Parameters
    ----------
    element_topics:
        ``element_topics[u]`` is the collection of topic identifiers element
        ``u`` covers.
    topic_weights:
        Optional mapping from topic identifier to a non-negative weight.
        Topics absent from the mapping default to weight 1.
    """

    def __init__(
        self,
        element_topics: Sequence[Iterable[int]],
        topic_weights: Mapping[int, float] | None = None,
    ) -> None:
        self._topics = [frozenset(topics) for topics in element_topics]
        weights: Dict[int, float] = dict(topic_weights or {})
        for value in weights.values():
            if value < 0:
                raise InvalidParameterError("topic weights must be non-negative")
        self._weights = weights
        # Dense re-indexing of the (arbitrary) topic identifiers, backing the
        # batched-gains path: topic id -> position in [0, T), per-topic weight
        # array, and per-element dense-index arrays.
        # First-seen dedupe, not sorted(): topic ids are arbitrary hashables
        # and need not be mutually orderable.  Gains are weight sums, so the
        # internal index assignment order never affects results.
        topic_ids = list(
            dict.fromkeys(t for topics in self._topics for t in topics)
        )
        topic_index = {t: i for i, t in enumerate(topic_ids)}
        self._topic_weight_array = np.array(
            [self._weight(t) for t in topic_ids], dtype=float
        )
        self._element_topic_idx: List[np.ndarray] = [
            np.fromiter(
                sorted(topic_index[t] for t in topics), dtype=int, count=len(topics)
            )
            for topics in self._topics
        ]
        self._num_topic_ids = len(topic_ids)
        # Dense element×topic incidence (capped so pathological topic
        # universes do not explode memory; ``None`` beyond the cap and the
        # per-candidate index path serves gains instead).  Built eagerly so
        # ``gains`` is a pure read — the ``parallel_safe`` contract.
        if self.n * self._num_topic_ids <= _INCIDENCE_LIMIT:
            incidence = np.zeros((self.n, self._num_topic_ids), dtype=bool)
            for element, topic_idx in enumerate(self._element_topic_idx):
                incidence[element, topic_idx] = True
            self._incidence: np.ndarray | None = incidence
        else:
            self._incidence = None

    @property
    def n(self) -> int:
        return len(self._topics)

    def topics_of(self, element: Element) -> frozenset:
        """Return the topics covered by ``element``."""
        return self._topics[element]

    def _weight(self, topic: int) -> float:
        return self._weights.get(topic, 1.0)

    def covered_topics(self, subset: Iterable[Element]) -> Set[int]:
        """Return the union of topics covered by the subset."""
        covered: Set[int] = set()
        for element in self._as_set(subset):
            covered |= self._topics[element]
        return covered

    def value(self, subset: Iterable[Element]) -> float:
        return float(sum(self._weight(t) for t in self.covered_topics(subset)))

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        covered = self.covered_topics(members)
        gained = self._topics[element] - covered
        return float(sum(self._weight(t) for t in gained))

    # ------------------------------------------------------------------
    # Batched marginal-gain protocol
    # ------------------------------------------------------------------
    def gain_state(self, subset=()) -> _CoverageGainState:
        """O(Σ|topics|) state build: the covered-topic mask of the subset."""
        state = _CoverageGainState(subset)
        covered = np.zeros(self._num_topic_ids, dtype=bool)
        for element in state.members:
            covered[self._element_topic_idx[element]] = True
        state.covered = covered
        return state

    def gains(self, candidates: Candidates, state: _CoverageGainState) -> np.ndarray:
        """Batch gains: uncovered-incidence × weights (one masked matvec)."""
        idx = np.asarray(candidates, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        incidence = self._incidence
        if incidence is not None:
            fresh = incidence[idx] & ~state.covered[None, :]
            return fresh.astype(float) @ self._topic_weight_array
        out = np.empty(idx.size, dtype=float)
        weights, covered = self._topic_weight_array, state.covered
        for i, u in enumerate(idx):
            topic_idx = self._element_topic_idx[u]
            out[i] = weights[topic_idx[~covered[topic_idx]]].sum()
        return out

    def push(self, state: _CoverageGainState, element: Element) -> _CoverageGainState:
        """O(|topics(element)|) incremental update of the covered mask."""
        super().push(state, element)
        state.covered[self._element_topic_idx[element]] = True
        return state

    @property
    def parallel_safe(self) -> bool:
        return True

    @classmethod
    def random(
        cls,
        n: int,
        num_topics: int,
        *,
        topics_per_element: int = 3,
        seed=None,
    ) -> "CoverageFunction":
        """Generate a random coverage instance (used by tests and benches)."""
        from repro.utils.rng import make_rng

        if n < 0 or num_topics <= 0 or topics_per_element <= 0:
            raise InvalidParameterError("invalid coverage generator parameters")
        rng = make_rng(seed)
        element_topics = [
            rng.choice(
                num_topics, size=min(topics_per_element, num_topics), replace=False
            )
            for _ in range(n)
        ]
        weights = {
            t: float(w) for t, w in enumerate(rng.uniform(0.5, 1.5, size=num_topics))
        }
        return cls([list(map(int, topics)) for topics in element_topics], weights)
