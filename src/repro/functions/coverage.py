"""Weighted coverage functions.

``f(S) = Σ_{topic t covered by S} weight(t)`` — the canonical monotone
submodular family.  The document-search example uses it to reward covering
many query aspects, the scenario the paper's introduction motivates
(different users expect different facets in the top results).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set


from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction


class CoverageFunction(SetFunction):
    """Weighted set coverage.

    Parameters
    ----------
    element_topics:
        ``element_topics[u]`` is the collection of topic identifiers element
        ``u`` covers.
    topic_weights:
        Optional mapping from topic identifier to a non-negative weight.
        Topics absent from the mapping default to weight 1.
    """

    def __init__(
        self,
        element_topics: Sequence[Iterable[int]],
        topic_weights: Mapping[int, float] | None = None,
    ) -> None:
        self._topics = [frozenset(topics) for topics in element_topics]
        weights: Dict[int, float] = dict(topic_weights or {})
        for value in weights.values():
            if value < 0:
                raise InvalidParameterError("topic weights must be non-negative")
        self._weights = weights

    @property
    def n(self) -> int:
        return len(self._topics)

    def topics_of(self, element: Element) -> frozenset:
        """Return the topics covered by ``element``."""
        return self._topics[element]

    def _weight(self, topic: int) -> float:
        return self._weights.get(topic, 1.0)

    def covered_topics(self, subset: Iterable[Element]) -> Set[int]:
        """Return the union of topics covered by the subset."""
        covered: Set[int] = set()
        for element in self._as_set(subset):
            covered |= self._topics[element]
        return covered

    def value(self, subset: Iterable[Element]) -> float:
        return float(sum(self._weight(t) for t in self.covered_topics(subset)))

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        covered = self.covered_topics(members)
        gained = self._topics[element] - covered
        return float(sum(self._weight(t) for t in gained))

    @classmethod
    def random(
        cls,
        n: int,
        num_topics: int,
        *,
        topics_per_element: int = 3,
        seed=None,
    ) -> "CoverageFunction":
        """Generate a random coverage instance (used by tests and benches)."""
        from repro.utils.rng import make_rng

        if n < 0 or num_topics <= 0 or topics_per_element <= 0:
            raise InvalidParameterError("invalid coverage generator parameters")
        rng = make_rng(seed)
        element_topics = [
            rng.choice(num_topics, size=min(topics_per_element, num_topics), replace=False)
            for _ in range(n)
        ]
        weights = {t: float(w) for t, w in enumerate(rng.uniform(0.5, 1.5, size=num_topics))}
        return cls([list(map(int, topics)) for topics in element_topics], weights)
