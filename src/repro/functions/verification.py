"""Verification utilities for set functions.

Exact (exponential) checks over small ground sets and sampled checks over
large ones, used by the test suite's property tests and available to users
who plug in their own quality functions.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

from repro.exceptions import (
    InvalidParameterError,
    NotMonotoneError,
    NotSubmodularError,
    SetFunctionError,
)
from repro.functions.base import SetFunction
from repro.utils.rng import SeedLike, make_rng

#: Numerical tolerance for all comparisons in this module.
DEFAULT_TOLERANCE = 1e-9


def _all_subsets(n: int, max_size: Optional[int] = None) -> Iterable[frozenset]:
    limit = n if max_size is None else min(n, max_size)
    for size in range(limit + 1):
        for combo in combinations(range(n), size):
            yield frozenset(combo)


def check_normalized(function: SetFunction, *, tolerance: float = DEFAULT_TOLERANCE) -> None:
    """Raise unless ``f(∅) == 0``."""
    empty_value = function.value(frozenset())
    if abs(empty_value) > tolerance:
        raise SetFunctionError(f"function is not normalized: f(∅) = {empty_value}")


def is_monotone(
    function: SetFunction,
    *,
    exhaustive_limit: int = 12,
    samples: int = 200,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: SeedLike = None,
) -> bool:
    """Check ``f(S) <= f(T)`` whenever ``S ⊆ T``.

    Uses the equivalent marginal characterization ``f_u(S) >= 0``: exhaustive
    for ``n <= exhaustive_limit``, sampled otherwise.
    """
    n = function.n
    if n <= exhaustive_limit:
        for subset in _all_subsets(n):
            for u in range(n):
                if u in subset:
                    continue
                if function.marginal(u, subset) < -tolerance:
                    return False
        return True
    rng = make_rng(seed)
    for _ in range(samples):
        size = int(rng.integers(0, n))
        subset = frozenset(map(int, rng.choice(n, size=size, replace=False)))
        u = int(rng.integers(0, n))
        if u in subset:
            continue
        if function.marginal(u, subset) < -tolerance:
            return False
    return True


def is_submodular(
    function: SetFunction,
    *,
    exhaustive_limit: int = 10,
    samples: int = 200,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: SeedLike = None,
) -> bool:
    """Check decreasing marginal gains: ``f_u(T) <= f_u(S)`` for ``S ⊆ T``.

    Exhaustive over all nested pairs for small ``n``; sampled otherwise.
    """
    n = function.n
    if n <= exhaustive_limit:
        for small in _all_subsets(n):
            for extra in _all_subsets(n):
                large = small | extra
                for u in range(n):
                    if u in large:
                        continue
                    gain_small = function.marginal(u, small)
                    gain_large = function.marginal(u, large)
                    if gain_large > gain_small + tolerance:
                        return False
        return True
    rng = make_rng(seed)
    for _ in range(samples):
        size_small = int(rng.integers(0, n))
        small = frozenset(map(int, rng.choice(n, size=size_small, replace=False)))
        remaining = [v for v in range(n) if v not in small]
        if not remaining:
            continue
        size_extra = int(rng.integers(0, len(remaining) + 1))
        extra = frozenset(
            map(int, rng.choice(remaining, size=size_extra, replace=False))
        )
        large = small | extra
        candidates = [v for v in range(n) if v not in large]
        if not candidates:
            continue
        u = int(rng.choice(candidates))
        if function.marginal(u, large) > function.marginal(u, small) + tolerance:
            return False
    return True


def check_monotone(function: SetFunction, **kwargs) -> None:
    """Raise :class:`NotMonotoneError` when a monotonicity violation is found."""
    if not is_monotone(function, **kwargs):
        raise NotMonotoneError(f"{type(function).__name__} violates monotonicity")


def check_submodular(function: SetFunction, **kwargs) -> None:
    """Raise :class:`NotSubmodularError` when a submodularity violation is found."""
    if not is_submodular(function, **kwargs):
        raise NotSubmodularError(f"{type(function).__name__} violates submodularity")


def estimate_curvature(
    function: SetFunction,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """Estimate the total curvature ``c = 1 - min_u f_u(U - u) / f_u(∅)``.

    Curvature 0 means modular; curvature 1 means some element's marginal
    vanishes entirely once the rest of the universe is selected.  O(n) value
    oracle calls with the full-set baseline, so suitable for moderate ``n``.
    """
    n = function.n
    if n == 0:
        return 0.0
    universe = frozenset(range(n))
    worst_ratio = 1.0
    found = False
    for u in range(n):
        singleton_gain = function.marginal(u, frozenset())
        if singleton_gain <= tolerance:
            continue
        rest_gain = function.marginal(u, universe - {u})
        worst_ratio = min(worst_ratio, rest_gain / singleton_gain)
        found = True
    if not found:
        return 0.0
    return float(max(0.0, 1.0 - worst_ratio))


def marginal_violations(
    function: SetFunction,
    *,
    max_violations: int = 5,
    tolerance: float = DEFAULT_TOLERANCE,
    exhaustive_limit: int = 10,
) -> List[Tuple[frozenset, frozenset, int, float]]:
    """Enumerate submodularity violations ``(S, T, u, gap)`` on a small ground set."""
    n = function.n
    if n > exhaustive_limit:
        raise InvalidParameterError(
            f"marginal_violations is exhaustive; n={n} exceeds limit {exhaustive_limit}"
        )
    violations: List[Tuple[frozenset, frozenset, int, float]] = []
    for small in _all_subsets(n):
        for extra in _all_subsets(n):
            large = small | extra
            for u in range(n):
                if u in large:
                    continue
                gap = function.marginal(u, large) - function.marginal(u, small)
                if gap > tolerance:
                    violations.append((small, large, u, float(gap)))
                    if len(violations) >= max_violations:
                        return violations
    return violations
