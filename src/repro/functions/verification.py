"""Verification utilities for set functions.

Exact (exponential) checks over small ground sets and sampled checks over
large ones, used by the test suite's property tests and available to users
who plug in their own quality functions.

The checkers evaluate marginals through the batched marginal-gain protocol
(:meth:`~repro.functions.base.SetFunction.gain_state` /
:meth:`~repro.functions.base.SetFunction.gains`): one state per inspected
subset answers the marginals of *every* candidate in a single batch, so for
the built-in families the exhaustive checks cost one state build + one array
operation per subset instead of one scratch oracle evaluation per
(subset, candidate) pair.  Functions without a native protocol fall back to
the generic per-candidate loop and behave exactly as before.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import (
    InvalidParameterError,
    NotMonotoneError,
    NotSubmodularError,
    SetFunctionError,
)
from repro.functions.base import SetFunction
from repro.utils.rng import SeedLike, make_rng

#: Numerical tolerance for all comparisons in this module.
DEFAULT_TOLERANCE = 1e-9


def _all_subsets(n: int, max_size: Optional[int] = None) -> Iterable[frozenset]:
    limit = n if max_size is None else min(n, max_size)
    for size in range(limit + 1):
        for combo in combinations(range(n), size):
            yield frozenset(combo)


def _outside(n: int, subset: frozenset) -> np.ndarray:
    """Candidates not in ``subset``, ascending (the batched-gains order)."""
    return np.array([u for u in range(n) if u not in subset], dtype=int)


def check_normalized(
    function: SetFunction, *, tolerance: float = DEFAULT_TOLERANCE
) -> None:
    """Raise unless ``f(∅) == 0``."""
    empty_value = function.value(frozenset())
    if abs(empty_value) > tolerance:
        raise SetFunctionError(f"function is not normalized: f(∅) = {empty_value}")


def is_monotone(
    function: SetFunction,
    *,
    exhaustive_limit: int = 12,
    samples: int = 200,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: SeedLike = None,
) -> bool:
    """Check ``f(S) <= f(T)`` whenever ``S ⊆ T``.

    Uses the equivalent marginal characterization ``f_u(S) >= 0``: exhaustive
    for ``n <= exhaustive_limit``, sampled otherwise.
    """
    n = function.n
    if n <= exhaustive_limit:
        for subset in _all_subsets(n):
            candidates = _outside(n, subset)
            if candidates.size == 0:
                continue
            state = function.gain_state(subset)
            if function.gains(candidates, state).min() < -tolerance:
                return False
        return True
    rng = make_rng(seed)
    for _ in range(samples):
        size = int(rng.integers(0, n))
        subset = frozenset(map(int, rng.choice(n, size=size, replace=False)))
        u = int(rng.integers(0, n))
        if u in subset:
            continue
        # One candidate per sample: a scratch marginal beats building a
        # whole gain state (which can cost more than the single evaluation
        # for state-heavy families like log-det).
        if function.marginal(u, subset) < -tolerance:
            return False
    return True


def is_submodular(
    function: SetFunction,
    *,
    exhaustive_limit: int = 10,
    samples: int = 200,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: SeedLike = None,
) -> bool:
    """Check decreasing marginal gains: ``f_u(T) <= f_u(S)`` for ``S ⊆ T``.

    Exhaustive over all nested pairs for small ``n``; sampled otherwise.
    """
    n = function.n
    if n <= exhaustive_limit:
        for small in _all_subsets(n):
            state_small = function.gain_state(small)
            gains_small_cache: Optional[np.ndarray] = None
            for extra in _all_subsets(n):
                large = small | extra
                candidates = _outside(n, large)
                if candidates.size == 0:
                    continue
                if gains_small_cache is None:
                    # One batch against S answers every nested comparison;
                    # candidates outside T index into it by position.
                    gains_small_cache = np.full(n, np.nan)
                    outside_small = _outside(n, small)
                    gains_small_cache[outside_small] = function.gains(
                        outside_small, state_small
                    )
                gains_large = function.gains(candidates, function.gain_state(large))
                if (gains_large > gains_small_cache[candidates] + tolerance).any():
                    return False
        return True
    rng = make_rng(seed)
    for _ in range(samples):
        size_small = int(rng.integers(0, n))
        small = frozenset(map(int, rng.choice(n, size=size_small, replace=False)))
        remaining = [v for v in range(n) if v not in small]
        if not remaining:
            continue
        size_extra = int(rng.integers(0, len(remaining) + 1))
        extra = frozenset(
            map(int, rng.choice(remaining, size=size_extra, replace=False))
        )
        large = small | extra
        candidates = [v for v in range(n) if v not in large]
        if not candidates:
            continue
        u = int(rng.choice(candidates))
        # Single-candidate samples stay on the scratch marginal (see
        # is_monotone); only the exhaustive branch amortizes state builds.
        if function.marginal(u, large) > function.marginal(u, small) + tolerance:
            return False
    return True


def check_monotone(function: SetFunction, **kwargs) -> None:
    """Raise :class:`NotMonotoneError` when a monotonicity violation is found."""
    if not is_monotone(function, **kwargs):
        raise NotMonotoneError(f"{type(function).__name__} violates monotonicity")


def check_submodular(function: SetFunction, **kwargs) -> None:
    """Raise :class:`NotSubmodularError` when a submodularity violation is found."""
    if not is_submodular(function, **kwargs):
        raise NotSubmodularError(f"{type(function).__name__} violates submodularity")


def estimate_curvature(
    function: SetFunction,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> float:
    """Estimate the total curvature ``c = 1 - min_u f_u(U - u) / f_u(∅)``.

    Curvature 0 means modular; curvature 1 means some element's marginal
    vanishes entirely once the rest of the universe is selected.  O(n) value
    oracle calls with the full-set baseline, so suitable for moderate ``n``.
    """
    n = function.n
    if n == 0:
        return 0.0
    universe = frozenset(range(n))
    singleton_gains = function.gains(np.arange(n), function.gain_state(()))
    worst_ratio = 1.0
    found = False
    for u in range(n):
        singleton_gain = float(singleton_gains[u])
        if singleton_gain <= tolerance:
            continue
        rest_gain = float(
            function.gains((u,), function.gain_state(universe - {u}))[0]
        )
        worst_ratio = min(worst_ratio, rest_gain / singleton_gain)
        found = True
    if not found:
        return 0.0
    return float(max(0.0, 1.0 - worst_ratio))


def marginal_violations(
    function: SetFunction,
    *,
    max_violations: int = 5,
    tolerance: float = DEFAULT_TOLERANCE,
    exhaustive_limit: int = 10,
) -> List[Tuple[frozenset, frozenset, int, float]]:
    """Enumerate submodularity violations ``(S, T, u, gap)`` on a small ground set."""
    n = function.n
    if n > exhaustive_limit:
        raise InvalidParameterError(
            f"marginal_violations is exhaustive; n={n} exceeds limit {exhaustive_limit}"
        )
    violations: List[Tuple[frozenset, frozenset, int, float]] = []
    for small in _all_subsets(n):
        state_small = function.gain_state(small)
        for extra in _all_subsets(n):
            large = small | extra
            candidates = _outside(n, large)
            if candidates.size == 0:
                continue
            gaps = function.gains(
                candidates, function.gain_state(large)
            ) - function.gains(candidates, state_small)
            for position in np.nonzero(gaps > tolerance)[0]:
                violations.append(
                    (small, large, int(candidates[position]), float(gaps[position]))
                )
                if len(violations) >= max_violations:
                    return violations
    return violations
