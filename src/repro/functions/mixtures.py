"""Compositions of set functions.

Non-negative linear combinations of monotone submodular functions are again
monotone submodular, so mixtures let callers build richer quality models
(e.g. coverage + facility location, as in the Lin–Bilmes summarization
objective) while staying inside the class Theorem 1 covers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction


class _CompositeGainState(GainState):
    """Child gain states, one per component, kept in component order."""

    __slots__ = ("children",)


class ScaledFunction(SetFunction):
    """``g(S) = scale · f(S)`` for a non-negative scale."""

    def __init__(self, function: SetFunction, scale: float) -> None:
        if scale < 0:
            raise InvalidParameterError("scale must be non-negative")
        self._function = function
        self._scale = float(scale)

    @property
    def n(self) -> int:
        return self._function.n

    @property
    def scale(self) -> float:
        """The multiplicative factor."""
        return self._scale

    def value(self, subset: Iterable[Element]) -> float:
        return self._scale * self._function.value(subset)

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        return self._scale * self._function.marginal(element, subset)

    def gain_state(self, subset=()) -> _CompositeGainState:
        state = _CompositeGainState(subset)
        state.children = [self._function.gain_state(state.members)]
        return state

    def gains(self, candidates: Candidates, state: _CompositeGainState) -> np.ndarray:
        return self._scale * self._function.gains(candidates, state.children[0])

    def push(self, state: _CompositeGainState, element: Element) -> _CompositeGainState:
        super().push(state, element)
        self._function.push(state.children[0], element)
        return state

    @property
    def is_modular(self) -> bool:
        return self._function.is_modular

    @property
    def declares_submodular(self) -> bool:
        return self._function.declares_submodular

    @property
    def declares_monotone(self) -> bool:
        return self._function.declares_monotone

    @property
    def parallel_safe(self) -> bool:
        return self._function.parallel_safe


class MixtureFunction(SetFunction):
    """``g(S) = Σ_k weight_k · f_k(S)`` for non-negative weights.

    All components must share the same ground-set size.
    """

    def __init__(
        self,
        functions: Sequence[SetFunction],
        weights: Sequence[float] | None = None,
    ) -> None:
        if not functions:
            raise InvalidParameterError("a mixture needs at least one component")
        sizes = {f.n for f in functions}
        if len(sizes) != 1:
            raise InvalidParameterError(
                f"all components must share one ground-set size, got {sorted(sizes)}"
            )
        if weights is None:
            weights = [1.0] * len(functions)
        if len(weights) != len(functions):
            raise InvalidParameterError("weights must match the number of components")
        if any(w < 0 for w in weights):
            raise InvalidParameterError("mixture weights must be non-negative")
        self._functions = list(functions)
        self._weights = [float(w) for w in weights]

    @property
    def n(self) -> int:
        return self._functions[0].n

    @property
    def components(self) -> Sequence[SetFunction]:
        """The component functions."""
        return tuple(self._functions)

    @property
    def weights(self) -> Sequence[float]:
        """The mixture weights."""
        return tuple(self._weights)

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        return float(
            sum(w * f.value(members) for w, f in zip(self._weights, self._functions))
        )

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        return float(
            sum(
                w * f.marginal(element, members)
                for w, f in zip(self._weights, self._functions)
            )
        )

    def gain_state(self, subset=()) -> _CompositeGainState:
        state = _CompositeGainState(subset)
        children: List[GainState] = [
            f.gain_state(state.members) for f in self._functions
        ]
        state.children = children
        return state

    def gains(self, candidates: Candidates, state: _CompositeGainState) -> np.ndarray:
        idx = np.asarray(candidates, dtype=int)
        out = np.zeros(idx.size, dtype=float)
        for weight, function, child in zip(
            self._weights, self._functions, state.children
        ):
            out += weight * function.gains(idx, child)
        return out

    def push(self, state: _CompositeGainState, element: Element) -> _CompositeGainState:
        super().push(state, element)
        for function, child in zip(self._functions, state.children):
            function.push(child, element)
        return state

    @property
    def is_modular(self) -> bool:
        return all(f.is_modular for f in self._functions)

    @property
    def declares_submodular(self) -> bool:
        return all(f.declares_submodular for f in self._functions)

    @property
    def declares_monotone(self) -> bool:
        return all(f.declares_monotone for f in self._functions)

    @property
    def parallel_safe(self) -> bool:
        return all(f.parallel_safe for f in self._functions)
