"""Abstract set-valuation function.

Algorithms access quality functions through :meth:`SetFunction.value` and
:meth:`SetFunction.marginal` — exactly the value oracle the paper assumes
("access to an oracle for finding an element maximizing f(S+u) - f(S)") —
plus the *stateful batched marginal-gain protocol* the solvers' fast paths
use: :meth:`SetFunction.gain_state` builds incremental state for a subset,
:meth:`SetFunction.gains` evaluates the marginals of a whole candidate batch
against that state at once, and :meth:`SetFunction.push` grows the state by
one selected element without recomputing it from scratch.  The base-class
protocol falls back to per-candidate :meth:`marginal` loops, so any oracle
function keeps working; the built-in families override it with vectorized
incremental implementations (see the README's "Submodular fast path").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Optional, Sequence, Union

import numpy as np

from repro._types import Element


class GainState:
    """Mutable incremental state for the batched marginal-gain protocol.

    The base state only tracks the member set; family-specific subclasses add
    the vectors that make :meth:`SetFunction.gains` a batch array operation
    (a facility-location coverage vector, a coverage bitmask, a growing
    Cholesky factor, ...).  States are owned by exactly one selection run:
    they are mutated in place by :meth:`SetFunction.push` and must not be
    shared across concurrent solves.
    """

    __slots__ = ("members",)

    def __init__(self, subset: Iterable[Element] = ()) -> None:
        self.members = set(subset)

    def member_indices(self) -> np.ndarray:
        """The current members as an (unordered) integer index array."""
        return np.fromiter(self.members, dtype=int, count=len(self.members))

    def mask_members(self, candidates: np.ndarray, gains: np.ndarray) -> np.ndarray:
        """Zero the gains of candidates already in the set (in place).

        Marginals of members are 0 by definition of set union; incremental
        formulas that would report something else route through this helper
        so every implementation agrees with :meth:`SetFunction.marginal`.
        """
        if not self.members or candidates.size == 0:
            return gains
        if candidates.size <= 16:
            # Small batches (the CELF re-evaluation path) are dominated by
            # call overhead; python set membership beats np.isin there.
            members = self.members
            for i, u in enumerate(candidates.tolist()):
                if u in members:
                    gains[i] = 0.0
            return gains
        gains[np.isin(candidates, self.member_indices())] = 0.0
        return gains


#: What :meth:`SetFunction.gains` accepts as a candidate batch.
Candidates = Union[Sequence[Element], np.ndarray]


class SetFunction(ABC):
    """A normalized set function ``f : 2^U -> R`` over ``U = {0, ..., n-1}``.

    Subclasses implement :meth:`value`; the default :meth:`marginal` is the
    two-evaluation difference, which concrete families override when a faster
    incremental formula exists.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of elements in the ground set."""

    @abstractmethod
    def value(self, subset: Iterable[Element]) -> float:
        """Return ``f(S)``.  Must satisfy ``f(∅) == 0`` (normalization)."""

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        """Return ``f_u(S) = f(S + u) - f(S)``.

        ``element`` may already belong to ``subset``, in which case the
        marginal is zero by definition of set union.
        """
        base = self._as_set(subset)
        if element in base:
            return 0.0
        return self.value(base | {element}) - self.value(base)

    # ------------------------------------------------------------------
    # Stateful batched marginal gains (the solvers' fast-path protocol)
    # ------------------------------------------------------------------
    def gain_state(self, subset: Iterable[Element] = ()) -> GainState:
        """Build incremental marginal-gain state for ``subset``.

        The returned state answers :meth:`gains` queries for the *current*
        set and is grown one element at a time with :meth:`push`.  The base
        implementation stores only the member set (so :meth:`gains` falls
        back to a :meth:`marginal` loop); concrete families override it to
        precompute the vectors their batched gains read.
        """
        return GainState(subset)

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        """Return ``[f_u(S) for u in candidates]`` against ``state``'s set.

        Candidates already in the set get 0.0, matching :meth:`marginal`.
        The base implementation loops :meth:`marginal`; overrides compute the
        whole batch as one array operation (``O(n·|C|)`` or better instead of
        ``|C|`` scratch evaluations).  The result is a fresh array the caller
        owns, aligned with ``candidates``.
        """
        idx = np.asarray(candidates, dtype=int)
        members = frozenset(state.members)
        out = np.empty(idx.size, dtype=float)
        for i, u in enumerate(idx):
            out[i] = self.marginal(int(u), members)
        return out

    def push(self, state: GainState, element: Element) -> GainState:
        """Add ``element`` to the state's set, updating it incrementally.

        Mutates ``state`` in place and returns it.  Raises if the element is
        already a member (mirroring the distance tracker's contract), so the
        fast paths cannot silently double-push.  Overrides must call
        ``super().push(state, element)`` first to keep the member set in sync.
        """
        if element in state.members:
            from repro.exceptions import InvalidParameterError

            raise InvalidParameterError(
                f"element {element} is already in the gain state"
            )
        state.members.add(element)
        return state

    # ------------------------------------------------------------------
    # Declared structure (used by solvers to pick valid algorithms and by
    # the verification utilities to know what to check).
    # ------------------------------------------------------------------
    @property
    def is_modular(self) -> bool:
        """Whether the function is modular (linear).  Default: ``False``."""
        return False

    @property
    def declares_submodular(self) -> bool:
        """Whether the family is submodular by construction.  Default: ``True``."""
        return True

    @property
    def declares_monotone(self) -> bool:
        """Whether the family is monotone by construction.  Default: ``True``."""
        return True

    @property
    def parallel_safe(self) -> bool:
        """Whether concurrent reads from multiple threads are safe.

        Mirrors :attr:`repro.metrics.base.Metric.parallel_safe`: ``True`` only
        when every oracle and gains evaluation is a pure read of immutable
        NumPy state, which is what the thread-pooled shard map in
        :mod:`repro.core.sharding` requires.  Arbitrary user oracles make no
        such promise, so the base default is ``False``.
        """
        return False

    def weights_view(self) -> Optional[np.ndarray]:
        """A read-only, copy-free weight vector for modular families, or ``None``.

        This is the quality-side fast-path hook, the counterpart of
        :meth:`repro.metrics.base.Metric.matrix_view`: when a modular family
        returns an array here, the kernels and the sharded solver consume the
        weights directly instead of calling the value oracle per element.
        The view must reflect later weight mutations (the dynamic engine
        holds onto it across perturbations).  Non-modular families — and
        modular ones without an array representation — return ``None``.
        """
        return None

    # ------------------------------------------------------------------
    # Restriction (sub-universe views)
    # ------------------------------------------------------------------
    def restrict(self, elements: Iterable[Element]) -> "SetFunction":
        """Return ``f`` restricted to ``elements``, re-indexed from 0.

        Local element ``i`` of the restriction is the ``i``-th entry of
        ``elements`` (deduplicated, first-seen order).  The default wraps
        this function in an index-mapping view that delegates every oracle
        call; families with a direct representation override it (modular
        functions slice their weight vector).
        """
        from repro.functions.restricted import RestrictedSetFunction

        return RestrictedSetFunction(self, elements)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _as_set(subset: Iterable[Element]) -> FrozenSet[Element]:
        if isinstance(subset, frozenset):
            return subset
        return frozenset(subset)

    def elements(self) -> range:
        """Return the range of valid element indices."""
        return range(self.n)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"
