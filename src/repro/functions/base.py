"""Abstract set-valuation function.

Algorithms access quality functions only through :meth:`SetFunction.value`
and :meth:`SetFunction.marginal` — exactly the value oracle the paper assumes
("access to an oracle for finding an element maximizing f(S+u) - f(S)").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable

from repro._types import Element


class SetFunction(ABC):
    """A normalized set function ``f : 2^U -> R`` over ``U = {0, ..., n-1}``.

    Subclasses implement :meth:`value`; the default :meth:`marginal` is the
    two-evaluation difference, which concrete families override when a faster
    incremental formula exists.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of elements in the ground set."""

    @abstractmethod
    def value(self, subset: Iterable[Element]) -> float:
        """Return ``f(S)``.  Must satisfy ``f(∅) == 0`` (normalization)."""

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        """Return ``f_u(S) = f(S + u) - f(S)``.

        ``element`` may already belong to ``subset``, in which case the
        marginal is zero by definition of set union.
        """
        base = self._as_set(subset)
        if element in base:
            return 0.0
        return self.value(base | {element}) - self.value(base)

    # ------------------------------------------------------------------
    # Declared structure (used by solvers to pick valid algorithms and by
    # the verification utilities to know what to check).
    # ------------------------------------------------------------------
    @property
    def is_modular(self) -> bool:
        """Whether the function is modular (linear).  Default: ``False``."""
        return False

    @property
    def declares_submodular(self) -> bool:
        """Whether the family is submodular by construction.  Default: ``True``."""
        return True

    @property
    def declares_monotone(self) -> bool:
        """Whether the family is monotone by construction.  Default: ``True``."""
        return True

    # ------------------------------------------------------------------
    # Restriction (sub-universe views)
    # ------------------------------------------------------------------
    def restrict(self, elements: Iterable[Element]) -> "SetFunction":
        """Return ``f`` restricted to ``elements``, re-indexed from 0.

        Local element ``i`` of the restriction is the ``i``-th entry of
        ``elements`` (deduplicated, first-seen order).  The default wraps
        this function in an index-mapping view that delegates every oracle
        call; families with a direct representation override it (modular
        functions slice their weight vector).
        """
        from repro.functions.restricted import RestrictedSetFunction

        return RestrictedSetFunction(self, elements)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _as_set(subset: Iterable[Element]) -> FrozenSet[Element]:
        if isinstance(subset, frozenset):
            return subset
        return frozenset(subset)

    def elements(self) -> range:
        """Return the range of valid element indices."""
        return range(self.n)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"
