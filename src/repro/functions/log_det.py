"""Log-determinant (informativeness) quality functions.

``f(S) = log det(I + K_{S,S})`` for a positive semi-definite kernel ``K`` is
monotone and submodular; it rewards selecting elements whose kernel rows are
close to orthogonal and is a standard informativeness objective in sensor
placement and determinantal-point-process style selection.  Included as an
additional genuinely submodular workload for the submodular-quality benches.

The batched marginal-gain protocol keeps an incrementally grown Cholesky
factor ``L`` of ``(1 + jitter)·I + K_{S,S}`` together with the residual
vector ``r[u] = (1 + jitter) + K_uu − ‖L⁻¹ K_{S,u}‖²`` over the whole
universe, so a batch of marginals is one ``log`` over a slice
(``f_u(S) = log r[u]``) and a push is one O(|S|·n) rank-1 update — no
per-candidate ``slogdet`` anywhere on the fast path.
"""

from __future__ import annotations

import math
import warnings

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError, NumericalDegradationWarning
from repro.functions.base import Candidates, GainState, SetFunction

#: Slack added to the diagonal before the PSD Cholesky probe, matching the
#: old ``eigvalsh`` check's tolerance (minimum eigenvalue ≥ -1e-6).
_PSD_TOLERANCE = 1e-6

#: Factor by which the state's jitter is escalated when the incremental
#: Cholesky hits a non-positive pivot, and how many escalating rebuilds are
#: attempted before the state gives up its fast path entirely.
_JITTER_ESCALATION = 100.0
_MAX_JITTER_REBUILDS = 3
_MIN_JITTER = 1e-12


class _LogDetGainState(GainState):
    """Growing Cholesky rows ``L⁻¹ K_{S,·}`` plus the universe residual vector.

    Carries its own ``jitter`` (escalated on numerical breakdown, see
    :meth:`LogDeterminantFunction.push`), a ``rebuilds`` counter bounding the
    escalation, and a ``degraded`` flag: once set, the Cholesky fast path is
    abandoned for this state and :meth:`LogDeterminantFunction.gains` serves
    batches through the generic value-oracle marginal loop instead.
    """

    __slots__ = ("rows", "residual", "jitter", "degraded", "rebuilds")


class LogDeterminantFunction(SetFunction):
    """``f(S) = log det(I_{|S|} + K[S, S])`` for a PSD kernel ``K``.

    Parameters
    ----------
    kernel:
        Symmetric positive semi-definite ``n × n`` kernel matrix.
    jitter:
        Diagonal regularizer added inside the determinant for numerical
        stability.
    validate:
        Whether to verify positive semi-definiteness at construction.  The
        check is one Cholesky factorization of ``K + 1e-6·I`` — an order of
        magnitude cheaper than the eigendecomposition it replaced, and it
        fails fast on indefinite input.  Pass ``False`` to skip it entirely
        when the kernel is PSD by construction (e.g. a Gram matrix).
    """

    def __init__(
        self, kernel: np.ndarray, *, jitter: float = 1e-10, validate: bool = True
    ) -> None:
        matrix = np.asarray(kernel, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("kernel must be a square matrix")
        if not np.allclose(matrix, matrix.T, atol=1e-8):
            raise InvalidParameterError("kernel must be symmetric")
        if validate and matrix.shape[0]:
            shifted = matrix + _PSD_TOLERANCE * np.eye(matrix.shape[0])
            try:
                np.linalg.cholesky(shifted)
            except np.linalg.LinAlgError as error:
                raise InvalidParameterError(
                    "kernel must be positive semi-definite"
                ) from error
        self._kernel = matrix
        self._jitter = float(jitter)

    @property
    def n(self) -> int:
        return self._kernel.shape[0]

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        block = self._kernel[np.ix_(idx, idx)]
        gram = np.eye(len(idx)) * (1.0 + self._jitter) + block
        sign, logdet = np.linalg.slogdet(gram)
        if sign <= 0:
            # A PSD kernel plus the identity is positive definite on paper,
            # but a near-PSD kernel (accumulated round-off, a borderline
            # Gram matrix) can push slogdet over the edge.  Clamp the
            # spectrum rather than failing the solve.
            warnings.warn(
                "log-det block is numerically non-positive-definite; "
                "clamping its eigenvalues",
                NumericalDegradationWarning,
                stacklevel=2,
            )
            eigenvalues = np.linalg.eigvalsh(gram)
            clamped = np.maximum(eigenvalues, np.finfo(float).tiny)
            return float(np.sum(np.log(clamped)))
        return float(logdet)

    # ------------------------------------------------------------------
    # Batched marginal-gain protocol
    # ------------------------------------------------------------------
    def gain_state(self, subset=()) -> _LogDetGainState:
        """Build the Cholesky/residual state by pushing the subset in order."""
        state = _LogDetGainState(())
        state.rows = []
        state.jitter = self._jitter
        state.degraded = False
        state.rebuilds = 0
        state.residual = self._kernel.diagonal() + (1.0 + state.jitter)
        for element in sorted(set(subset)):
            self.push(state, element)
        return state

    def gains(self, candidates: Candidates, state: _LogDetGainState) -> np.ndarray:
        """Batch marginals as ``log`` of a residual slice — no ``slogdet``."""
        if state.degraded:
            # Cholesky state is gone; serve the batch through the generic
            # value-oracle marginal loop (slow but always defined).
            return SetFunction.gains(self, candidates, state)
        idx = np.asarray(candidates, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        residual = np.maximum(state.residual[idx], np.finfo(float).tiny)
        return state.mask_members(idx, np.log(residual))

    def _factor(
        self, members: List[Element], jitter: float
    ) -> Optional[Tuple[List[np.ndarray], np.ndarray]]:
        """Factor ``members`` from scratch at ``jitter``; ``None`` on breakdown."""
        rows: List[np.ndarray] = []
        residual = self._kernel.diagonal() + (1.0 + jitter)
        for element in members:
            pivot_squared = float(residual[element])
            if not pivot_squared > 0.0:
                return None
            projection = self._kernel[element].astype(float, copy=True)
            for row in rows:
                projection -= row[element] * row
            row = projection / math.sqrt(pivot_squared)
            rows.append(row)
            residual = residual - row * row
        return rows, residual

    def _recover(self, state: _LogDetGainState, element: Element) -> None:
        """Escalate jitter and rebuild, or degrade to the oracle gain path.

        Called when a push hits a non-positive pivot.  Each rebuild multiplies
        the state's jitter by ``_JITTER_ESCALATION`` and refactors the member
        set from scratch; after ``_MAX_JITTER_REBUILDS`` failed escalations
        the state flags itself ``degraded`` and drops its Cholesky arrays —
        subsequent :meth:`gains` calls fall back to the generic marginal loop
        and :meth:`push` only tracks membership.  Either way a
        :class:`~repro.exceptions.NumericalDegradationWarning` is issued and
        the solve continues.
        """
        members = sorted(state.members)
        while state.rebuilds < _MAX_JITTER_REBUILDS:
            state.rebuilds += 1
            state.jitter = max(state.jitter, _MIN_JITTER) * _JITTER_ESCALATION
            factored = self._factor(members, state.jitter)
            if factored is not None:
                state.rows, state.residual = factored
                warnings.warn(
                    f"log-det Cholesky hit a non-positive pivot at element "
                    f"{element}; rebuilt with jitter escalated to "
                    f"{state.jitter:.3g}",
                    NumericalDegradationWarning,
                    stacklevel=3,
                )
                return
        state.degraded = True
        state.rows = []
        state.residual = None
        warnings.warn(
            f"log-det Cholesky state could not be stabilized after "
            f"{state.rebuilds} jitter escalations (element {element}); "
            "falling back to value-oracle marginal gains",
            NumericalDegradationWarning,
            stacklevel=3,
        )

    def push(self, state: _LogDetGainState, element: Element) -> _LogDetGainState:
        """O(|S|·n) rank-1 growth of the Cholesky factor and residuals.

        A non-positive pivot (a numerically singular kernel block) no longer
        raises: the state escalates its jitter a bounded number of times and,
        failing that, degrades to the generic oracle gain path — see
        :meth:`_recover`.
        """
        super().push(state, element)
        if state.degraded:
            return state
        pivot_squared = float(state.residual[element])
        if not pivot_squared > 0.0:
            self._recover(state, element)
            return state
        projection = self._kernel[element].astype(float, copy=True)
        for row in state.rows:
            projection -= row[element] * row
        row = projection / math.sqrt(pivot_squared)
        state.rows.append(row)
        state.residual = state.residual - row * row
        return state

    @property
    def parallel_safe(self) -> bool:
        return True

    @classmethod
    def from_features(cls, features: np.ndarray, *, bandwidth: float = 1.0
                      ) -> "LogDeterminantFunction":
        """Build an RBF kernel ``K_ij = exp(-||x_i - x_j||^2 / (2σ^2))``."""
        array = np.asarray(features, dtype=float)
        if bandwidth <= 0:
            raise InvalidParameterError("bandwidth must be positive")
        diff = array[:, None, :] - array[None, :, :]
        squared = np.sum(diff * diff, axis=-1)
        return cls(np.exp(-squared / (2.0 * bandwidth**2)), validate=False)
