"""Log-determinant (informativeness) quality functions.

``f(S) = log det(I + K_{S,S})`` for a positive semi-definite kernel ``K`` is
monotone and submodular; it rewards selecting elements whose kernel rows are
close to orthogonal and is a standard informativeness objective in sensor
placement and determinantal-point-process style selection.  Included as an
additional genuinely submodular workload for the submodular-quality benches.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import SetFunction


class LogDeterminantFunction(SetFunction):
    """``f(S) = log det(I_{|S|} + K[S, S])`` for a PSD kernel ``K``."""

    def __init__(self, kernel: np.ndarray, *, jitter: float = 1e-10) -> None:
        matrix = np.asarray(kernel, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("kernel must be a square matrix")
        if not np.allclose(matrix, matrix.T, atol=1e-8):
            raise InvalidParameterError("kernel must be symmetric")
        eigenvalues = np.linalg.eigvalsh(matrix)
        if eigenvalues.min() < -1e-6:
            raise InvalidParameterError("kernel must be positive semi-definite")
        self._kernel = matrix
        self._jitter = float(jitter)

    @property
    def n(self) -> int:
        return self._kernel.shape[0]

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        block = self._kernel[np.ix_(idx, idx)]
        gram = np.eye(len(idx)) * (1.0 + self._jitter) + block
        sign, logdet = np.linalg.slogdet(gram)
        if sign <= 0:  # pragma: no cover - defensive; PSD + I is always positive
            raise InvalidParameterError("kernel block is not positive definite")
        return float(logdet)

    @classmethod
    def from_features(cls, features: np.ndarray, *, bandwidth: float = 1.0
                      ) -> "LogDeterminantFunction":
        """Build an RBF kernel ``K_ij = exp(-||x_i - x_j||^2 / (2σ^2))``."""
        array = np.asarray(features, dtype=float)
        if bandwidth <= 0:
            raise InvalidParameterError("bandwidth must be positive")
        diff = array[:, None, :] - array[None, :, :]
        squared = np.sum(diff * diff, axis=-1)
        return cls(np.exp(-squared / (2.0 * bandwidth**2)))
