"""Index-remapped views of quality functions (the restriction layer).

A production diversifier is query-scoped: each query solves over a candidate
pool inside one shared corpus.  :class:`RestrictedSetFunction` is the generic
fallback for :meth:`~repro.functions.base.SetFunction.restrict` — it presents
``f`` restricted to a pool, re-indexed to ``{0, ..., k-1}``, by translating
indices and delegating every oracle call to the parent.  Concrete families
override :meth:`restrict` when a direct representation is cheaper (modular
functions slice their weight vector in O(k)).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

import numpy as np

from repro._types import Element
from repro.functions.base import Candidates, GainState, SetFunction
from repro.utils.validation import check_candidate_pool


class _RestrictedGainState(GainState):
    """Local member set plus the parent's gain state over global indices."""

    __slots__ = ("parent_state",)


class RestrictedSetFunction(SetFunction):
    """``f`` restricted to a candidate pool, re-indexed from 0.

    Local element ``i`` maps to ``pool[i]`` in the parent's universe, where
    ``pool`` is the candidate iterable deduplicated in first-seen order.
    Restriction preserves modularity, submodularity and monotonicity, so the
    declared structure passes through to the parent's.
    """

    def __init__(self, parent: SetFunction, elements: Iterable[Element]) -> None:
        self._parent = parent
        self._globals: Tuple[Element, ...] = tuple(
            check_candidate_pool(elements, parent.n).tolist()
        )
        self._globals_array = np.asarray(self._globals, dtype=int)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def parent(self) -> SetFunction:
        """The unrestricted function this view delegates to."""
        return self._parent

    @property
    def global_elements(self) -> Tuple[Element, ...]:
        """Local index ``i`` corresponds to ``global_elements[i]``."""
        return self._globals

    # ------------------------------------------------------------------
    # SetFunction interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self._globals)

    def _map(self, subset: FrozenSet[Element]) -> FrozenSet[Element]:
        return frozenset(self._globals[e] for e in subset)

    def value(self, subset: Iterable[Element]) -> float:
        return self._parent.value(self._map(self._as_set(subset)))

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        return self._parent.marginal(self._globals[element], self._map(members))

    # ------------------------------------------------------------------
    # Batched marginal-gain protocol (delegates to the parent's state)
    # ------------------------------------------------------------------
    def gain_state(self, subset=()) -> _RestrictedGainState:
        state = _RestrictedGainState(subset)
        state.parent_state = self._parent.gain_state(
            self._globals[e] for e in state.members
        )
        return state

    def gains(self, candidates: Candidates, state: _RestrictedGainState) -> np.ndarray:
        idx = np.asarray(candidates, dtype=int)
        return self._parent.gains(self._globals_array[idx], state.parent_state)

    def push(
        self, state: _RestrictedGainState, element: Element
    ) -> _RestrictedGainState:
        super().push(state, element)
        self._parent.push(state.parent_state, self._globals[element])
        return state

    @property
    def is_modular(self) -> bool:
        return self._parent.is_modular

    @property
    def parallel_safe(self) -> bool:
        return self._parent.parallel_safe

    @property
    def declares_submodular(self) -> bool:
        return self._parent.declares_submodular

    @property
    def declares_monotone(self) -> bool:
        return self._parent.declares_monotone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RestrictedSetFunction(n={self.n}, "
            f"parent={type(self._parent).__name__}(n={self._parent.n}))"
        )
