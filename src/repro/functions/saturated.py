"""Saturated coverage (Lin–Bilmes) functions for summarization.

The paper cites Lin and Bilmes' argument that monotone submodular functions
are ideal for text summarization.  Their representativeness term is

``f(S) = Σ_{i ∈ U} min( Σ_{j ∈ S} sim(i, j),  α · Σ_{j ∈ U} sim(i, j) )``

— each ground element ``i`` contributes its similarity mass to the summary,
capped ("saturated") at a fraction α of its total mass.  This is monotone and
submodular, and strictly non-modular, making it the natural workload for the
submodular-quality benches where the Gollapudi–Sharma reduction does not
apply.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.functions.base import Candidates, GainState, SetFunction

#: Column-chunk width for batched gains, bounding the ``n × |C|`` temporary.
_GAINS_CHUNK = 512


class _SaturatedGainState(GainState):
    """Running similarity mass ``mass[i] = Σ_{j ∈ S} sim(i, j)``."""

    __slots__ = ("mass",)


class SaturatedCoverageFunction(SetFunction):
    """Lin–Bilmes saturated coverage over a similarity matrix.

    Parameters
    ----------
    similarity:
        Symmetric non-negative ``n x n`` similarity matrix.
    saturation:
        The fraction α in ``(0, 1]`` at which each element's contribution
        saturates.
    """

    def __init__(self, similarity: np.ndarray, *, saturation: float = 0.25) -> None:
        matrix = np.asarray(similarity, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise InvalidParameterError("similarity must be a square matrix")
        if np.any(matrix < 0):
            raise InvalidParameterError("similarities must be non-negative")
        if not np.allclose(matrix, matrix.T, atol=1e-9):
            raise InvalidParameterError("similarity must be symmetric")
        if not 0.0 < saturation <= 1.0:
            raise InvalidParameterError("saturation must lie in (0, 1]")
        self._similarity = matrix
        self._saturation = float(saturation)
        self._caps = self._saturation * matrix.sum(axis=1)

    @property
    def n(self) -> int:
        return self._similarity.shape[0]

    @property
    def saturation(self) -> float:
        """The saturation fraction α."""
        return self._saturation

    def value(self, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if not members:
            return 0.0
        idx = np.fromiter(members, dtype=int)
        mass = self._similarity[:, idx].sum(axis=1)
        return float(np.minimum(mass, self._caps).sum())

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        members = self._as_set(subset)
        if element in members:
            return 0.0
        if not members:
            mass = np.zeros(self.n)
        else:
            idx = np.fromiter(members, dtype=int)
            mass = self._similarity[:, idx].sum(axis=1)
        before = np.minimum(mass, self._caps)
        after = np.minimum(mass + self._similarity[:, element], self._caps)
        return float((after - before).sum())

    # ------------------------------------------------------------------
    # Batched marginal-gain protocol
    # ------------------------------------------------------------------
    def gain_state(self, subset=()) -> _SaturatedGainState:
        """O(n·|S|) state build: the similarity-mass vector of the subset."""
        state = _SaturatedGainState(subset)
        if state.members:
            idx = state.member_indices()
            state.mass = self._similarity[:, idx].sum(axis=1)
        else:
            state.mass = np.zeros(self.n)
        return state

    def gains(self, candidates: Candidates, state: _SaturatedGainState) -> np.ndarray:
        """Batch gains as capped-mass column sums per chunk."""
        idx = np.asarray(candidates, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        mass, caps = state.mass, self._caps
        base = np.minimum(mass, caps).sum()
        out = np.empty(idx.size, dtype=float)
        for start in range(0, idx.size, _GAINS_CHUNK):
            chunk = idx[start : start + _GAINS_CHUNK]
            after = np.minimum(
                mass[:, None] + self._similarity[:, chunk], caps[:, None]
            )
            out[start : start + _GAINS_CHUNK] = after.sum(axis=0) - base
        return state.mask_members(idx, out)

    def push(self, state: _SaturatedGainState, element: Element) -> _SaturatedGainState:
        """O(n) incremental update of the mass vector."""
        super().push(state, element)
        state.mass += self._similarity[:, element]
        return state

    @property
    def parallel_safe(self) -> bool:
        return True

    @classmethod
    def from_features(
        cls, features: np.ndarray, *, saturation: float = 0.25
    ) -> "SaturatedCoverageFunction":
        """Build the function from cosine similarities of feature rows."""
        array = np.asarray(features, dtype=float)
        norms = np.linalg.norm(array, axis=1)
        if np.any(norms == 0):
            raise InvalidParameterError("feature vectors must be non-zero")
        unit = array / norms[:, None]
        similarity = np.clip(unit @ unit.T, 0.0, 1.0)
        return cls(similarity, saturation=saturation)
