"""Set-valuation (quality) function substrate.

The paper's objective combines a normalized monotone submodular quality
function ``f(S)`` with the dispersion term.  This package provides the
function interface, the modular case used by the experiments and the dynamic
update section, several genuinely submodular families used by the examples
and the submodular benches, and verification utilities.
"""

from repro.functions.base import GainState, SetFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.log_det import LogDeterminantFunction
from repro.functions.mixtures import MixtureFunction, ScaledFunction
from repro.functions.modular import ModularFunction, ZeroFunction
from repro.functions.saturated import SaturatedCoverageFunction
from repro.functions.verification import (
    check_monotone,
    check_normalized,
    check_submodular,
    estimate_curvature,
    is_monotone,
    is_submodular,
)
from repro.functions.weakly_submodular import (
    DispersionFunction,
    submodularity_ratio,
)

__all__ = [
    "SetFunction",
    "GainState",
    "ModularFunction",
    "ZeroFunction",
    "CoverageFunction",
    "SaturatedCoverageFunction",
    "FacilityLocationFunction",
    "LogDeterminantFunction",
    "MixtureFunction",
    "ScaledFunction",
    "check_monotone",
    "check_normalized",
    "check_submodular",
    "estimate_curvature",
    "is_monotone",
    "is_submodular",
    "DispersionFunction",
    "submodularity_ratio",
]
