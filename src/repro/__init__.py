"""repro — a reproduction of "Max-Sum Diversification, Monotone Submodular
Functions and Dynamic Updates" (Borodin, Jain, Lee, Ye; PODS 2012).

The library selects a subset ``S`` of a ground set maximizing

``φ(S) = f(S) + λ · Σ_{ {u,v} ⊆ S } d(u, v)``

where ``f`` is a normalized monotone submodular quality function, ``d`` is a
metric and the constraint is a cardinality bound or independence in a
matroid.  The three headline algorithms match the paper's contributions:

* :func:`~repro.core.greedy.greedy_diversify` — Greedy B, 2-approximation
  under a cardinality constraint (Theorem 1);
* :func:`~repro.core.local_search.local_search_diversify` — single-swap local
  search, 2-approximation under any matroid constraint (Theorem 2);
* :class:`~repro.dynamic.engine.DynamicDiversifier` — the oblivious
  single-swap update rule maintaining a 3-approximation under weight and
  distance perturbations (Theorems 3–6).

Quick start
-----------
>>> from repro import make_synthetic_instance, greedy_diversify
>>> instance = make_synthetic_instance(50, seed=0)
>>> result = greedy_diversify(instance.objective, p=5)
>>> len(result.selected)
5
"""

from repro.core import (
    LocalSearchConfig,
    Objective,
    Restriction,
    SolveCheckpoint,
    SolverResult,
    StreamingDiversifier,
    exact_dispersion,
    exact_diversify,
    exact_knapsack_diversify,
    gollapudi_sharma_greedy,
    greedy_dispersion,
    greedy_diversify,
    knapsack_greedy,
    local_search_diversify,
    matching_diversify,
    mmr_select,
    refine_with_local_search,
    solve,
    solve_many,
    solve_sharded,
    streaming_diversify,
)
from repro.data import (
    FeatureInstance,
    GeoInstance,
    LetorQueryData,
    PortfolioInstance,
    SavedInstance,
    SyntheticInstance,
    SyntheticLetorCorpus,
    load_instance,
    make_feature_instance,
    make_geo_instance,
    make_portfolio_instance,
    make_synthetic_instance,
    save_instance,
)
from repro.dynamic import (
    DistanceDecrease,
    DistanceIncrease,
    DynamicDiversifier,
    DynamicSession,
    EngineSnapshot,
    Environment,
    EventBatch,
    EventBatchBuilder,
    SessionSnapshot,
    ShardedDynamicEngine,
    WeightDecrease,
    WeightIncrease,
)
from repro.durability import (
    DurableStore,
    SnapshotStore,
    WriteAheadLog,
)
from repro.exceptions import (
    DurabilityError,
    DurabilityWarning,
    InvalidParameterError,
    NonFiniteDataError,
    NumericalDegradationWarning,
    RecoveryError,
    ReproError,
    ReproWarning,
    ServerClosedError,
    ServerOverloadedError,
    SnapshotVersionError,
    WalCorruptionError,
)
from repro.functions import (
    CoverageFunction,
    FacilityLocationFunction,
    LogDeterminantFunction,
    MixtureFunction,
    ModularFunction,
    SaturatedCoverageFunction,
    SetFunction,
    ZeroFunction,
)
from repro.matroids import (
    GraphicMatroid,
    Matroid,
    PartitionMatroid,
    TransversalMatroid,
    TruncatedMatroid,
    UniformMatroid,
)
from repro.metrics import (
    CosineMetric,
    DistanceMatrix,
    EuclideanMetric,
    GrowableDistanceMatrix,
    Metric,
    PatchedMetric,
    UniformRandomMetric,
)
from repro.obs import (
    MetricsRegistry,
    Stopwatch,
    Trace,
    get_registry,
)
from repro.serve import (
    CorpusSnapshot,
    PreparedCorpus,
    ServeQuery,
    Server,
    ServerStats,
)
from repro.utils.deadline import Deadline

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Objective",
    "Restriction",
    "SolverResult",
    "LocalSearchConfig",
    "SolveCheckpoint",
    "Deadline",
    "solve",
    "solve_many",
    "solve_sharded",
    "greedy_diversify",
    "greedy_dispersion",
    "gollapudi_sharma_greedy",
    "matching_diversify",
    "mmr_select",
    "local_search_diversify",
    "refine_with_local_search",
    "exact_diversify",
    "exact_dispersion",
    "knapsack_greedy",
    "exact_knapsack_diversify",
    "StreamingDiversifier",
    "streaming_diversify",
    # functions
    "SetFunction",
    "ModularFunction",
    "ZeroFunction",
    "CoverageFunction",
    "SaturatedCoverageFunction",
    "FacilityLocationFunction",
    "LogDeterminantFunction",
    "MixtureFunction",
    # metrics
    "Metric",
    "DistanceMatrix",
    "GrowableDistanceMatrix",
    "PatchedMetric",
    "EuclideanMetric",
    "CosineMetric",
    "UniformRandomMetric",
    # matroids
    "Matroid",
    "UniformMatroid",
    "PartitionMatroid",
    "TransversalMatroid",
    "GraphicMatroid",
    "TruncatedMatroid",
    # dynamic
    "DynamicDiversifier",
    "DynamicSession",
    "EngineSnapshot",
    "EventBatch",
    "EventBatchBuilder",
    "SessionSnapshot",
    "ShardedDynamicEngine",
    "WeightIncrease",
    "WeightDecrease",
    "DistanceIncrease",
    "DistanceDecrease",
    "Environment",
    # observability
    "Trace",
    "MetricsRegistry",
    "get_registry",
    "Stopwatch",
    # serving
    "PreparedCorpus",
    "Server",
    "ServerStats",
    "ServeQuery",
    "CorpusSnapshot",
    # durability
    "DurableStore",
    "SnapshotStore",
    "WriteAheadLog",
    # data
    "SyntheticInstance",
    "make_synthetic_instance",
    "FeatureInstance",
    "make_feature_instance",
    "SyntheticLetorCorpus",
    "LetorQueryData",
    "PortfolioInstance",
    "make_portfolio_instance",
    "GeoInstance",
    "make_geo_instance",
    "SavedInstance",
    "save_instance",
    "load_instance",
    # errors and warnings
    "ReproError",
    "InvalidParameterError",
    "NonFiniteDataError",
    "ReproWarning",
    "NumericalDegradationWarning",
    "DurabilityWarning",
    "ServerClosedError",
    "ServerOverloadedError",
    "DurabilityError",
    "WalCorruptionError",
    "RecoveryError",
    "SnapshotVersionError",
]
