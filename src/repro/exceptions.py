"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration mistakes from infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ReproWarning(UserWarning):
    """Base class for all warnings issued by the library.

    Warnings signal *degraded but recoverable* situations: the solve
    completes and returns a feasible answer, but some fast path was abandoned
    or some guarantee weakened.  Callers that prefer hard failures can turn
    them into errors with ``warnings.simplefilter("error", ReproWarning)``.
    """


class NumericalDegradationWarning(ReproWarning):
    """A numerical fast path broke down and a slower/safer fallback took over.

    Emitted when a Cholesky-based incremental gain state hits a non-positive
    pivot and has to escalate its jitter or fall back to the generic oracle
    gain path (:mod:`repro.functions.log_det`), or when a vectorized swap
    scan finds non-finite gains and sanitizes them before selecting a move
    (:mod:`repro.core.kernels`).  The solve still completes; the warning
    records that its fast-path guarantees (and possibly a few ulps of
    accuracy) were traded for robustness.
    """


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its documented domain."""


class NonFiniteDataError(ReproError, ValueError):
    """Input data (weights, distances, features) contains NaN or ±inf.

    Raised eagerly at construction time — :class:`~repro.core.objective.Objective`,
    the concrete metrics and the modular quality family all validate their
    arrays — so a NaN planted in a corpus fails fast with a clear message
    instead of silently poisoning argmax-based selection downstream.
    """


class MetricError(ReproError):
    """A distance structure is malformed (non-symmetric, negative, ...)."""


class TriangleInequalityError(MetricError):
    """The supplied distances violate the (relaxed) triangle inequality."""


class SetFunctionError(ReproError):
    """A set-valuation function violates its documented contract."""


class NotSubmodularError(SetFunctionError):
    """A function declared submodular fails a submodularity check."""


class NotMonotoneError(SetFunctionError):
    """A function declared monotone fails a monotonicity check."""


class MatroidError(ReproError):
    """A matroid definition or operation is invalid."""


class NotIndependentError(MatroidError):
    """A set expected to be independent in the matroid is not."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the requested constraint."""


class SolverError(ReproError):
    """An algorithm could not complete (bad configuration, oracle failure)."""


class PerturbationError(ReproError):
    """A dynamic-update perturbation is invalid for the current instance."""


class ServerClosedError(ReproError):
    """A serving request was submitted to (or stranded in) a stopped server.

    Raised by :meth:`repro.serve.Server.submit` when the server is not
    running, and set on the futures of requests still queued or in flight
    when :meth:`repro.serve.Server.stop` shuts the batcher down.
    """


class ServerOverloadedError(ReproError):
    """A serving request was shed because the server's queue is full.

    Raised by :meth:`repro.serve.Server.submit` when ``max_pending`` is set
    and that many requests are already waiting: the submit fails *fast*
    instead of queueing unboundedly, so overload surfaces as immediate
    back-pressure rather than as unbounded memory growth and blown
    deadlines.  Shed requests are counted in
    :attr:`repro.serve.ServerStats.shed`.
    """


class DurabilityError(ReproError):
    """Base class for write-ahead-log / snapshot / recovery failures."""


class WalCorruptionError(DurabilityError):
    """A write-ahead log is corrupt *before* its final record.

    Torn or corrupt **trailing** records are expected after a crash and are
    truncated with a :class:`DurabilityWarning`; corruption in the middle of
    the log (a flipped byte, an invalid frame header with intact data after
    it) means the journal cannot be trusted and recovery refuses to guess.
    """


class RecoveryError(DurabilityError):
    """A durable directory cannot be recovered (or re-initialised) from.

    Raised when recovery finds nothing to restore (no valid snapshot and no
    journal base state), or when a fresh durable session is pointed at a
    directory that already holds a journal (use
    :meth:`repro.dynamic.DynamicSession.recover` instead of clobbering it).
    """


class SnapshotVersionError(DurabilityError):
    """A persisted snapshot/checkpoint is incompatible with this build.

    Raised on a ``format_version`` outside the supported range or a universe
    ``fingerprint`` mismatch (a snapshot fed to a journal, checkpoint resume
    or recovery path that belongs to a *different* instance), instead of the
    opaque pickle/attribute error the mismatch would otherwise decay into.
    """


class DurabilityWarning(ReproWarning):
    """A durability layer degraded recoverably.

    Emitted when recovery truncates a torn or corrupt trailing write-ahead-log
    record (the expected residue of a crash mid-append) or skips a corrupt
    snapshot generation in favour of an older valid one.  Recovery still
    completes; the warning records that the tail of the journal was lost.
    """
