"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration mistakes from infeasibility.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied a parameter outside its documented domain."""


class MetricError(ReproError):
    """A distance structure is malformed (non-symmetric, negative, ...)."""


class TriangleInequalityError(MetricError):
    """The supplied distances violate the (relaxed) triangle inequality."""


class SetFunctionError(ReproError):
    """A set-valuation function violates its documented contract."""


class NotSubmodularError(SetFunctionError):
    """A function declared submodular fails a submodularity check."""


class NotMonotoneError(SetFunctionError):
    """A function declared monotone fails a monotonicity check."""


class MatroidError(ReproError):
    """A matroid definition or operation is invalid."""


class NotIndependentError(MatroidError):
    """A set expected to be independent in the matroid is not."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the requested constraint."""


class SolverError(ReproError):
    """An algorithm could not complete (bad configuration, oracle failure)."""


class PerturbationError(ReproError):
    """A dynamic-update perturbation is invalid for the current instance."""
