"""Checksummed append-only write-ahead log.

The journal is a single file: an 8-byte magic followed by length-prefixed
records.  Each record frame is::

    u32 payload_length | u32 payload_crc32 | u32 header_crc32 | payload

``header_crc32`` covers the first eight header bytes, so a frame whose
*length field itself* was damaged is detected before the length is trusted;
``payload_crc32`` covers the payload.  Payloads carry a one-byte record kind
and a u64 sequence number ahead of the body, giving replay an explicit
watermark to compare against snapshot generations (compaction truncates the
log, but a crash between snapshot and truncate leaves already-covered
records behind — the sequence number is what lets recovery skip them).

Corruption policy, fixed by :func:`read_wal`:

* anything wrong **at the tail** — a partial header, a frame extending past
  end-of-file, a bad checksum on the *final* record — is the expected
  residue of a crash mid-append: the tail is dropped (optionally truncated
  on disk) with a :class:`~repro.exceptions.DurabilityWarning`;
* anything wrong **before** the tail — a bad checksum with intact records
  after it — means the journal cannot be trusted and raises
  :class:`~repro.exceptions.WalCorruptionError`.

Durability is configurable per log: ``fsync="always"`` syncs every append
(every acknowledged tick survives power loss), ``"interval"`` syncs at most
once per ``fsync_interval_s`` (bounded loss window, near-zero overhead),
``"off"`` leaves flushing to the OS (fastest; survives process crash but not
power loss).
"""

from __future__ import annotations

import os
import struct
import time
import warnings
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import (
    DurabilityWarning,
    InvalidParameterError,
    WalCorruptionError,
)
from repro.obs.instrument import WAL_APPEND_SECONDS, WAL_FSYNC_SECONDS

__all__ = [
    "WAL_MAGIC",
    "WalRecord",
    "WriteAheadLog",
    "read_wal",
]

WAL_MAGIC = b"RPWAL001"

RECORD_INIT = 0
RECORD_TICK = 1

_HEADER = struct.Struct("<III")  # payload_length, payload_crc32, header_crc32
_ENVELOPE = struct.Struct("<BQ")  # record kind, sequence number

_FSYNC_POLICIES = ("always", "interval", "off")


@dataclass(frozen=True)
class WalRecord:
    """One decoded journal record: kind, sequence number and opaque body."""

    kind: int
    seq: int
    body: bytes


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _frame(kind: int, seq: int, body: bytes) -> bytes:
    payload = _ENVELOPE.pack(kind, seq) + body
    partial = struct.pack("<II", len(payload), _crc(payload))
    return partial + struct.pack("<I", _crc(partial)) + payload


class WriteAheadLog:
    """Appender for one journal file (see module docstring for the format).

    Creates the file (with its magic) if missing or empty; otherwise opens
    it for appending at ``append_at`` — callers that recovered the log pass
    the valid length reported by :func:`read_wal` so a truncated-in-memory
    tail is physically overwritten by the next append.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.1,
        append_at: Optional[int] = None,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise InvalidParameterError(
                f"fsync must be one of {_FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_interval_s <= 0:
            raise InvalidParameterError("fsync_interval_s must be positive")
        self._path = os.fspath(path)
        self._fsync = fsync
        self._fsync_interval_s = float(fsync_interval_s)
        self._last_sync = time.monotonic()
        fresh = not os.path.exists(self._path) or os.path.getsize(self._path) == 0
        if fresh:
            self._handle = open(self._path, "w+b")
            self._handle.write(WAL_MAGIC)
            self._sync_now()
        else:
            self._handle = open(self._path, "r+b")
            magic = self._handle.read(len(WAL_MAGIC))
            if magic != WAL_MAGIC:
                raise WalCorruptionError(
                    f"{self._path} does not start with the write-ahead-log magic"
                )
            position = os.path.getsize(self._path) if append_at is None else append_at
            self._handle.seek(position)
            self._handle.truncate(position)

    @property
    def path(self) -> str:
        return self._path

    def append(self, kind: int, seq: int, body: bytes) -> None:
        """Append one record and apply the fsync policy."""
        metered = WAL_APPEND_SECONDS.enabled()
        started = time.perf_counter() if metered else 0.0
        self._handle.write(_frame(kind, seq, body))
        if self._fsync == "always":
            self._sync_now()
        elif self._fsync == "interval":
            self._handle.flush()
            if time.monotonic() - self._last_sync >= self._fsync_interval_s:
                self._sync_now()
        else:
            self._handle.flush()
        if metered:
            WAL_APPEND_SECONDS.observe(time.perf_counter() - started)

    def sync(self) -> None:
        """Force an fsync regardless of policy (used for init/compaction)."""
        self._sync_now()

    def reset(self) -> None:
        """Truncate the log back to its magic header (compaction)."""
        self._handle.seek(len(WAL_MAGIC))
        self._handle.truncate(len(WAL_MAGIC))
        self._sync_now()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()

    def _sync_now(self) -> None:
        metered = WAL_FSYNC_SECONDS.enabled()
        started = time.perf_counter() if metered else 0.0
        self._handle.flush()
        os.fsync(self._handle.fileno())
        if metered:
            WAL_FSYNC_SECONDS.observe(time.perf_counter() - started)
        self._last_sync = time.monotonic()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_wal(path: str, *, repair: bool = False) -> Tuple[List[WalRecord], int]:
    """Read every valid record of a journal, handling torn tails.

    Returns ``(records, valid_length)`` where ``valid_length`` is the byte
    offset of the first invalid data (== file size for a clean log).  With
    ``repair=True`` a torn/corrupt tail is also truncated on disk.  See the
    module docstring for the tail-versus-mid-log corruption policy.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) == 0:
        # A crash can beat the very first magic write; an empty journal holds
        # no records, which is exactly what it would have held anyway.
        return [], 0
    if not data.startswith(WAL_MAGIC):
        raise WalCorruptionError(
            f"{path} does not start with the write-ahead-log magic"
        )

    records: List[WalRecord] = []
    offset = len(WAL_MAGIC)
    torn: Optional[str] = None
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < _HEADER.size:
            torn = f"partial record header at offset {offset}"
            break
        length, payload_crc, header_crc = _HEADER.unpack_from(data, offset)
        if _crc(data[offset : offset + 8]) != header_crc:
            # Appends are strictly sequential, so a damaged header with
            # intact data *after* it cannot be a torn write.
            raise WalCorruptionError(
                f"{path}: record header checksum mismatch at offset {offset}"
            )
        end = offset + _HEADER.size + length
        if end > len(data):
            torn = f"record at offset {offset} extends past end of file"
            break
        payload = data[offset + _HEADER.size : end]
        if _crc(payload) != payload_crc:
            if end == len(data):
                torn = f"final record at offset {offset} fails its checksum"
                break
            raise WalCorruptionError(
                f"{path}: record payload checksum mismatch at offset {offset} "
                f"with intact records after it (mid-log corruption)"
            )
        kind, seq = _ENVELOPE.unpack_from(payload, 0)
        records.append(WalRecord(kind=kind, seq=seq, body=payload[_ENVELOPE.size :]))
        offset = end

    if torn is not None:
        warnings.warn(
            f"{path}: truncating torn/corrupt tail ({torn}); "
            f"{len(records)} valid records survive",
            DurabilityWarning,
            stacklevel=2,
        )
        if repair:
            with open(path, "r+b") as handle:
                handle.truncate(offset)
                handle.flush()
                os.fsync(handle.fileno())
    return records, offset
