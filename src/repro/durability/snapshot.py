"""Atomic, checksummed snapshot files with monotonic generation rotation.

A snapshot write never leaves a half-written file where a reader can find
it: the payload goes to a temp file in the same directory, is flushed and
fsynced, then moved into place with :func:`os.rename` (atomic on POSIX),
and the directory entry itself is fsynced.  A crash therefore leaves either
the old generation or the new one — never a torn snapshot under the final
name.

Files are framed the same way as write-ahead-log payloads::

    8-byte magic | u32 payload_crc32 | u64 payload_length | payload

so a snapshot damaged *after* it landed (bit rot, partial copy) is detected
by checksum and skipped in favour of an older generation rather than
unpickled into garbage.

:class:`SnapshotStore` manages a directory of ``snapshot-NNNNNNNNNNNN.snap``
files with strictly increasing generation numbers; ``load_latest`` walks
newest-to-oldest past corrupt generations (warning on each skip) and
``prune`` keeps the newest ``keep`` generations.
"""

from __future__ import annotations

import os
import pickle
import re
import struct
import time
import warnings
import zlib
from typing import Any, List, Optional, Tuple

from repro.exceptions import DurabilityError, DurabilityWarning
from repro.obs.instrument import SNAPSHOT_WRITE_SECONDS

__all__ = [
    "SNAPSHOT_MAGIC",
    "SnapshotStore",
    "atomic_write_bytes",
    "read_framed",
    "write_framed",
]

SNAPSHOT_MAGIC = b"RPSNAP01"

_FRAME = struct.Struct("<IQ")  # payload_crc32, payload_length


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + fsync + rename)."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.rename(tmp_path, path)
    # Persist the directory entry too, so the rename itself survives power
    # loss; not all platforms allow opening a directory, hence best-effort.
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def write_framed(path: str, payload: bytes) -> None:
    """Atomically write ``payload`` wrapped in the checksummed snapshot frame."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    atomic_write_bytes(path, SNAPSHOT_MAGIC + _FRAME.pack(crc, len(payload)) + payload)


def read_framed(path: str) -> bytes:
    """Read and verify a framed snapshot file, returning its payload.

    Raises :class:`~repro.exceptions.DurabilityError` on a bad magic,
    truncated frame or checksum mismatch.
    """
    path = os.fspath(path)
    with open(path, "rb") as handle:
        data = handle.read()
    header_size = len(SNAPSHOT_MAGIC) + _FRAME.size
    if len(data) < header_size or not data.startswith(SNAPSHOT_MAGIC):
        raise DurabilityError(f"{path} is not a framed snapshot file")
    crc, length = _FRAME.unpack_from(data, len(SNAPSHOT_MAGIC))
    payload = data[header_size:]
    if len(payload) != length:
        raise DurabilityError(
            f"{path}: snapshot payload is {len(payload)} bytes, frame "
            f"declares {length}"
        )
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise DurabilityError(f"{path}: snapshot payload checksum mismatch")
    return payload


def is_framed_snapshot(data: bytes) -> bool:
    """Whether a byte prefix carries the framed-snapshot magic."""
    return data.startswith(SNAPSHOT_MAGIC)


class SnapshotStore:
    """A directory of checksummed snapshot generations.

    Generation numbers are monotonic: each :meth:`write` lands at
    ``max(existing) + 1``, so the newest state is always the highest number
    regardless of filesystem timestamps.
    """

    _PATTERN = re.compile(r"^snapshot-(\d{12})\.snap$")

    def __init__(self, directory: str) -> None:
        self._directory = os.fspath(directory)
        os.makedirs(self._directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    def path_for(self, generation: int) -> str:
        return os.path.join(self._directory, f"snapshot-{generation:012d}.snap")

    def generations(self) -> List[int]:
        """Existing generation numbers, ascending."""
        found = []
        for name in os.listdir(self._directory):
            match = self._PATTERN.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def write(self, obj: Any) -> Tuple[int, str]:
        """Pickle ``obj`` into the next generation; returns ``(gen, path)``."""
        metered = SNAPSHOT_WRITE_SECONDS.enabled()
        started = time.perf_counter() if metered else 0.0
        existing = self.generations()
        generation = (existing[-1] + 1) if existing else 1
        path = self.path_for(generation)
        write_framed(path, pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
        if metered:
            SNAPSHOT_WRITE_SECONDS.observe(time.perf_counter() - started)
        return generation, path

    def load(self, generation: int) -> Any:
        """Unpickle one specific generation (checksum-verified)."""
        return pickle.loads(read_framed(self.path_for(generation)))

    def load_latest(self) -> Optional[Tuple[int, Any]]:
        """Newest generation that passes its checksum, or ``None``.

        Corrupt generations are skipped newest-to-oldest, each with a
        :class:`~repro.exceptions.DurabilityWarning`.
        """
        for generation in reversed(self.generations()):
            try:
                return generation, self.load(generation)
            except (DurabilityError, pickle.UnpicklingError, EOFError) as exc:
                warnings.warn(
                    f"skipping corrupt snapshot generation {generation} "
                    f"({exc}); falling back to an older generation",
                    DurabilityWarning,
                    stacklevel=2,
                )
        return None

    def prune(self, keep: int = 2) -> None:
        """Delete all but the newest ``keep`` generations."""
        for generation in self.generations()[:-keep] if keep > 0 else []:
            try:
                os.remove(self.path_for(generation))
            except OSError:
                pass
