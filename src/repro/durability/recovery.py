"""Journal ownership and crash recovery for durable dynamic sessions.

:class:`DurableStore` is the object a durable
:class:`~repro.dynamic.session.DynamicSession` owns: one write-ahead log
(:mod:`repro.durability.wal`) plus one snapshot directory
(:mod:`repro.durability.snapshot`) under a single ``durable_dir``::

    durable_dir/
        wal.log                       # init record + journaled ticks
        snapshots/snapshot-XXXX.snap  # compaction generations

The journal's first record captures the session's *initial* state and
configuration; every applied tick is journaled **before** it mutates the
engine (journal-before-apply).  Compaction — every ``snapshot_every`` ticks —
writes an atomic :class:`DurableCheckpoint` generation carrying the current
state and the journal sequence number it covers, then truncates the log;
a crash between those two steps is safe because replay skips records at or
below the checkpoint's watermark.

:func:`recover_session` rebuilds a session from such a directory: newest
valid snapshot (else the init record), torn-tail repair, tick replay through
the normal apply path, then re-attachment of the journal.  Because every
engine code path is deterministic — including the rejection of invalid
ticks — the recovered state is bit-identical to the crashed process's state
at its last journaled tick boundary.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.checkpoint import SNAPSHOT_FORMAT_VERSION, check_snapshot_version
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import (
    RECORD_INIT,
    RECORD_TICK,
    WAL_MAGIC,
    WalRecord,
    WriteAheadLog,
    read_wal,
)
from repro.dynamic.events import (
    EventBatch,
    decode_event_batch,
    encode_event_batch,
)
from repro.exceptions import (
    InvalidParameterError,
    PerturbationError,
    RecoveryError,
    SnapshotVersionError,
)

__all__ = ["DurableCheckpoint", "DurableStore", "recover_session"]

WAL_FILENAME = "wal.log"
SNAPSHOT_DIRNAME = "snapshots"

_TICK_PREFIX = struct.Struct("<Q")  # length of the encoded batch

#: Sentinel distinguishing "caller did not say" from an explicit ``None``
#: when recovery merges overrides with the journaled configuration.
_JOURNALED = object()


@dataclass(frozen=True)
class DurableCheckpoint:
    """One compaction generation: engine state plus its journal watermark.

    ``wal_seq`` is the sequence number of the last tick the snapshot
    covers — replay skips journal records at or below it, which is what
    makes crash-between-snapshot-and-truncate harmless.  ``fingerprint``
    is the journal's lineage id (a digest of its init record), so a
    snapshot can never be silently combined with a different journal.
    """

    snapshot: Any
    wal_seq: int
    ticks: int
    fingerprint: Optional[str]
    config: Dict[str, Any] = field(default_factory=dict)
    format_version: int = SNAPSHOT_FORMAT_VERSION


def _lineage_of(init_body: bytes) -> str:
    return hashlib.sha1(init_body).hexdigest()


class DurableStore:
    """The write-ahead log + snapshot rotation behind one durable session."""

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "interval",
        fsync_interval_s: float = 0.1,
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
    ) -> None:
        if snapshot_every is not None and snapshot_every < 1:
            raise InvalidParameterError("snapshot_every must be at least 1")
        if keep_snapshots < 1:
            raise InvalidParameterError("keep_snapshots must be at least 1")
        self._directory = os.fspath(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._fsync = fsync
        self._fsync_interval_s = float(fsync_interval_s)
        self._snapshot_every = snapshot_every
        self._keep_snapshots = int(keep_snapshots)
        self._snapshots = SnapshotStore(
            os.path.join(self._directory, SNAPSHOT_DIRNAME)
        )
        self._wal: Optional[WriteAheadLog] = None
        self._seq = 0
        self._lineage: Optional[str] = None
        self._ticks_at_compact = 0
        #: Test seam: called after a compaction snapshot lands but before the
        #: journal truncates — the crash window recovery must survive.
        self.post_snapshot_hook: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def directory(self) -> str:
        return self._directory

    @property
    def wal_path(self) -> str:
        return os.path.join(self._directory, WAL_FILENAME)

    @property
    def snapshots(self) -> SnapshotStore:
        return self._snapshots

    @property
    def seq(self) -> int:
        """Sequence number of the last journaled tick."""
        return self._seq

    @property
    def lineage(self) -> Optional[str]:
        """Digest of the journal's init record — its identity."""
        return self._lineage

    @property
    def snapshot_every(self) -> Optional[int]:
        return self._snapshot_every

    def has_journal(self) -> bool:
        """Whether the directory already holds recoverable state."""
        if self._snapshots.generations():
            return True
        try:
            return os.path.getsize(self.wal_path) > len(WAL_MAGIC)
        except OSError:
            return False

    def config(self) -> Dict[str, Any]:
        return {
            "fsync": self._fsync,
            "snapshot_every": self._snapshot_every,
            "keep_snapshots": self._keep_snapshots,
        }

    # ------------------------------------------------------------------
    # Journaling
    # ------------------------------------------------------------------
    def start_fresh(self, session) -> None:
        """Initialize an empty directory with the session's init record."""
        if self.has_journal():
            raise RecoveryError(
                f"{self._directory} already holds a journal; recover it with "
                f"DynamicSession.recover(...) instead of overwriting it"
            )
        config = self.config()
        config["resolve_every"] = session._resolve_every
        config["resolve_kwargs"] = dict(session._resolve_kwargs)
        body = pickle.dumps(
            {"snapshot": session.snapshot(), "config": config},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        self._wal = WriteAheadLog(
            self.wal_path,
            fsync=self._fsync,
            fsync_interval_s=self._fsync_interval_s,
        )
        self._wal.append(RECORD_INIT, 0, body)
        self._wal.sync()
        self._lineage = _lineage_of(body)
        self._seq = 0
        self._ticks_at_compact = session.ticks

    def _attach(
        self,
        *,
        seq: int,
        lineage: Optional[str],
        ticks_at_compact: int,
        append_at: int,
    ) -> None:
        """Re-open the journal of a recovered session for appending."""
        self._wal = WriteAheadLog(
            self.wal_path,
            fsync=self._fsync,
            fsync_interval_s=self._fsync_interval_s,
            append_at=append_at,
        )
        self._seq = seq
        self._lineage = lineage
        self._ticks_at_compact = ticks_at_compact

    def journal(self, batch: EventBatch, kwargs: Dict[str, Any]) -> None:
        """Append one tick record (call *before* applying the batch)."""
        if self._wal is None:
            raise RecoveryError("the durable store is closed")
        encoded = encode_event_batch(batch)
        body = _TICK_PREFIX.pack(len(encoded)) + encoded
        if kwargs:
            body += pickle.dumps(kwargs, protocol=pickle.HIGHEST_PROTOCOL)
        self._seq += 1
        self._wal.append(RECORD_TICK, self._seq, body)

    @staticmethod
    def decode_tick(body: bytes) -> Tuple[EventBatch, Dict[str, Any]]:
        """Inverse of :meth:`journal`'s record body encoding."""
        (length,) = _TICK_PREFIX.unpack_from(body, 0)
        start = _TICK_PREFIX.size
        batch = decode_event_batch(body[start : start + length])
        trailer = body[start + length :]
        kwargs = pickle.loads(trailer) if trailer else {}
        return batch, kwargs

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def maybe_compact(self, session) -> bool:
        """Compact when ``snapshot_every`` ticks have passed; return whether."""
        if self._snapshot_every is None or self._wal is None:
            return False
        if session.ticks - self._ticks_at_compact < self._snapshot_every:
            return False
        self.compact(session)
        return True

    def compact(self, session) -> None:
        """Snapshot the current state, then truncate the journal.

        The snapshot lands atomically (temp + fsync + rename) carrying the
        journal watermark it covers; only then is the log truncated.  A
        crash in between leaves both — recovery prefers the snapshot and
        skips the already-covered records by sequence number.
        """
        if self._wal is None:
            raise RecoveryError("the durable store is closed")
        config = self.config()
        config["resolve_every"] = session._resolve_every
        config["resolve_kwargs"] = dict(session._resolve_kwargs)
        self._snapshots.write(
            DurableCheckpoint(
                snapshot=session.snapshot(),
                wal_seq=self._seq,
                ticks=session.ticks,
                fingerprint=self._lineage,
                config=config,
            )
        )
        if self.post_snapshot_hook is not None:
            self.post_snapshot_hook()
        self._wal.reset()
        self._snapshots.prune(self._keep_snapshots)
        self._ticks_at_compact = session.ticks

    def sync(self) -> None:
        """Force the journal to disk regardless of fsync policy."""
        if self._wal is not None:
            self._wal.sync()

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------
def _load_checkpoint(
    snapshots: SnapshotStore,
) -> Optional[DurableCheckpoint]:
    latest = snapshots.load_latest()
    if latest is None:
        return None
    _, checkpoint = latest
    if not isinstance(checkpoint, DurableCheckpoint):
        raise RecoveryError(
            f"snapshot directory {snapshots.directory} holds a "
            f"{type(checkpoint).__name__}, not a DurableCheckpoint"
        )
    check_snapshot_version(checkpoint, source="durable checkpoint")
    check_snapshot_version(checkpoint.snapshot, source="durable checkpoint state")
    return checkpoint


def recover_session(
    session_cls,
    directory: str,
    *,
    metric_factory=None,
    fsync: Any = _JOURNALED,
    snapshot_every: Any = _JOURNALED,
    keep_snapshots: Any = _JOURNALED,
    **session_kwargs,
):
    """Rebuild a durable session from its directory (see module docstring).

    ``session_cls`` is :class:`~repro.dynamic.session.DynamicSession`
    (passed in to keep the import direction session → durability).
    Configuration defaults to the journaled values; explicit keyword
    arguments override them.
    """
    directory = os.fspath(directory)
    wal_path = os.path.join(directory, WAL_FILENAME)
    snapshots = SnapshotStore(os.path.join(directory, SNAPSHOT_DIRNAME))

    records: List[WalRecord] = []
    valid_length = 0
    if os.path.exists(wal_path):
        records, valid_length = read_wal(wal_path, repair=True)

    checkpoint = _load_checkpoint(snapshots)

    init_record = (
        records[0] if records and records[0].kind == RECORD_INIT else None
    )
    lineage: Optional[str] = None
    init_payload: Optional[dict] = None
    if init_record is not None:
        lineage = _lineage_of(init_record.body)
        init_payload = pickle.loads(init_record.body)
        check_snapshot_version(init_payload["snapshot"], source="journal init record")

    if (
        checkpoint is not None
        and lineage is not None
        and checkpoint.fingerprint is not None
        and checkpoint.fingerprint != lineage
    ):
        raise SnapshotVersionError(
            f"snapshot fingerprint {checkpoint.fingerprint} does not match the "
            f"journal lineage {lineage}: {directory} mixes state from two "
            f"different durable sessions"
        )

    if checkpoint is not None:
        base_snapshot = checkpoint.snapshot
        base_seq = int(checkpoint.wal_seq)
        base_ticks = int(checkpoint.ticks)
        config = dict(checkpoint.config)
        lineage = checkpoint.fingerprint if lineage is None else lineage
    elif init_payload is not None:
        base_snapshot = init_payload["snapshot"]
        base_seq = 0
        base_ticks = 0
        config = dict(init_payload.get("config", {}))
    elif records:
        raise RecoveryError(
            f"{directory} has journaled ticks but no initial state and no "
            f"valid snapshot; the base state is unrecoverable"
        )
    else:
        raise RecoveryError(f"nothing to recover in {directory}")

    restore_kwargs = dict(session_kwargs)
    restore_kwargs.setdefault("resolve_every", config.get("resolve_every"))
    restore_kwargs.setdefault("resolve_kwargs", config.get("resolve_kwargs"))
    session = session_cls.restore(
        base_snapshot, metric_factory=metric_factory, **restore_kwargs
    )
    session._ticks = base_ticks

    last_seq = base_seq
    for record in records:
        if record.kind != RECORD_TICK or record.seq <= base_seq:
            continue
        batch, kwargs = DurableStore.decode_tick(record.body)
        try:
            session.apply_events(batch, **kwargs)
        except (PerturbationError, InvalidParameterError):
            # The live process journaled the tick before discovering it was
            # invalid; the rejection is deterministic, so the replayed state
            # matches the live one exactly.
            pass
        last_seq = max(last_seq, record.seq)

    store = DurableStore(
        directory,
        fsync=config.get("fsync", "interval") if fsync is _JOURNALED else fsync,
        snapshot_every=(
            config.get("snapshot_every")
            if snapshot_every is _JOURNALED
            else snapshot_every
        ),
        keep_snapshots=(
            config.get("keep_snapshots", 2)
            if keep_snapshots is _JOURNALED
            else keep_snapshots
        ),
    )
    store._attach(
        seq=last_seq,
        lineage=lineage,
        ticks_at_compact=base_ticks,
        append_at=valid_length,
    )
    session._durable = store
    return session
