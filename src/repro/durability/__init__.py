"""Crash durability: write-ahead logging, atomic snapshots, recovery.

The subsystem behind ``DynamicSession(durable_dir=...)`` /
``DynamicSession.recover(...)``:

* :mod:`~repro.durability.wal` — the checksummed append-only journal
  (length-prefixed CRC32 frames, configurable fsync policy, torn-tail
  repair);
* :mod:`~repro.durability.snapshot` — atomic checksummed snapshot files
  with monotonic generation rotation;
* :mod:`~repro.durability.recovery` — the :class:`DurableStore` a durable
  session owns (journal-before-apply, compaction) and
  :func:`recover_session`, which rebuilds bit-identical state after a
  crash.
"""

from repro.durability.recovery import (
    DurableCheckpoint,
    DurableStore,
    recover_session,
)
from repro.durability.snapshot import SnapshotStore, atomic_write_bytes
from repro.durability.wal import WalRecord, WriteAheadLog, read_wal

__all__ = [
    "DurableCheckpoint",
    "DurableStore",
    "SnapshotStore",
    "WalRecord",
    "WriteAheadLog",
    "atomic_write_bytes",
    "read_wal",
    "recover_session",
]
