"""Euclidean metric over feature vectors.

Used by the geographic / facility-location example scenarios (the dispersion
roots of the problem in location theory, Section 3) and by the portfolio
generator where stocks are embedded by their risk/return profile.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.metrics.base import Metric
from repro.utils.validation import check_candidate_pool, check_finite_array

#: Upper bound on the number of floats a chunked block computation may hold
#: in its intermediate ``chunk × cols × d`` difference tensor (32 MiB).
_BLOCK_CHUNK_FLOATS = 4 << 20


class EuclideanMetric(Metric):
    """The ℓ2 distance between rows of a point matrix.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``; row ``i`` is the embedding of element ``i``.
    """

    def __init__(self, points: np.ndarray) -> None:
        array = np.asarray(points, dtype=float)
        if array.ndim == 1:
            array = array[:, None]
        if array.ndim != 2:
            raise InvalidParameterError("points must be a 1-D or 2-D array")
        check_finite_array("points", array)
        self._points = array

    @property
    def n(self) -> int:
        return self._points.shape[0]

    @property
    def dimension(self) -> int:
        """Dimensionality of the embedding space."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """The underlying point matrix (read-only view semantics by convention)."""
        return self._points

    def distance(self, u: Element, v: Element) -> float:
        diff = self._points[u] - self._points[v]
        return float(np.sqrt(np.dot(diff, diff)))

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        diff = self._points[idx] - self._points[u]
        return np.sqrt(np.sum(diff * diff, axis=1))

    def row(self, u: Element) -> np.ndarray:
        diff = self._points - self._points[u]
        return np.sqrt(np.sum(diff * diff, axis=1))

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        """Chunked ``rows × cols`` distance block with bounded peak memory.

        Row chunks are sized so the intermediate ``chunk × |cols| × d``
        difference tensor never exceeds a fixed budget, making shard-sized
        block requests safe at any universe size.  Each entry is computed with
        the same subtract–square–sum–sqrt pipeline as :meth:`distances_from`,
        so both tiers agree bitwise.
        """
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        col_points = self._points[col_idx]
        out = np.empty((row_idx.size, col_idx.size), dtype=float)
        per_row = max(col_idx.size * self.dimension, 1)
        chunk = max(_BLOCK_CHUNK_FLOATS // per_row, 1)
        for start in range(0, row_idx.size, chunk):
            stop = min(start + chunk, row_idx.size)
            diff = self._points[row_idx[start:stop], None, :] - col_points[None, :, :]
            out[start:stop] = np.sqrt(np.sum(diff * diff, axis=-1))
        return out

    def restrict_lazy(self, elements: Iterable[Element]) -> "EuclideanMetric":
        """Lazy restriction: slice the point matrix (O(k·d), never O(k²))."""
        idx = check_candidate_pool(elements, self.n)
        return EuclideanMetric(self._points[idx])

    @property
    def parallel_safe(self) -> bool:
        return True

    def to_matrix(self) -> np.ndarray:
        diff = self._points[:, None, :] - self._points[None, :, :]
        matrix = np.sqrt(np.sum(diff * diff, axis=-1))
        np.fill_diagonal(matrix, 0.0)
        return matrix
