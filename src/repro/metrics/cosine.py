"""Cosine-distance metric over feature vectors.

Section 7.2 of the paper defines the document distance as the cosine
(dis)similarity between LETOR feature vectors.  Cosine *distance*
``1 - cos(u, v)`` on non-negative vectors is a well-behaved semi-metric; on
unit-normalized non-negative vectors it satisfies the triangle inequality up
to a small relaxation factor, and the library's relaxed-metric utilities can
quantify that factor (Section 8 / Sydow's 2α result).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.metrics.base import Metric
from repro.utils.validation import check_candidate_pool, check_finite_array

#: Upper bound on the floats held by one chunk of a block computation.
_BLOCK_CHUNK_FLOATS = 4 << 20


class CosineMetric(Metric):
    """``d(u, v) = 1 - cos(x_u, x_v)`` over rows of a feature matrix.

    Parameters
    ----------
    features:
        Array of shape ``(n, d)`` with no all-zero rows.
    shift:
        Optional constant added to every off-diagonal distance.  A positive
        shift (the generators use it) makes the distance a true metric: any
        semi-metric with values in ``[shift, 2·shift]`` satisfies the triangle
        inequality.
    """

    def __init__(self, features: np.ndarray, *, shift: float = 0.0) -> None:
        array = np.asarray(features, dtype=float)
        if array.ndim != 2:
            raise InvalidParameterError("features must be a 2-D array")
        # Finiteness before the norm test: a NaN feature row yields a NaN
        # norm, which passes ``norms == 0`` and poisons every distance.
        check_finite_array("features", array)
        norms = np.linalg.norm(array, axis=1)
        if np.any(norms == 0):
            raise InvalidParameterError("feature vectors must be non-zero")
        if shift < 0:
            raise InvalidParameterError("shift must be non-negative")
        self._unit = array / norms[:, None]
        self._shift = float(shift)

    @classmethod
    def _from_unit(cls, unit: np.ndarray, shift: float) -> "CosineMetric":
        """Wrap already-normalized rows without re-normalizing.

        The single alternate construction path (used by :meth:`restrict_lazy`
        so sub-metric distances stay bitwise identical to the parent's); keep
        it in sync with any state ``__init__`` gains.
        """
        metric = cls.__new__(cls)
        metric._unit = unit
        metric._shift = float(shift)
        return metric

    @property
    def n(self) -> int:
        return self._unit.shape[0]

    @property
    def shift(self) -> float:
        """The additive shift applied to off-diagonal distances."""
        return self._shift

    def distance(self, u: Element, v: Element) -> float:
        if u == v:
            return 0.0
        cos = float(np.clip(np.dot(self._unit[u], self._unit[v]), -1.0, 1.0))
        return max(1.0 - cos, 0.0) + self._shift

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        cos = np.clip(self._unit[idx] @ self._unit[u], -1.0, 1.0)
        distances = np.maximum(1.0 - cos, 0.0) + self._shift
        distances[idx == u] = 0.0
        return distances

    def row(self, u: Element) -> np.ndarray:
        cos = np.clip(self._unit @ self._unit[u], -1.0, 1.0)
        distances = np.maximum(1.0 - cos, 0.0) + self._shift
        distances[u] = 0.0
        return distances

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        """Chunked ``rows × cols`` distance block with bounded peak memory.

        Row chunks keep each GEMM product under a fixed float budget; entries
        with equal row and column index are zeroed so the block agrees with
        :meth:`distance` on the diagonal even when a shift is applied.
        """
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        col_unit = self._unit[col_idx]
        out = np.empty((row_idx.size, col_idx.size), dtype=float)
        chunk = max(_BLOCK_CHUNK_FLOATS // max(col_idx.size, 1), 1)
        for start in range(0, row_idx.size, chunk):
            stop = min(start + chunk, row_idx.size)
            cos = np.clip(self._unit[row_idx[start:stop]] @ col_unit.T, -1.0, 1.0)
            part = np.maximum(1.0 - cos, 0.0) + self._shift
            part[row_idx[start:stop, None] == col_idx[None, :]] = 0.0
            out[start:stop] = part
        return out

    def restrict_lazy(self, elements: Iterable[Element]) -> "CosineMetric":
        """Lazy restriction: slice the unit-vector matrix (O(k·d), never O(k²))."""
        idx = check_candidate_pool(elements, self.n)
        return CosineMetric._from_unit(self._unit[idx], self._shift)

    @property
    def parallel_safe(self) -> bool:
        return True

    def to_matrix(self) -> np.ndarray:
        cos = np.clip(self._unit @ self._unit.T, -1.0, 1.0)
        matrix = np.maximum(1.0 - cos, 0.0) + self._shift
        np.fill_diagonal(matrix, 0.0)
        return (matrix + matrix.T) / 2.0
