"""Explicit pairwise-distance matrices.

:class:`DistanceMatrix` is the work-horse representation: the synthetic and
LETOR-like generators produce one, the dynamic-update engine mutates one, and
every other metric can be materialized into one via
:meth:`repro.metrics.base.Metric.to_matrix`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError, MetricError
from repro.metrics.base import Metric


class DistanceMatrix(Metric):
    """A metric backed by an explicit symmetric ``n x n`` matrix.

    Parameters
    ----------
    matrix:
        Square array of pairwise distances.  The constructor symmetrizes
        nothing: a non-symmetric or negative input raises
        :class:`~repro.exceptions.MetricError`.
    validate_triangle:
        When ``True`` the constructor additionally verifies the triangle
        inequality exactly (O(n^3)); useful in tests, too slow for large
        instances.
    copy:
        Whether to copy the input array.  The dynamic-update engine passes
        ``copy=False`` to share storage it is allowed to mutate.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        validate_triangle: bool = False,
        copy: bool = True,
    ) -> None:
        array = np.array(matrix, dtype=float, copy=copy)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise InvalidParameterError(
                f"distance matrix must be square, got shape {array.shape}"
            )
        if not np.allclose(array, array.T, atol=1e-12):
            raise MetricError("distance matrix must be symmetric")
        if np.any(array < 0):
            raise MetricError("distances must be non-negative")
        if not np.allclose(np.diag(array), 0.0, atol=1e-12):
            raise MetricError("self-distances d(u, u) must be zero")
        self._matrix = array
        # Shared read-only view handed to the kernel layer: mutations must go
        # through set_distance/array so the metric axioms stay enforceable.
        self._matrix_view = array.view()
        self._matrix_view.flags.writeable = False
        if validate_triangle:
            from repro.metrics.validation import check_metric

            check_metric(self)

    # ------------------------------------------------------------------
    # Metric interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    def distance(self, u: Element, v: Element) -> float:
        return float(self._matrix[u, v])

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        return self._matrix[u, idx]

    def row(self, u: Element) -> np.ndarray:
        return self._matrix_view[u]

    def matrix_view(self) -> np.ndarray:
        return self._matrix_view

    def to_matrix(self) -> np.ndarray:
        return self._matrix.copy()

    # ------------------------------------------------------------------
    # Mutation (dynamic updates, Section 6)
    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying matrix (mutations must preserve metric axioms)."""
        return self._matrix

    def set_distance(self, u: Element, v: Element, value: float) -> None:
        """Set ``d(u, v) = d(v, u) = value`` (used by distance perturbations)."""
        if u == v:
            raise InvalidParameterError("cannot change a self-distance")
        if value < 0:
            raise MetricError(f"distances must be non-negative, got {value}")
        self._matrix[u, v] = value
        self._matrix[v, u] = value

    def copy(self) -> "DistanceMatrix":
        """Return an independent copy of this matrix."""
        return DistanceMatrix(self._matrix, copy=True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, points: np.ndarray, *, metric: str = "euclidean"
    ) -> "DistanceMatrix":
        """Build the matrix of pairwise distances between row vectors.

        Parameters
        ----------
        points:
            Array of shape ``(n, d)``.
        metric:
            Either ``"euclidean"`` or ``"cosine"``.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise InvalidParameterError("points must be a 2-D array")
        if metric == "euclidean":
            diff = points[:, None, :] - points[None, :, :]
            matrix = np.sqrt(np.sum(diff * diff, axis=-1))
        elif metric == "cosine":
            norms = np.linalg.norm(points, axis=1)
            if np.any(norms == 0):
                raise InvalidParameterError(
                    "cosine distance requires non-zero feature vectors"
                )
            unit = points / norms[:, None]
            similarity = np.clip(unit @ unit.T, -1.0, 1.0)
            matrix = 1.0 - similarity
        else:
            raise InvalidParameterError(f"unknown metric kind {metric!r}")
        np.fill_diagonal(matrix, 0.0)
        matrix = np.maximum(matrix, 0.0)
        # Enforce exact symmetry despite floating point noise.
        matrix = (matrix + matrix.T) / 2.0
        return cls(matrix, copy=False)

    @classmethod
    def zeros(cls, n: int) -> "DistanceMatrix":
        """An all-zero 'metric' (useful for pure quality maximization tests)."""
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        return cls(np.zeros((n, n)), copy=False)

    def restrict(self, elements: Iterable[Element]) -> "DistanceMatrix":
        """Return the sub-matrix induced by the given elements (re-indexed)."""
        idx = np.fromiter(elements, dtype=int)
        return DistanceMatrix(self._matrix[np.ix_(idx, idx)], copy=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceMatrix(n={self.n})"


def as_distance_matrix(metric: Metric, *, copy: Optional[bool] = None) -> DistanceMatrix:
    """Coerce any :class:`Metric` into a :class:`DistanceMatrix`.

    Matrix-backed metrics are returned as-is unless ``copy`` is ``True``.
    """
    if isinstance(metric, DistanceMatrix):
        return metric.copy() if copy else metric
    return DistanceMatrix(metric.to_matrix(), copy=False)
