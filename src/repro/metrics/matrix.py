"""Explicit pairwise-distance matrices.

:class:`DistanceMatrix` is the work-horse representation: the synthetic and
LETOR-like generators produce one, the dynamic-update engine mutates one, and
every other metric can be materialized into one via
:meth:`repro.metrics.base.Metric.to_matrix`.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError, MetricError
from repro.metrics.base import Metric
from repro.utils.validation import check_candidate_pool, check_finite_array


class DistanceMatrix(Metric):
    """A metric backed by an explicit symmetric ``n x n`` matrix.

    Parameters
    ----------
    matrix:
        Square array of pairwise distances.  The constructor symmetrizes
        nothing: a non-symmetric or negative input raises
        :class:`~repro.exceptions.MetricError`.
    validate_triangle:
        When ``True`` the constructor additionally verifies the triangle
        inequality exactly (O(n^3)); useful in tests, too slow for large
        instances.
    copy:
        Whether to copy the input array.  The dynamic-update engine passes
        ``copy=False`` to share storage it is allowed to mutate.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        validate_triangle: bool = False,
        copy: bool = True,
    ) -> None:
        array = np.array(matrix, dtype=float, copy=copy)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise InvalidParameterError(
                f"distance matrix must be square, got shape {array.shape}"
            )
        # Finiteness first: NaN would fail the symmetry allclose with a
        # misleading message, and +inf would sail straight through the
        # non-negativity check into argmax-based selection.
        check_finite_array("distance matrix", array)
        if not np.allclose(array, array.T, atol=1e-12):
            raise MetricError("distance matrix must be symmetric")
        if np.any(array < 0):
            raise MetricError("distances must be non-negative")
        if not np.allclose(np.diag(array), 0.0, atol=1e-12):
            raise MetricError("self-distances d(u, u) must be zero")
        self._matrix = array
        # Shared read-only view handed to the kernel layer: mutations must go
        # through set_distance/array so the metric axioms stay enforceable.
        self._matrix_view = array.view()
        self._matrix_view.flags.writeable = False
        if validate_triangle:
            from repro.metrics.validation import check_metric

            check_metric(self)

    # ------------------------------------------------------------------
    # Metric interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    def distance(self, u: Element, v: Element) -> float:
        return float(self._matrix[u, v])

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        if idx.size == 0:
            return np.zeros(0, dtype=float)
        return self._matrix[u, idx]

    def row(self, u: Element) -> np.ndarray:
        return self._matrix_view[u]

    def matrix_view(self) -> np.ndarray:
        return self._matrix_view

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        return self._matrix[np.ix_(row_idx, col_idx)]

    @property
    def parallel_safe(self) -> bool:
        return True

    def to_matrix(self) -> np.ndarray:
        return self._matrix.copy()

    # ------------------------------------------------------------------
    # Mutation (dynamic updates, Section 6)
    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """The underlying matrix (mutations must preserve metric axioms)."""
        return self._matrix

    def set_distance(self, u: Element, v: Element, value: float) -> None:
        """Set ``d(u, v) = d(v, u) = value`` (used by distance perturbations)."""
        if u == v:
            raise InvalidParameterError("cannot change a self-distance")
        if value < 0:
            raise MetricError(f"distances must be non-negative, got {value}")
        self._matrix[u, v] = value
        self._matrix[v, u] = value

    def set_distances(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Vectorized batch of :meth:`set_distance` writes.

        One fancy-indexed symmetric assignment for a whole tick of distance
        events; with a repeated pair the last assignment wins, matching a
        sequential loop.
        """
        us = np.asarray(us, dtype=int)
        vs = np.asarray(vs, dtype=int)
        vals = np.asarray(values, dtype=float)
        if us.shape != vs.shape or us.shape != vals.shape:
            raise InvalidParameterError("us, vs and values must have matching shapes")
        if np.any(us == vs):
            raise InvalidParameterError("cannot change a self-distance")
        check_finite_array("distances", vals)
        if np.any(vals < 0):
            raise MetricError("distances must be non-negative")
        self._matrix[us, vs] = vals
        self._matrix[vs, us] = vals

    def copy(self) -> "DistanceMatrix":
        """Return an independent copy of this matrix."""
        return DistanceMatrix(self._matrix, copy=True)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_points(
        cls, points: np.ndarray, *, metric: str = "euclidean"
    ) -> "DistanceMatrix":
        """Build the matrix of pairwise distances between row vectors.

        Parameters
        ----------
        points:
            Array of shape ``(n, d)``.
        metric:
            Either ``"euclidean"`` or ``"cosine"``.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2:
            raise InvalidParameterError("points must be a 2-D array")
        if metric == "euclidean":
            diff = points[:, None, :] - points[None, :, :]
            matrix = np.sqrt(np.sum(diff * diff, axis=-1))
        elif metric == "cosine":
            norms = np.linalg.norm(points, axis=1)
            if np.any(norms == 0):
                raise InvalidParameterError(
                    "cosine distance requires non-zero feature vectors"
                )
            unit = points / norms[:, None]
            similarity = np.clip(unit @ unit.T, -1.0, 1.0)
            matrix = 1.0 - similarity
        else:
            raise InvalidParameterError(f"unknown metric kind {metric!r}")
        np.fill_diagonal(matrix, 0.0)
        matrix = np.maximum(matrix, 0.0)
        # Enforce exact symmetry despite floating point noise.
        matrix = (matrix + matrix.T) / 2.0
        return cls(matrix, copy=False)

    @classmethod
    def zeros(cls, n: int) -> "DistanceMatrix":
        """An all-zero 'metric' (useful for pure quality maximization tests)."""
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        return cls(np.zeros((n, n)), copy=False)

    def restrict(self, elements: Iterable[Element]) -> "DistanceMatrix":
        """Return the sub-matrix induced by the given elements (re-indexed).

        A pool forming a uniform-stride range (any contiguous ``a..b``, or
        every ``s``-th element of one) returns a **copy-free view** into this
        matrix's storage: it costs O(1), reflects later mutations of the
        parent, and is read-only.  Any other pool materializes an independent
        ``k×k`` submatrix copy.  Both paths skip the constructor's axiom
        checks — a principal submatrix of a valid metric is itself valid.
        """
        idx = check_candidate_pool(elements, self.n)
        block = self._strided_block(idx)
        if block is None:
            block = self._matrix[np.ix_(idx, idx)]
        return DistanceMatrix._from_trusted(block)

    def _strided_block(self, idx: np.ndarray) -> Optional[np.ndarray]:
        """A basic-slicing view covering ``idx``, or ``None`` if fancy indexing
        (and hence a copy) is unavoidable."""
        if idx.size == 0:
            return self._matrix[:0, :0]
        if idx.size == 1:
            u = int(idx[0])
            return self._matrix[u : u + 1, u : u + 1]
        step = int(idx[1] - idx[0])
        if step < 1:
            return None
        start, stop = int(idx[0]), int(idx[-1]) + 1
        if not np.array_equal(idx, np.arange(start, stop, step)):
            return None
        return self._matrix[start:stop:step, start:stop:step]

    @staticmethod
    def _from_trusted(array: np.ndarray) -> "DistanceMatrix":
        """Wrap an already-valid (sub)matrix without re-running axiom checks.

        Used by :meth:`restrict`: re-validating a submatrix would cost the
        O(k²) the restriction layer exists to avoid.  Views (shared storage)
        are marked read-only so accidental mutation through the restriction
        fails instead of corrupting the parent metric.
        """
        instance = object.__new__(DistanceMatrix)
        if array.base is not None:
            array = array.view()
            array.flags.writeable = False
        instance._matrix = array
        view = array.view()
        view.flags.writeable = False
        instance._matrix_view = view
        return instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistanceMatrix(n={self.n})"


class GrowableDistanceMatrix(DistanceMatrix):
    """A :class:`DistanceMatrix` with amortized-O(n) element insertion.

    The dynamic engine's storage tier: the matrix lives inside a
    capacity-doubled square buffer, so inserting an element writes one new
    row/column (O(n)) instead of reallocating and copying the full O(n²)
    array per event — reallocation happens only when capacity is exhausted,
    which amortizes to O(n) per insert.

    Deletion is *deactivation*: the slot keeps its index (all live element
    ids stay stable), its row and column are zeroed, and the slot is queued
    for reuse by later inserts (lowest freed id first, so insert/delete
    round trips are deterministic).  :attr:`n` therefore counts **slots**
    (live + retired); callers that must skip retired elements — candidate
    scans, solvers — restrict themselves to :meth:`active_ids`.  A zeroed
    slot can never win a swap/addition argmax (weight 0, distance 0
    everywhere), so kernels operating on the full slot range stay correct.
    """

    def __init__(
        self,
        matrix: np.ndarray,
        *,
        validate_triangle: bool = False,
        copy: bool = True,
    ) -> None:
        super().__init__(matrix, validate_triangle=validate_triangle, copy=copy)
        # The parent set _matrix to the validated n×n array; adopt it as the
        # initial storage (capacity == n) and carve the slot views.
        self._storage = np.ascontiguousarray(self._matrix)
        self._slots = self._storage.shape[0]
        self._active = np.ones(self._slots, dtype=bool)
        self._free: list = []
        self._rebind_views()

    # ------------------------------------------------------------------
    # Storage management
    # ------------------------------------------------------------------
    def _rebind_views(self) -> None:
        self._matrix = self._storage[: self._slots, : self._slots]
        view = self._matrix.view()
        view.flags.writeable = False
        self._matrix_view = view

    @property
    def capacity(self) -> int:
        """Allocated slot capacity (grows by doubling)."""
        return self._storage.shape[0]

    def _ensure_capacity(self, slots: int) -> None:
        capacity = self._storage.shape[0]
        if slots <= capacity:
            return
        new_capacity = max(2 * capacity, slots, 4)
        storage = np.zeros((new_capacity, new_capacity), dtype=float)
        storage[: self._slots, : self._slots] = self._matrix
        self._storage = storage
        self._active = np.concatenate(
            [self._active, np.zeros(new_capacity - self._active.size, dtype=bool)]
        )[:new_capacity]
        self._rebind_views()

    # ------------------------------------------------------------------
    # Active-set accounting
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of live (non-retired) elements."""
        return int(self._active[: self._slots].sum())

    def active_ids(self) -> np.ndarray:
        """Sorted ids of the live elements."""
        return np.nonzero(self._active[: self._slots])[0]

    @property
    def active_mask(self) -> np.ndarray:
        """Read-only boolean liveness mask over the slot range."""
        view = self._active[: self._slots].view()
        view.flags.writeable = False
        return view

    def is_active(self, element: Element) -> bool:
        """Whether ``element`` is a live slot."""
        return 0 <= element < self._slots and bool(self._active[element])

    # ------------------------------------------------------------------
    # Mutation: insert / deactivate
    # ------------------------------------------------------------------
    def insert(self, distances: np.ndarray) -> Element:
        """Add an element and return its id (a reused slot or a fresh one).

        ``distances`` is the new element's distance to every existing slot
        (length :attr:`n`); entries at retired slots are ignored and stored
        as 0.  Freed slots are reused lowest-id-first; otherwise a new slot
        is appended, doubling the buffer when capacity runs out.
        """
        row = np.asarray(distances, dtype=float)
        if row.ndim != 1 or row.shape[0] != self._slots:
            raise InvalidParameterError(
                f"insert needs a distance row of length {self._slots}, "
                f"got shape {row.shape}"
            )
        check_finite_array("insert distances", row)
        if np.any(row < 0):
            raise MetricError("distances must be non-negative")
        row = np.where(self._active[: self._slots], row, 0.0)
        if self._free:
            slot = self._free.pop(0)
        else:
            slot = self._slots
            self._ensure_capacity(self._slots + 1)
            self._slots += 1
            self._rebind_views()
        self._matrix[slot, :] = 0.0
        self._matrix[:, slot] = 0.0
        self._matrix[slot, : row.size] = row
        self._matrix[: row.size, slot] = row
        self._matrix[slot, slot] = 0.0
        self._active[slot] = True
        return int(slot)

    def deactivate(self, elements: Iterable[Element]) -> None:
        """Retire elements: zero their rows/columns and queue slots for reuse."""
        idx = np.asarray(list(elements), dtype=int)
        if idx.size == 0:
            return
        if np.any((idx < 0) | (idx >= self._slots)) or not np.all(self._active[idx]):
            raise InvalidParameterError("can only deactivate live elements")
        self._matrix[idx, :] = 0.0
        self._matrix[:, idx] = 0.0
        self._active[idx] = False
        self._free = sorted(set(self._free) | set(idx.tolist()))

    def copy(self) -> "GrowableDistanceMatrix":
        """Independent copy preserving slot layout and the free list."""
        clone = GrowableDistanceMatrix(self._matrix, copy=True)
        clone._active[: self._slots] = self._active[: self._slots]
        clone._free = list(self._free)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrowableDistanceMatrix(active={self.active_count}, "
            f"slots={self._slots}, capacity={self.capacity})"
        )


def as_distance_matrix(
    metric: Metric, *, copy: Optional[bool] = None
) -> DistanceMatrix:
    """Coerce any :class:`Metric` into a :class:`DistanceMatrix`.

    Matrix-backed metrics are returned as-is unless ``copy`` is ``True``.
    """
    if isinstance(metric, DistanceMatrix):
        return metric.copy() if copy else metric
    return DistanceMatrix(metric.to_matrix(), copy=False)
