"""Set-distance aggregates and their incremental maintenance.

The paper's notation (Section 4):

* ``d(S)   = Σ_{ {u,v} ⊆ S } d(u, v)``          — internal dispersion of S
* ``d(S,T) = Σ_{u ∈ S, v ∈ T} d(u, v)``          — cross dispersion (disjoint S, T)
* ``d_u(S) = Σ_{v ∈ S} d(u, v)``                 — marginal dispersion of adding u

:class:`MarginalDistanceTracker` maintains ``d_u(S)`` for every ``u`` while
elements are added to / removed from ``S``, giving O(n) per update and hence
the O(np) total greedy running time the paper claims (the Birnbaum–Goldman
bookkeeping observation quoted after Theorem 1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.metrics.base import Metric


def set_distance(metric: Metric, subset: Iterable[Element]) -> float:
    """Return ``d(S) = Σ_{ {u,v} ⊆ S } d(u, v)``."""
    elements = list(dict.fromkeys(subset))
    total = 0.0
    for i, u in enumerate(elements):
        for v in elements[i + 1 :]:
            total += metric.distance(u, v)
    return total


def set_cross_distance(
    metric: Metric, first: Iterable[Element], second: Iterable[Element]
) -> float:
    """Return ``d(S, T) = Σ_{u ∈ S, v ∈ T} d(u, v)`` for disjoint ``S`` and ``T``."""
    first_elements = list(dict.fromkeys(first))
    second_elements = set(second)
    if second_elements & set(first_elements):
        raise InvalidParameterError("set_cross_distance requires disjoint sets")
    total = 0.0
    for u in first_elements:
        for v in second_elements:
            total += metric.distance(u, v)
    return total


def marginal_distance(metric: Metric, element: Element, subset: Iterable[Element]) -> float:
    """Return ``d_u(S) = Σ_{v ∈ S} d(u, v)`` (``u`` need not be outside S)."""
    return float(sum(metric.distance(element, v) for v in subset if v != element))


class MarginalDistanceTracker:
    """Incrementally maintained marginals ``d_u(S)`` for every element ``u``.

    The tracker stores a vector ``margins`` with ``margins[u] = d_u(S)`` for
    the current set ``S``.  Adding or removing an element updates the whole
    vector in O(n) using one row of the distance structure, and the internal
    dispersion ``d(S)`` is maintained alongside.

    Example
    -------
    >>> import numpy as np
    >>> from repro.metrics import DistanceMatrix
    >>> metric = DistanceMatrix(np.array([[0., 1., 2.], [1., 0., 1.5], [2., 1.5, 0.]]))
    >>> tracker = MarginalDistanceTracker(metric)
    >>> tracker.add(0)
    >>> tracker.marginal(1)
    1.0
    >>> tracker.add(1)
    >>> tracker.internal_dispersion
    1.0
    >>> tracker.marginal(2)
    3.5
    """

    def __init__(self, metric: Metric, initial: Optional[Iterable[Element]] = None) -> None:
        self._metric = metric
        self._margins = np.zeros(metric.n, dtype=float)
        self._members: Set[Element] = set()
        self._dispersion = 0.0
        if initial is not None:
            for element in initial:
                self.add(element)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset:
        """The current set ``S``."""
        return frozenset(self._members)

    @property
    def internal_dispersion(self) -> float:
        """``d(S)`` for the current set."""
        return self._dispersion

    def marginal(self, element: Element) -> float:
        """``d_element(S)`` — total distance from ``element`` to the current set."""
        return float(self._margins[element])

    def marginals(self) -> np.ndarray:
        """The full vector of marginals (a copy)."""
        return self._margins.copy()

    def __contains__(self, element: Element) -> bool:
        return element in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, element: Element) -> None:
        """Add ``element`` to ``S``, updating all marginals in O(n)."""
        if element in self._members:
            raise InvalidParameterError(f"element {element} is already in the set")
        self._dispersion += float(self._margins[element])
        row = self._metric.distances_from(element, range(self._metric.n))
        self._margins += row
        self._members.add(element)

    def remove(self, element: Element) -> None:
        """Remove ``element`` from ``S``, updating all marginals in O(n)."""
        if element not in self._members:
            raise InvalidParameterError(f"element {element} is not in the set")
        row = self._metric.distances_from(element, range(self._metric.n))
        self._margins -= row
        self._members.remove(element)
        self._dispersion -= float(self._margins[element])

    def swap(self, incoming: Element, outgoing: Element) -> None:
        """Replace ``outgoing`` by ``incoming`` (the single-swap primitive)."""
        self.remove(outgoing)
        self.add(incoming)

    def rebuild(self, subset: Iterable[Element]) -> None:
        """Reset the tracker to an arbitrary set (O(n·|S|))."""
        self._margins[:] = 0.0
        self._members = set()
        self._dispersion = 0.0
        for element in subset:
            self.add(element)
