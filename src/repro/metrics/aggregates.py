"""Set-distance aggregates and their incremental maintenance.

The paper's notation (Section 4):

* ``d(S)   = Σ_{ {u,v} ⊆ S } d(u, v)``          — internal dispersion of S
* ``d(S,T) = Σ_{u ∈ S, v ∈ T} d(u, v)``          — cross dispersion (disjoint S, T)
* ``d_u(S) = Σ_{v ∈ S} d(u, v)``                 — marginal dispersion of adding u

:class:`MarginalDistanceTracker` maintains ``d_u(S)`` for every ``u`` while
elements are added to / removed from ``S``, giving O(n) per update and hence
the O(np) total greedy running time the paper claims (the Birnbaum–Goldman
bookkeeping observation quoted after Theorem 1).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError
from repro.metrics.base import Metric


def set_distance(metric: Metric, subset: Iterable[Element]) -> float:
    """Return ``d(S) = Σ_{ {u,v} ⊆ S } d(u, v)``."""
    elements = list(dict.fromkeys(subset))
    if len(elements) < 2:
        return 0.0
    matrix = metric.matrix_view()
    if matrix is not None:
        idx = np.fromiter(elements, dtype=int)
        # The diagonal is zero, so the full submatrix sum double-counts
        # exactly the off-diagonal pairs.
        return float(matrix[np.ix_(idx, idx)].sum() / 2.0)
    total = 0.0
    for i, u in enumerate(elements):
        for v in elements[i + 1 :]:
            total += metric.distance(u, v)
    return total


def set_cross_distance(
    metric: Metric, first: Iterable[Element], second: Iterable[Element]
) -> float:
    """Return ``d(S, T) = Σ_{u ∈ S, v ∈ T} d(u, v)`` for disjoint ``S`` and ``T``."""
    first_elements = list(dict.fromkeys(first))
    second_elements = set(second)
    if second_elements & set(first_elements):
        raise InvalidParameterError("set_cross_distance requires disjoint sets")
    if not first_elements or not second_elements:
        return 0.0
    matrix = metric.matrix_view()
    if matrix is not None:
        first_idx = np.fromiter(first_elements, dtype=int)
        second_idx = np.fromiter(second_elements, dtype=int)
        return float(matrix[np.ix_(first_idx, second_idx)].sum())
    total = 0.0
    for u in first_elements:
        for v in second_elements:
            total += metric.distance(u, v)
    return total


def marginal_distance(
    metric: Metric, element: Element, subset: Iterable[Element]
) -> float:
    """Return ``d_u(S) = Σ_{v ∈ S} d(u, v)`` (``u`` need not be outside S)."""
    matrix = metric.matrix_view()
    if matrix is not None:
        # Iterate the raw subset (duplicates and all) so both tiers agree;
        # d(u, u) == 0, so ``element`` itself contributes nothing.
        idx = np.fromiter(subset, dtype=int)
        if idx.size == 0:
            return 0.0
        return float(matrix[element, idx].sum())
    return float(sum(metric.distance(element, v) for v in subset if v != element))


class MarginalDistanceTracker:
    """Incrementally maintained marginals ``d_u(S)`` for every element ``u``.

    The tracker stores a vector ``margins`` with ``margins[u] = d_u(S)`` for
    the current set ``S``.  Adding or removing an element updates the whole
    vector in O(n) using one row of the distance structure, and the internal
    dispersion ``d(S)`` is maintained alongside.

    Example
    -------
    >>> import numpy as np
    >>> from repro.metrics import DistanceMatrix
    >>> metric = DistanceMatrix(np.array([[0., 1., 2.], [1., 0., 1.5], [2., 1.5, 0.]]))
    >>> tracker = MarginalDistanceTracker(metric)
    >>> tracker.add(0)
    >>> tracker.marginal(1)
    1.0
    >>> tracker.add(1)
    >>> tracker.internal_dispersion
    1.0
    >>> tracker.marginal(2)
    3.5
    """

    def __init__(
        self, metric: Metric, initial: Optional[Iterable[Element]] = None
    ) -> None:
        self._metric = metric
        self._margins = np.zeros(metric.n, dtype=float)
        self._margins_view = self._margins.view()
        self._margins_view.flags.writeable = False
        self._members: Set[Element] = set()
        self._dispersion = 0.0
        if initial is not None:
            for element in initial:
                self.add(element)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def members(self) -> frozenset:
        """The current set ``S``."""
        return frozenset(self._members)

    @property
    def internal_dispersion(self) -> float:
        """``d(S)`` for the current set."""
        return self._dispersion

    def marginal(self, element: Element) -> float:
        """``d_element(S)`` — total distance from ``element`` to the current set."""
        return float(self._margins[element])

    def marginals(self) -> np.ndarray:
        """The full vector of marginals (a copy)."""
        return self._margins.copy()

    def marginals_view(self) -> np.ndarray:
        """A read-only, copy-free view of the marginal vector.

        The view reflects subsequent updates, which is exactly what the
        per-iteration argmax in the greedy and swap kernels wants — no O(n)
        allocation per selection step.
        """
        return self._margins_view

    def __contains__(self, element: Element) -> bool:
        return element in self._members

    def __len__(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add(self, element: Element) -> None:
        """Add ``element`` to ``S``, updating all marginals in O(n)."""
        if element in self._members:
            raise InvalidParameterError(f"element {element} is already in the set")
        self._dispersion += float(self._margins[element])
        self._margins += self._metric.row(element)
        self._members.add(element)

    def remove(self, element: Element) -> None:
        """Remove ``element`` from ``S``, updating all marginals in O(n)."""
        if element not in self._members:
            raise InvalidParameterError(f"element {element} is not in the set")
        self._margins -= self._metric.row(element)
        self._members.remove(element)
        self._dispersion -= float(self._margins[element])

    def swap(self, incoming: Element, outgoing: Element) -> None:
        """Replace ``outgoing`` by ``incoming`` (the single-swap primitive)."""
        self.remove(outgoing)
        self.add(incoming)

    def rebuild(self, subset: Iterable[Element]) -> None:
        """Reset the tracker to an arbitrary set (O(n·|S|))."""
        self._margins[:] = 0.0
        self._members = set()
        self._dispersion = 0.0
        for element in subset:
            self.add(element)
