"""Sparse pairwise-distance overrides over a base metric.

:class:`PatchedMetric` answers ``d(u, v)`` from a small override table when
the pair has one, and from the wrapped base metric otherwise.  This is the
representation the sharded dynamic engine uses for distance events at scales
where no ``n × n`` matrix can exist: the base stays a lazy feature metric
(e.g. :class:`~repro.metrics.euclidean.EuclideanMetric` over the live point
rows) and each Type III/IV perturbation becomes one dictionary entry instead
of a matrix write.

Overrides compose with the lazy tier: :meth:`PatchedMetric.restrict_lazy`
re-maps the override table onto the pool and wraps the base's lazy
restriction, so the sharded solver's per-shard sub-metrics observe the
patches without materializing anything.  Nothing here re-checks the triangle
inequality — arbitrary overrides can leave the relaxed-metric regime the
paper's Section 8 discusses, which is the caller's trade-off to make
(:func:`~repro.metrics.validation.pair_triangle_violations` is the cheap
per-change check when validation is wanted).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro._types import Element
from repro.exceptions import InvalidParameterError, MetricError
from repro.metrics.base import Metric

__all__ = ["PatchedMetric"]


class PatchedMetric(Metric):
    """A base metric plus a sparse ``{(u, v): distance}`` override table.

    Parameters
    ----------
    base:
        The wrapped metric supplying every distance without an override.
    overrides:
        Mapping from unordered pairs to replacement distances.  Keys are
        normalized to ``u < v``; values must be finite and non-negative.
    """

    def __init__(
        self,
        base: Metric,
        overrides: Optional[Mapping[Tuple[Element, Element], float]] = None,
    ) -> None:
        self._base = base
        self._overrides: Dict[Tuple[int, int], float] = {}
        # Per-endpoint index for O(1) "does u have patches?" tests on the
        # row/distances_from hot paths.
        self._by_node: Dict[int, Dict[int, float]] = {}
        for (u, v), value in (overrides or {}).items():
            self.set_override(u, v, value)

    # ------------------------------------------------------------------
    # Override table
    # ------------------------------------------------------------------
    @property
    def base(self) -> Metric:
        """The wrapped metric."""
        return self._base

    @property
    def overrides(self) -> Dict[Tuple[int, int], float]:
        """The normalized override table (a copy)."""
        return dict(self._overrides)

    @property
    def num_overrides(self) -> int:
        """Number of overridden pairs."""
        return len(self._overrides)

    def set_override(self, u: Element, v: Element, value: float) -> None:
        """Set ``d(u, v) = d(v, u) = value`` as an override."""
        u, v = int(u), int(v)
        if u == v:
            raise InvalidParameterError("cannot override a self-distance")
        if not (0 <= u < self._base.n and 0 <= v < self._base.n):
            raise InvalidParameterError(
                f"override pair ({u}, {v}) outside the universe [0, {self._base.n})"
            )
        value = float(value)
        if not math.isfinite(value):
            raise MetricError("override distances must be finite")
        if value < 0:
            raise MetricError(f"distances must be non-negative, got {value}")
        if u > v:
            u, v = v, u
        self._overrides[(u, v)] = value
        self._by_node.setdefault(u, {})[v] = value
        self._by_node.setdefault(v, {})[u] = value

    def drop_overrides(self, elements: Iterable[Element]) -> None:
        """Remove every override touching any of ``elements``.

        The dynamic engine calls this when an element is deleted, so a later
        insert reusing the id does not inherit stale patches.
        """
        doomed = {int(e) for e in elements}
        for pair in [p for p in self._overrides if p[0] in doomed or p[1] in doomed]:
            del self._overrides[pair]
            a, b = pair
            self._by_node[a].pop(b, None)
            self._by_node[b].pop(a, None)
            for node in (a, b):
                if not self._by_node.get(node):
                    self._by_node.pop(node, None)

    # ------------------------------------------------------------------
    # Metric interface
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self._base.n

    def distance(self, u: Element, v: Element) -> float:
        key = (u, v) if u < v else (v, u)
        hit = self._overrides.get(key)
        if hit is not None:
            return hit
        return self._base.distance(u, v)

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        idx = np.fromiter(targets, dtype=int)
        out = self._base.distances_from(u, idx)
        patch = self._by_node.get(int(u))
        if patch:
            out = np.array(out, copy=True)
            for i, t in enumerate(idx.tolist()):
                value = patch.get(t)
                if value is not None:
                    out[i] = value
        return out

    def row(self, u: Element) -> np.ndarray:
        out = self._base.row(u)
        patch = self._by_node.get(int(u))
        if patch:
            out = np.array(out, copy=True)
            for t, value in patch.items():
                out[t] = value
        return out

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        out = self._base.block(row_idx, col_idx)
        if self._overrides:
            row_pos: Dict[int, list] = {}
            for i, r in enumerate(row_idx.tolist()):
                row_pos.setdefault(r, []).append(i)
            col_pos: Dict[int, list] = {}
            for j, c in enumerate(col_idx.tolist()):
                col_pos.setdefault(c, []).append(j)
            for (a, b), value in self._overrides.items():
                for x, y in ((a, b), (b, a)):
                    for i in row_pos.get(x, ()):
                        for j in col_pos.get(y, ()):
                            out[i, j] = value
        return out

    def to_matrix(self) -> np.ndarray:
        matrix = self._base.to_matrix()
        for (u, v), value in self._overrides.items():
            matrix[u, v] = value
            matrix[v, u] = value
        return matrix

    def matrix_view(self) -> Optional[np.ndarray]:
        # With patches pending, the base's view would bypass them; only an
        # unpatched wrapper may expose the fast path.
        if self._overrides:
            return None
        return self._base.matrix_view()

    def restrict_lazy(self, elements: Iterable[Element]) -> Optional[Metric]:
        from repro.utils.validation import check_candidate_pool

        pool = check_candidate_pool(elements, self.n)
        lazy = self._base.restrict_lazy(pool)
        if lazy is None:
            return None
        if not self._overrides:
            return lazy
        positions = {int(g): i for i, g in enumerate(pool.tolist())}
        remapped = {
            (positions[a], positions[b]): value
            for (a, b), value in self._overrides.items()
            if a in positions and b in positions
        }
        if not remapped:
            return lazy
        return PatchedMetric(lazy, remapped)

    def restrict(self, elements: Iterable[Element]) -> Metric:
        from repro.metrics.matrix import DistanceMatrix
        from repro.utils.validation import check_candidate_pool

        pool = check_candidate_pool(elements, self.n)
        sub = self._base.restrict(pool)
        positions = {int(g): i for i, g in enumerate(pool.tolist())}
        remapped = {
            (positions[a], positions[b]): value
            for (a, b), value in self._overrides.items()
            if a in positions and b in positions
        }
        if not remapped:
            return sub
        matrix = sub.to_matrix()
        for (a, b), value in remapped.items():
            matrix[a, b] = value
            matrix[b, a] = value
        return DistanceMatrix(matrix, copy=False)

    @property
    def parallel_safe(self) -> bool:
        # Dictionary reads of a table that is not mutated during solves are
        # as safe as the base's array reads.
        return self._base.parallel_safe

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PatchedMetric(n={self.n}, overrides={len(self._overrides)}, "
            f"base={type(self._base).__name__})"
        )
