"""Metric axiom validation.

Exact O(n^3) checks for small instances (tests, the dynamic-update engine's
optional safety mode) and sampled checks for larger ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import MetricError, TriangleInequalityError
from repro.metrics.base import Metric
from repro.utils.rng import SeedLike, make_rng

#: Default numerical tolerance for triangle-inequality checks.
DEFAULT_TOLERANCE = 1e-9

#: Target element count per broadcast block of the triangle check.  Kept
#: small (~8 MB of float64) so the 3-D gap tensor stays cache-resident —
#: larger blocks are memory-bandwidth bound and measurably slower.
_TRIANGLE_BLOCK_ELEMENTS = 1_000_000


def _as_array(metric: Metric) -> np.ndarray:
    """Full distance matrix, through the copy-free view when available."""
    matrix = metric.matrix_view()
    return metric.to_matrix() if matrix is None else matrix


def triangle_violations(
    metric: Metric,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_violations: int = 10,
) -> List[Tuple[int, int, int, float]]:
    """Return up to ``max_violations`` triples violating the triangle inequality.

    Each entry is ``(x, y, z, gap)`` with ``gap = d(x, z) - d(x, y) - d(y, z) > 0``.
    The O(n³) comparisons run as broadcast over blocks of middle vertices
    ``y`` — ``gap[y, x, z] = D[x, z] - D[x, y] - D[y, z]`` on a ``(b, n, n)``
    tensor per block — so the check is usable on realistic instance sizes.
    """
    matrix = _as_array(metric)
    n = matrix.shape[0]
    violations: List[Tuple[int, int, int, float]] = []
    block = max(1, _TRIANGLE_BLOCK_ELEMENTS // max(n * n, 1))
    for start in range(0, n, block):
        ys = np.arange(start, min(start + block, n))
        # d(x, z) <= d(x, y) + d(y, z) for y in the block — one broadcast,
        # subtracting in place to avoid a second block-sized temporary.
        gap = np.subtract(matrix[None, :, :], matrix[:, ys].T[:, :, None])
        gap -= matrix[ys, :][:, None, :]
        if not gap.max() > tolerance:
            continue
        for y_local, x, z in np.argwhere(gap > tolerance):
            y = start + int(y_local)
            if x == y or z == y or x == z:
                continue
            violations.append((int(x), y, int(z), float(gap[y_local, x, z])))
            if len(violations) >= max_violations:
                return violations
    return violations


def pair_triangle_violations(
    metric: Metric,
    u: int,
    v: int,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    max_violations: int = 10,
    elements: Optional[np.ndarray] = None,
) -> List[Tuple[int, int, int, float]]:
    """Triangle violations among the triples containing **both** ``u`` and ``v``.

    The incremental counterpart of :func:`triangle_violations`: when a metric
    satisfied the triangle inequality and then the single distance ``d(u, v)``
    changed, every triple *not* containing both endpoints is untouched, so
    scanning the ``{u, v, y}`` triples — three vectorized inequalities over
    the two affected rows, O(n) — finds a violation iff the full O(n³) scan
    does.  The dynamic engine's ``validate_metric`` mode runs this after each
    distance event instead of the full scan.

    ``elements``, when given, restricts the third vertices ``y`` scanned
    (the engine passes its live ids so retired, zeroed slots are ignored).
    Entries have the same ``(x, y, z, gap)`` shape as
    :func:`triangle_violations`, with ``gap = d(x, z) − d(x, y) − d(y, z)``.
    Unlike the full scan — whose broadcast reports each violating triple in
    both of its ``x ↔ z`` orientations — this returns one orientation per
    triple, so equivalence comparisons should canonicalize on the unordered
    endpoint pair.
    """
    if u == v:
        return []
    row_u = np.asarray(metric.row(u), dtype=float)
    row_v = np.asarray(metric.row(v), dtype=float)
    if elements is None:
        ys = np.arange(row_u.size)
    else:
        ys = np.asarray(elements, dtype=int)
    ys = ys[(ys != u) & (ys != v)]
    if ys.size == 0:
        return []
    d_uv = float(row_u[v])
    du = row_u[ys]
    dv = row_v[ys]
    violations: List[Tuple[int, int, int, float]] = []
    # (x, mid, z) per family; gap = d(x, z) − d(x, mid) − d(mid, z).
    families = (
        (d_uv - du - dv, lambda y: (u, y, v)),  # y between u and v
        (du - d_uv - dv, lambda y: (u, v, y)),  # v between u and y
        (dv - d_uv - du, lambda y: (v, u, y)),  # u between v and y
    )
    for gaps, label in families:
        for i in np.nonzero(gaps > tolerance)[0]:
            x, mid, z = label(int(ys[i]))
            violations.append((x, mid, z, float(gaps[i])))
            if len(violations) >= max_violations:
                return violations
    return violations


def is_metric(metric: Metric, *, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Return ``True`` when the structure satisfies all metric axioms."""
    matrix = _as_array(metric)
    if np.any(matrix < -tolerance):
        return False
    if not np.allclose(matrix, matrix.T, atol=tolerance):
        return False
    if not np.allclose(np.diag(matrix), 0.0, atol=tolerance):
        return False
    return not triangle_violations(metric, tolerance=tolerance, max_violations=1)


def check_metric(metric: Metric, *, tolerance: float = DEFAULT_TOLERANCE) -> None:
    """Raise a descriptive error when any metric axiom fails."""
    matrix = _as_array(metric)
    if np.any(matrix < -tolerance):
        raise MetricError("distances must be non-negative")
    if not np.allclose(matrix, matrix.T, atol=tolerance):
        raise MetricError("distances must be symmetric")
    if not np.allclose(np.diag(matrix), 0.0, atol=tolerance):
        raise MetricError("self-distances must be zero")
    violations = triangle_violations(metric, tolerance=tolerance, max_violations=3)
    if violations:
        x, y, z, gap = violations[0]
        raise TriangleInequalityError(
            f"triangle inequality violated at ({x}, {y}, {z}): "
            f"d({x},{z}) exceeds d({x},{y}) + d({y},{z}) by {gap:.3g} "
            f"({len(violations)}+ violations found)"
        )


def sampled_triangle_check(
    metric: Metric,
    *,
    samples: int = 1000,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: Optional[SeedLike] = None,
) -> bool:
    """Monte-Carlo triangle-inequality check for large instances."""
    n = metric.n
    if n < 3:
        return True
    rng = make_rng(seed)
    for _ in range(samples):
        x, y, z = rng.choice(n, size=3, replace=False)
        if (
            metric.distance(x, z)
            > metric.distance(x, y) + metric.distance(y, z) + tolerance
        ):
            return False
    return True
