"""Discrete metrics: the ``{1, 2}`` metric and uniform-random ``[lo, hi]`` metrics.

Two constructions from the paper live here:

* The **{1, 2} metric** used in Section 3's hardness discussion (distances of
  adjacent nodes are 1, of non-adjacent nodes are 2).  Any symmetric
  assignment of values from ``{1, 2}`` (more generally from ``[c, 2c]``) is
  automatically a metric, because ``d(x, z) ≤ 2c ≤ d(x, y) + d(y, z)``.
* The **uniform-random [1, 2] metric** of Section 7.1's synthetic data sets:
  every pairwise distance is drawn independently from ``U[1, 2]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.metrics.matrix import DistanceMatrix
from repro.utils.rng import SeedLike, make_rng


class DiscreteMetric(DistanceMatrix):
    """A metric whose off-diagonal distances all lie in ``[base, 2·base]``.

    The constructor verifies the range, which is a sufficient condition for
    the triangle inequality, so no O(n^3) check is needed.
    """

    def __init__(self, matrix: np.ndarray, *, base: float = 1.0) -> None:
        array = np.asarray(matrix, dtype=float)
        if base <= 0:
            raise InvalidParameterError("base must be positive")
        off_diagonal = array[~np.eye(array.shape[0], dtype=bool)]
        if off_diagonal.size and (
            np.any(off_diagonal < base - 1e-12)
            or np.any(off_diagonal > 2 * base + 1e-12)
        ):
            raise InvalidParameterError(
                f"off-diagonal distances must lie in [{base}, {2 * base}]"
            )
        super().__init__(array, copy=True)
        self._base = float(base)

    @property
    def base(self) -> float:
        """The lower bound ``c`` of the ``[c, 2c]`` range."""
        return self._base


def one_two_metric(
    adjacency: np.ndarray,
) -> DiscreteMetric:
    """Build the graph-induced ``{1, 2}`` metric of Section 3.

    Adjacent vertices get distance 1, non-adjacent distinct vertices get
    distance 2 (the shortest-path metric of the graph augmented with a
    universal vertex, as in the planted-clique hardness argument).

    Parameters
    ----------
    adjacency:
        Symmetric boolean (or 0/1) adjacency matrix.
    """
    adj = np.asarray(adjacency)
    if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
        raise InvalidParameterError("adjacency must be a square matrix")
    if not np.array_equal(adj, adj.T):
        raise InvalidParameterError("adjacency must be symmetric")
    n = adj.shape[0]
    matrix = np.where(adj.astype(bool), 1.0, 2.0)
    np.fill_diagonal(matrix, 0.0)
    if n == 0:
        matrix = np.zeros((0, 0))
    return DiscreteMetric(matrix, base=1.0)


class UniformRandomMetric(DiscreteMetric):
    """The synthetic metric of Section 7.1: i.i.d. ``U[low, high]`` distances.

    With ``low=1, high=2`` (the paper's setting) every draw lands in
    ``[1, 2]`` so the result is a metric by construction.  Other ranges are
    accepted as long as ``high <= 2 * low``.
    """

    def __init__(
        self,
        n: int,
        *,
        low: float = 1.0,
        high: float = 2.0,
        seed: Optional[SeedLike] = None,
    ) -> None:
        if n < 0:
            raise InvalidParameterError("n must be non-negative")
        if low <= 0 or high < low:
            raise InvalidParameterError("need 0 < low <= high")
        if high > 2 * low + 1e-12:
            raise InvalidParameterError(
                "high must be at most 2*low for the draws to form a metric"
            )
        rng = make_rng(seed)
        matrix = np.zeros((n, n), dtype=float)
        upper = np.triu_indices(n, k=1)
        matrix[upper] = rng.uniform(low, high, size=len(upper[0]))
        matrix = matrix + matrix.T
        super().__init__(matrix, base=low)
