"""Metric-space substrate.

The paper's diversification objective requires a metric distance ``d(·,·)``
over the ground set.  This package provides:

* :class:`~repro.metrics.base.Metric` — the abstract interface algorithms use.
* :class:`~repro.metrics.matrix.DistanceMatrix` — an explicit, mutable
  pairwise-distance matrix (the representation used for dynamic updates).
* Concrete metrics: Euclidean, cosine-distance, the discrete ``{1, 2}`` metric
  the hardness reduction in Section 3 relies on, and the uniform-random
  ``[1, 2]`` metric used for the synthetic experiments.
* :mod:`~repro.metrics.aggregates` — incremental maintenance of set distances
  ``d(S)``, ``d(S, T)`` and per-element marginals ``d_u(S)`` in O(1) per
  update (the Birnbaum–Goldman bookkeeping that makes the greedy run in
  O(np)).
* :mod:`~repro.metrics.validation` — exact and sampled checks of metric axioms
  and of the α-relaxed triangle inequality discussed in Section 8.
"""

from repro.metrics.aggregates import (
    MarginalDistanceTracker,
    set_cross_distance,
    set_distance,
)
from repro.metrics.base import Metric
from repro.metrics.cosine import CosineMetric
from repro.metrics.discrete import DiscreteMetric, UniformRandomMetric, one_two_metric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import DistanceMatrix, GrowableDistanceMatrix
from repro.metrics.overlay import PatchedMetric
from repro.metrics.relaxed import relaxation_parameter, satisfies_relaxed_triangle
from repro.metrics.validation import (
    check_metric,
    is_metric,
    pair_triangle_violations,
    triangle_violations,
)

__all__ = [
    "Metric",
    "DistanceMatrix",
    "GrowableDistanceMatrix",
    "PatchedMetric",
    "EuclideanMetric",
    "CosineMetric",
    "DiscreteMetric",
    "UniformRandomMetric",
    "one_two_metric",
    "MarginalDistanceTracker",
    "set_distance",
    "set_cross_distance",
    "check_metric",
    "is_metric",
    "triangle_violations",
    "pair_triangle_violations",
    "relaxation_parameter",
    "satisfies_relaxed_triangle",
]
