"""Abstract metric interface.

All diversification algorithms in :mod:`repro.core` interact with distances
through this interface, so any structure that can answer ``distance(u, v)``
queries (an explicit matrix, a feature-vector metric, a wrapper around an
external index) can be plugged in.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro._types import Element


class Metric(ABC):
    """A symmetric, non-negative distance over ``{0, ..., n-1}``.

    Subclasses must implement :meth:`distance` and :attr:`n`.  The default
    implementations of the bulk helpers fall back to pairwise queries;
    matrix-backed metrics override them with vectorized versions.

    The interface is three-tier:

    * **Oracle metrics** only answer :meth:`distance` queries; algorithms use
      their reference (loop-based) code paths.
    * **Matrix-backed metrics** additionally expose :meth:`matrix_view` (the
      full ``n x n`` array without a copy) and a cheap :meth:`row`, which the
      vectorized kernels in :mod:`repro.core.kernels` use to replace per-pair
      Python loops with NumPy array operations.
    * **Lazy (block) metrics** answer :meth:`block` requests — arbitrary
      ``rows × cols`` distance blocks computed on demand, never touching the
      global ``n x n`` matrix — and may offer :meth:`restrict_lazy`, a
      copy-light sub-metric that stays lazy.  The sharded core-set solver
      (:mod:`repro.core.sharding`) is built on this tier: it lets ``n`` grow
      to the hundreds of thousands while only ever materializing per-shard
      blocks.
    """

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of elements in the ground set."""

    @abstractmethod
    def distance(self, u: Element, v: Element) -> float:
        """Return ``d(u, v)``.  Must be symmetric with ``d(u, u) == 0``."""

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        """Return the vector of distances from ``u`` to each target."""
        return np.array([self.distance(u, v) for v in targets], dtype=float)

    def row(self, u: Element) -> np.ndarray:
        """Return the full distance row ``(d(u, 0), ..., d(u, n-1))``.

        Matrix-backed metrics return a *view* into their storage, so callers
        must treat the result as read-only.  The default implementation falls
        back to :meth:`distances_from` over the whole ground set.
        """
        return self.distances_from(u, range(self.n))

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        """Return the distance block ``B[i, j] = d(rows[i], cols[j])``.

        The lazy-tier workhorse: callers ask for exactly the sub-block they
        need (a shard's ``k × k`` submatrix, a candidate-to-solution strip)
        and no global ``n × n`` array is ever formed.  Indices may repeat and
        need not be sorted; the result is a fresh array the caller owns.

        The default implementation performs one :meth:`distances_from` sweep
        per row — vectorized for feature metrics, an O(|rows|·|cols|) oracle
        loop otherwise.  :class:`~repro.metrics.euclidean.EuclideanMetric` and
        :class:`~repro.metrics.cosine.CosineMetric` override it with chunked
        array implementations whose peak memory stays bounded regardless of
        block shape.
        """
        row_idx = np.asarray(rows, dtype=int)
        col_idx = np.asarray(cols, dtype=int)
        out = np.empty((row_idx.size, col_idx.size), dtype=float)
        for i, u in enumerate(row_idx):
            out[i] = self.distances_from(int(u), col_idx)
        return out

    def restrict_lazy(self, elements: Iterable[Element]) -> Optional["Metric"]:
        """Return a *lazy* sub-metric on ``elements``, or ``None``.

        Unlike :meth:`restrict` — which may materialize the induced ``k × k``
        matrix — a lazy restriction keeps computing distances on demand from
        O(k) state (e.g. a slice of the feature matrix).  The sharded solver
        prefers this for algorithms that never need the full shard matrix.
        Metrics without a cheap lazy form return ``None`` (the default) and
        callers fall back to :meth:`restrict`.
        """
        return None

    @property
    def parallel_safe(self) -> bool:
        """Whether concurrent reads from multiple threads are safe.

        ``True`` only when every distance query is a pure read of immutable
        NumPy state (explicit matrices, feature-vector metrics), which is what
        the thread-pooled shard map in :mod:`repro.core.sharding` and the
        batched front end require.  Arbitrary user oracles make no such
        promise, so the base default is ``False``.
        """
        return False

    def matrix_view(self) -> Optional[np.ndarray]:
        """Return the underlying ``n x n`` matrix without copying, or ``None``.

        This is the fast-path hook of the two-tier protocol: when it returns
        an array, the vectorized kernels in :mod:`repro.core.kernels` operate
        directly on it (submatrix sums, masked argmax scans); when it returns
        ``None`` the algorithms use their loop-based reference paths.  The
        returned array is shared storage — callers must never mutate it.
        """
        return None

    def to_matrix(self) -> np.ndarray:
        """Materialize the full ``n x n`` distance matrix."""
        n = self.n
        matrix = np.zeros((n, n), dtype=float)
        for u in range(n):
            for v in range(u + 1, n):
                d = self.distance(u, v)
                matrix[u, v] = d
                matrix[v, u] = d
        return matrix

    def restrict(self, elements: Iterable[Element]) -> "Metric":
        """Return the sub-metric induced by ``elements``, re-indexed from 0.

        Local element ``i`` of the restricted metric is ``pool[i]`` in this
        metric, where ``pool`` is ``elements`` deduplicated in first-seen
        order.  The default implementation materializes the induced ``k×k``
        submatrix through pairwise queries (O(k²) oracle calls, never O(n²));
        matrix-backed metrics override it with slicing, which is copy-free
        for uniform-stride pools.
        """
        from repro.metrics.matrix import DistanceMatrix
        from repro.utils.validation import check_candidate_pool

        pool = check_candidate_pool(elements, self.n).tolist()
        size = len(pool)
        matrix = np.zeros((size, size), dtype=float)
        for i, u in enumerate(pool):
            row = self.distances_from(u, pool[i + 1 :])
            matrix[i, i + 1 :] = row
            matrix[i + 1 :, i] = row
        return DistanceMatrix(matrix, copy=False)

    def pairs(self) -> Iterator[Tuple[Element, Element, float]]:
        """Yield every unordered pair ``(u, v, d(u, v))`` with ``u < v``."""
        n = self.n
        for u in range(n):
            for v in range(u + 1, n):
                yield u, v, self.distance(u, v)

    def elements(self) -> range:
        """Return the range of valid element indices."""
        return range(self.n)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"
