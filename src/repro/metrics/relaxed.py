"""α-relaxed triangle inequality utilities.

Section 8 of the paper discusses Sydow's extension: if the distance satisfies
``d(x, y) + d(y, z) >= α · d(x, z)`` for some ``α <= 1`` (a *relaxed* metric),
the matching-based algorithm achieves a ``2/α``-style guarantee.  These
helpers measure the best (largest) ``α`` a given distance structure supports,
which the experiment harness uses to report how far a cosine-distance corpus
is from being a true metric.

Note on conventions: the paper writes the relaxation as
``d(x, y) + d(y, z) >= α d(x, z)`` with ``α >= 1`` meaning a *stronger*
inequality; here :func:`relaxation_parameter` returns

``alpha* = min over triples of (d(x, y) + d(y, z)) / d(x, z)``

so ``alpha* >= 1`` certifies a true metric and ``alpha* < 1`` quantifies the
violation.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.base import Metric


def relaxation_parameter(metric: Metric, *, tolerance: float = 1e-12) -> float:
    """Return the largest α with ``d(x,y) + d(y,z) >= α·d(x,z)`` for all triples.

    Returns ``float('inf')`` for instances with fewer than three elements or
    with no positive distances (the inequality is vacuous there).
    """
    matrix = metric.to_matrix()
    n = matrix.shape[0]
    if n < 3:
        return float("inf")
    best = float("inf")
    for y in range(n):
        sums = matrix[:, y][:, None] + matrix[y, :][None, :]
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = np.where(matrix > tolerance, sums / matrix, np.inf)
        # Exclude degenerate triples involving y itself or x == z.
        ratio[y, :] = np.inf
        ratio[:, y] = np.inf
        np.fill_diagonal(ratio, np.inf)
        best = min(best, float(ratio.min()))
    return best


def satisfies_relaxed_triangle(
    metric: Metric, alpha: float, *, tolerance: float = 1e-9
) -> bool:
    """Check ``d(x, y) + d(y, z) >= alpha · d(x, z)`` for all triples."""
    return relaxation_parameter(metric) >= alpha - tolerance
