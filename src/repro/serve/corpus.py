"""Persistent prepared corpora for the serving tier.

A serving process answers a long stream of queries against one fixed
universe.  Everything per-corpus — materializing (or deliberately *not*
materializing) the metric, hoisting modular weights into one array, warming
the submodular gain-state caches, building restriction views for hot pools —
should be paid once, not per request.  :class:`PreparedCorpus` owns exactly
that state:

* the **metric tier decision**: matrix-backed corpora (and small oracle
  corpora, materialized once) restrict to copy-free submatrix views; huge
  feature-backed corpora stay on the lazy tier
  (:meth:`~repro.metrics.base.Metric.restrict_lazy`), so a pool of ``k``
  candidates costs O(k·d) — never O(n²);
* the **modular weight vector**, derived once even for view-less modular
  families (the same hoist :func:`~repro.core.batch.solve_many` does);
* the **warm gain state** for non-modular quality: building one empty
  :meth:`~repro.functions.base.SetFunction.gain_state` at prepare time runs
  the construction-time work the batched-gains protocol caches (coverage
  incidence matrices, log-det validation probes), so the first real query
  pays none of it;
* an **LRU cache of restriction views** keyed by the (deduplicated) pool, so
  hot pools reuse their sub-instance across batch windows.

:meth:`PreparedCorpus.solve_window` is the synchronous window executor the
async :class:`~repro.serve.server.Server` drives off-loop; it delegates
pool-scoped queries to :func:`~repro.core.batch.solve_window` and
full-universe queries on sharded corpora to
:func:`~repro.core.sharding.solve_sharded`.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro._types import Element
from repro.core import kernels
from repro.core.batch import WindowQuery, solve_window
from repro.core.checkpoint import (
    SNAPSHOT_FORMAT_VERSION,
    check_snapshot_version,
    load_checkpoint,
    save_checkpoint,
    universe_fingerprint,
)
from repro.core.local_search import LocalSearchConfig
from repro.core.objective import Objective
from repro.core.restriction import Restriction
from repro.core.result import SolverResult
from repro.core.sharding import sub_metric
from repro.exceptions import InvalidParameterError
from repro.functions.base import GainState, SetFunction
from repro.functions.modular import ModularFunction
from repro.matroids.base import Matroid
from repro.metrics.base import Metric
from repro.metrics.matrix import as_distance_matrix
from repro.utils.deadline import Deadline
from repro.utils.validation import check_candidate_pool

__all__ = ["CorpusSnapshot", "PreparedCorpus", "ServeQuery"]

#: Largest universe the corpus will materialize O(n²) distances for when the
#: caller does not decide (8192² float64 ≈ 0.5 GB).  Beyond this the corpus
#: stays on the lazy tier and per-pool work is O(k·d).
AUTO_MATERIALIZE_CAP = 8192

#: Default capacity of the restriction-view LRU cache.
DEFAULT_CACHE_SIZE = 256


@dataclass
class ServeQuery:
    """One serving request, before pool resolution.

    The user-facing sibling of :class:`~repro.core.batch.WindowQuery`:
    instead of a pre-built restriction it carries the raw ``pool`` (corpus
    element indices, or ``None`` for the full universe) plus the per-request
    knobs.  ``weights``, when given, holds one modular weight per distinct
    pool element in pool order — per-request relevance scores over a shared
    metric.  ``matroid`` is a *corpus-level* constraint; it is restricted to
    the pool during window execution (and is unsupported for full-universe
    queries on sharded corpora, where the core-set argument is
    cardinality-specific).
    """

    pool: Optional[Sequence[Element]] = None
    p: Optional[int] = None
    matroid: Optional[Matroid] = None
    weights: Optional[Sequence[float]] = None
    algorithm: str = "auto"
    local_search_config: Optional[LocalSearchConfig] = None
    deadline: Optional[Deadline] = None
    tag: Any = field(default=None)


@dataclass(frozen=True)
class CorpusSnapshot:
    """Pickle-safe snapshot of a :class:`PreparedCorpus`.

    Captures the *prepared* quality and metric (hoisted weights, materialized
    matrix when the corpus materialized one) plus the configuration, so a
    restarted serving process rebuilds its corpus warm — no re-derivation, no
    re-materialization — via :meth:`PreparedCorpus.restore`.

    ``format_version`` and ``fingerprint`` guard restores the same way the
    solver and dynamic snapshots are guarded: a snapshot from a newer format
    or a different corpus raises
    :class:`~repro.exceptions.SnapshotVersionError` instead of rebuilding
    silently-wrong state.
    """

    quality: SetFunction
    metric: Metric
    tradeoff: float
    config: Dict[str, Any] = field(default_factory=dict)
    format_version: int = SNAPSHOT_FORMAT_VERSION
    fingerprint: Optional[str] = None

    def save(self, path: str, *, durable: bool = False) -> None:
        """Pickle the snapshot to ``path``.

        With ``durable=True`` the file is written atomically (temp file +
        fsync + rename) inside a checksummed frame, so a crash mid-save
        leaves the previous snapshot intact and later bit rot is detected on
        load rather than unpickled into garbage.
        """
        if durable:
            from repro.durability.snapshot import write_framed

            write_framed(path, pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL))
        else:
            save_checkpoint(self, path)

    @staticmethod
    def load(path: str) -> "CorpusSnapshot":
        """Load a snapshot previously written by :meth:`save`.

        Detects the durable framed format by its magic prefix, so both plain
        and ``durable=True`` snapshots load transparently.
        """
        with open(path, "rb") as handle:
            prefix = handle.read(8)
        from repro.durability.snapshot import is_framed_snapshot, read_framed

        if is_framed_snapshot(prefix):
            snapshot = pickle.loads(read_framed(path))
            if not isinstance(snapshot, CorpusSnapshot):
                raise InvalidParameterError(
                    f"{path!r} holds a {type(snapshot).__name__}, "
                    "not a CorpusSnapshot"
                )
        else:
            snapshot = load_checkpoint(path, CorpusSnapshot)
        return check_snapshot_version(snapshot, source=repr(path))


class PreparedCorpus:
    """A fixed universe prepared for high-QPS query serving.

    Parameters
    ----------
    quality, metric, tradeoff:
        The corpus instance ``(f, d, λ)`` every query solves against.
    materialize:
        Whether to materialize an oracle metric into one shared
        :class:`~repro.metrics.matrix.DistanceMatrix` at prepare time.
        Default ``None`` decides automatically: metrics that already expose a
        matrix view stay as they are, sharded corpora never materialize, and
        otherwise universes up to :data:`AUTO_MATERIALIZE_CAP` elements are
        materialized (amortized over the corpus lifetime) while larger ones
        stay lazy.
    materialize_pools:
        When the corpus is *not* materialized, whether each pool restriction
        materializes its O(k²) distance block (vectorized kernels; what
        swap-scan algorithms want) instead of staying on the O(k·d) lazy
        slice (what greedy/CELF want).  Default ``False``.
    shards, shard_size, shard_workers, shard_executor:
        Sharded core-set configuration for **full-universe** queries
        (``pool=None``): they run through
        :func:`~repro.core.sharding.solve_sharded` with these knobs.
        Pool-scoped queries never shard — restriction is already O(k).
    cache_size:
        Capacity of the pool-keyed restriction LRU cache (0 disables it).
    warm:
        Build the empty gain state of a non-modular quality at prepare time
        so its construction-time caches are hot before the first query.
    """

    def __init__(
        self,
        quality: SetFunction,
        metric: Metric,
        *,
        tradeoff: float,
        materialize: Optional[bool] = None,
        materialize_pools: bool = False,
        shards: Optional[int] = None,
        shard_size: Optional[int] = None,
        shard_workers: Optional[int] = None,
        shard_executor: str = "thread",
        cache_size: int = DEFAULT_CACHE_SIZE,
        warm: bool = True,
    ) -> None:
        if cache_size < 0:
            raise InvalidParameterError("cache_size must be non-negative")
        self._sharded = shards is not None or shard_size is not None
        if materialize is None:
            if metric.matrix_view() is not None:
                materialize = True
            else:
                materialize = not self._sharded and metric.n <= AUTO_MATERIALIZE_CAP
        if materialize and metric.matrix_view() is None:
            metric = as_distance_matrix(metric)
        self._materialized = metric.matrix_view() is not None
        self._materialize_pools = bool(materialize_pools)
        self._metric = metric
        self._shards = shards
        self._shard_size = shard_size
        self._shard_workers = shard_workers
        self._shard_executor = shard_executor

        shared_quality = quality
        if quality.is_modular and kernels.weights_view_of(quality) is None:
            # Same hoist as solve_many: view-less modular families would pay
            # one O(n) oracle sweep per query inside the kernels.
            weights = kernels.modular_weights(quality)
            try:
                shared_quality = ModularFunction(weights)
            except InvalidParameterError:
                shared_quality = quality
        self._quality = shared_quality
        self._objective = Objective(shared_quality, metric, tradeoff)

        self._cache: "OrderedDict[tuple, Restriction]" = OrderedDict()
        self._cache_size = int(cache_size)
        self._cache_lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._identity: Optional[Restriction] = None
        self._warm_state: Optional[GainState] = None
        if warm and not shared_quality.is_modular:
            self._warm_state = shared_quality.gain_state(())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Universe size."""
        return self._objective.n

    @property
    def objective(self) -> Objective:
        """The shared corpus objective ``φ = f + λ·d``."""
        return self._objective

    @property
    def quality(self) -> SetFunction:
        """The prepared (weight-hoisted) quality function."""
        return self._quality

    @property
    def metric(self) -> Metric:
        """The prepared metric (materialized or lazy)."""
        return self._metric

    @property
    def tradeoff(self) -> float:
        """The corpus trade-off λ."""
        return self._objective.tradeoff

    @property
    def materialized(self) -> bool:
        """Whether the corpus metric is matrix-backed."""
        return self._materialized

    @property
    def sharded(self) -> bool:
        """Whether full-universe queries run the sharded core-set pipeline."""
        return self._sharded

    def quality_state(self) -> Optional[GainState]:
        """The prepared empty gain state of a non-modular quality.

        Built once at prepare time (``warm=True``); the batched-gains
        protocol's construction-time caches (coverage incidence matrices,
        log-det PSD probes) are warmed by building it, so per-query solves —
        whose restriction views compose the same underlying arrays — start
        hot.  ``None`` for modular corpora, which need no state at all.
        """
        if self._warm_state is None and not self._quality.is_modular:
            self._warm_state = self._quality.gain_state(())
        return self._warm_state

    def cache_info(self) -> Dict[str, int]:
        """Restriction-cache statistics: hits, misses, size, capacity."""
        with self._cache_lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "size": len(self._cache),
                "capacity": self._cache_size,
            }

    # ------------------------------------------------------------------
    # Restriction views
    # ------------------------------------------------------------------
    def restriction_for(self, pool: Iterable[Element]) -> Restriction:
        """The (cached) sub-universe view for one candidate pool.

        Pools are deduplicated in first-seen order and keyed exactly, so two
        requests naming the same pool share one view.  On a materialized
        corpus the view is a submatrix (copy-free for uniform-stride pools);
        on a lazy corpus it is an O(k·d) lazy slice, or an O(k²) block when
        ``materialize_pools`` was requested.
        """
        pool_arr = check_candidate_pool(pool, self.n)
        key = tuple(pool_arr.tolist())
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                return cached
            self._misses += 1
        if self._materialized:
            restriction = Restriction(self._objective, pool_arr)
        else:
            restriction = Restriction(
                self._objective,
                pool_arr,
                metric=sub_metric(
                    self._metric, pool_arr, materialize=self._materialize_pools
                ),
            )
        if self._cache_size > 0:
            with self._cache_lock:
                self._cache[key] = restriction
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return restriction

    def _identity_restriction(self) -> Restriction:
        """The full-universe view (unsharded corpora), built once."""
        if self._identity is None:
            self._identity = Restriction(
                self._objective, np.arange(self.n), metric=self._metric
            )
        return self._identity

    # ------------------------------------------------------------------
    # Window execution
    # ------------------------------------------------------------------
    def _window_query(self, request: ServeQuery) -> WindowQuery:
        restriction = (
            self._identity_restriction()
            if request.pool is None
            else self.restriction_for(request.pool)
        )
        matroid = request.matroid
        if matroid is not None:
            if matroid.n != self.n:
                raise InvalidParameterError(
                    f"matroid covers {matroid.n} elements but the corpus "
                    f"covers {self.n}"
                )
            matroid = matroid.restrict(restriction.candidates)
        return WindowQuery(
            restriction=restriction,
            p=request.p,
            matroid=matroid,
            weights=(
                None
                if request.weights is None
                else np.asarray(request.weights, dtype=float)
            ),
            algorithm=request.algorithm,
            local_search_config=request.local_search_config,
            deadline=request.deadline,
            tag=request.tag,
        )

    def _solve_full_sharded(
        self, request: ServeQuery, deadline: Optional[Deadline]
    ) -> SolverResult:
        """A full-universe query on a sharded corpus (core-set pipeline)."""
        if request.matroid is not None:
            raise InvalidParameterError(
                "sharded full-universe serving supports cardinality "
                "constraints only"
            )
        if request.p is None:
            raise InvalidParameterError("full-universe queries require p")
        quality = self._quality
        if request.weights is not None:
            quality = ModularFunction(np.asarray(request.weights, dtype=float))
            if quality.n != self.n:
                raise InvalidParameterError(
                    f"per-query weights cover {quality.n} elements but the "
                    f"corpus covers {self.n}"
                )
        from repro.core.sharding import solve_sharded

        return solve_sharded(
            quality,
            self._metric,
            tradeoff=self.tradeoff,
            p=request.p,
            shards=self._shards,
            shard_size=self._shard_size,
            algorithm=request.algorithm,
            max_workers=self._shard_workers,
            executor=self._shard_executor,
            local_search_config=request.local_search_config,
            deadline=deadline,
        )

    def solve_window(
        self,
        requests: Sequence[ServeQuery],
        *,
        deadline: Union[None, float, Deadline] = None,
        skip: Optional[Any] = None,
    ) -> List[Union[SolverResult, Exception, None]]:
        """Execute one micro-batch window of requests, in request order.

        Pool-scoped requests resolve to cached restriction views and run
        through :func:`~repro.core.batch.solve_window`; full-universe
        requests on a sharded corpus run the core-set pipeline.  The failure
        contract is per-request everywhere: a request whose preparation *or*
        solve raises occupies its slot with the exception object, a request
        ``skip`` rejects (the cancellation hook) occupies it with ``None``,
        and neither disturbs co-batched neighbours.  Shard-map degradation
        inside a sharded query never raises at all — it surfaces as
        ``metadata["degraded"]`` on that request's own result.
        """
        shared = Deadline.coerce(deadline)
        results: List[Union[SolverResult, Exception, None]] = [None] * len(requests)
        window: List[WindowQuery] = []
        window_index: List[int] = []
        for index, request in enumerate(requests):
            if skip is not None and skip(index):
                continue
            if request.pool is None and self._sharded:
                effective = Deadline.earliest(request.deadline, shared)
                try:
                    results[index] = self._solve_full_sharded(request, effective)
                except Exception as error:
                    results[index] = error
                continue
            try:
                window.append(self._window_query(request))
                window_index.append(index)
            except Exception as error:
                results[index] = error
        if window:
            skip_window = None
            if skip is not None:
                skip_window = lambda j: skip(window_index[j])  # noqa: E731
            solved = solve_window(window, deadline=shared, skip=skip_window)
            for j, outcome in enumerate(solved):
                results[window_index[j]] = outcome
        return results

    def solve(
        self,
        pool: Optional[Sequence[Element]] = None,
        *,
        p: Optional[int] = None,
        matroid: Optional[Matroid] = None,
        weights: Optional[Sequence[float]] = None,
        algorithm: str = "auto",
        local_search_config: Optional[LocalSearchConfig] = None,
        deadline_s: Union[None, float, Deadline] = None,
    ) -> SolverResult:
        """Solve one query synchronously on the prepared corpus.

        The single-request convenience over :meth:`solve_window`; exceptions
        that the window contract would isolate are re-raised here.
        """
        [outcome] = self.solve_window(
            [
                ServeQuery(
                    pool=pool,
                    p=p,
                    matroid=matroid,
                    weights=weights,
                    algorithm=algorithm,
                    local_search_config=local_search_config,
                    deadline=Deadline.coerce(deadline_s),
                )
            ]
        )
        if isinstance(outcome, Exception):
            raise outcome
        assert outcome is not None
        return outcome

    # ------------------------------------------------------------------
    # Persistence / warm start
    # ------------------------------------------------------------------
    def _config(self) -> Dict[str, Any]:
        return {
            "materialize": self._materialized,
            "materialize_pools": self._materialize_pools,
            "shards": self._shards,
            "shard_size": self._shard_size,
            "shard_workers": self._shard_workers,
            "shard_executor": self._shard_executor,
            "cache_size": self._cache_size,
        }

    def snapshot(self) -> CorpusSnapshot:
        """A pickle-safe snapshot of the prepared state
        (see :class:`CorpusSnapshot`)."""
        return CorpusSnapshot(
            quality=self._quality,
            metric=self._metric,
            tradeoff=self.tradeoff,
            config=self._config(),
            fingerprint=universe_fingerprint(
                "corpus", self.n, self.tradeoff, self._quality.is_modular
            ),
        )

    def save(self, path: str, *, durable: bool = False) -> None:
        """Snapshot the corpus and pickle it to ``path``.

        ``durable=True`` writes atomically inside a checksummed frame (see
        :meth:`CorpusSnapshot.save`).
        """
        self.snapshot().save(path, durable=durable)

    @classmethod
    def restore(cls, snapshot: CorpusSnapshot) -> "PreparedCorpus":
        """Rebuild a corpus from a :class:`CorpusSnapshot`, warm.

        The snapshot's metric is already materialized when the original
        corpus materialized one, so recovery skips the O(n²) preparation the
        first boot paid.
        """
        check_snapshot_version(snapshot, source="CorpusSnapshot")
        return cls(
            snapshot.quality,
            snapshot.metric,
            tradeoff=snapshot.tradeoff,
            **snapshot.config,
        )

    @classmethod
    def load(cls, path: str) -> "PreparedCorpus":
        """Restore a corpus from a snapshot written by :meth:`save`."""
        return cls.restore(CorpusSnapshot.load(path))

    @classmethod
    def from_session(cls, session: Any, **kwargs: Any) -> "PreparedCorpus":
        """Warm-start a serving corpus from a dynamic-maintenance session.

        Accepts a live :class:`~repro.dynamic.session.DynamicSession` /
        :class:`~repro.dynamic.session.ShardedDynamicEngine` /
        :class:`~repro.dynamic.engine.DynamicDiversifier`, or one of their
        pickle-safe snapshots
        (:class:`~repro.dynamic.session.SessionSnapshot` /
        :class:`~repro.dynamic.engine.EngineSnapshot`) — the recovery path: a
        serving process that died restarts from the snapshot its maintenance
        tier checkpointed, without replaying the event stream.

        Retired slots are compacted away, so the corpus universe is the
        session's *live* elements re-indexed densely; sharded sessions carry
        their ``shard_size`` over to the corpus (full-universe queries keep
        sharding), and sparse distance overrides survive via the same
        :class:`~repro.metrics.overlay.PatchedMetric` overlay the session
        used.  Extra ``kwargs`` are forwarded to :class:`PreparedCorpus`.
        """
        from repro.dynamic.engine import DynamicDiversifier, EngineSnapshot
        from repro.dynamic.session import (
            DynamicSession,
            SessionSnapshot,
            ShardedDynamicEngine,
        )

        if isinstance(session, DynamicSession):
            session = session.engine
        if isinstance(session, (DynamicDiversifier, ShardedDynamicEngine)):
            session = session.snapshot()

        if isinstance(session, SessionSnapshot):
            active = np.asarray(session.active, dtype=int)
            points = np.asarray(session.points, dtype=float)[active]
            weights = np.asarray(session.weights, dtype=float)[active]
            from repro.metrics.euclidean import EuclideanMetric

            metric: Metric = EuclideanMetric(points)
            overrides = {}
            if session.overrides:
                # Overrides are keyed by session slot ids; remap the pairs
                # whose endpoints both survived onto the compacted indices.
                local = {int(slot): i for i, slot in enumerate(active)}
                for u, v, value in session.overrides:
                    if int(u) in local and int(v) in local:
                        overrides[(local[int(u)], local[int(v)])] = float(value)
            if overrides:
                from repro.metrics.overlay import PatchedMetric

                metric = PatchedMetric(metric, overrides)
            kwargs.setdefault("shard_size", session.shard_size)
            return cls(
                ModularFunction(weights),
                metric,
                tradeoff=session.tradeoff,
                **kwargs,
            )
        if isinstance(session, EngineSnapshot):
            weights = np.asarray(session.weights, dtype=float)
            distances = np.asarray(session.distances, dtype=float)
            if session.active is not None:
                active = np.asarray(session.active, dtype=int)
                weights = weights[active]
                distances = distances[np.ix_(active, active)]
            from repro.metrics.matrix import DistanceMatrix

            return cls(
                ModularFunction(weights),
                DistanceMatrix(distances),
                tradeoff=session.tradeoff,
                **kwargs,
            )
        raise InvalidParameterError(
            f"cannot warm-start a corpus from {type(session).__name__}"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tier = "matrix" if self._materialized else "lazy"
        return (
            f"PreparedCorpus(n={self.n}, tier={tier}, "
            f"sharded={self._sharded}, cache={self._cache_size})"
        )
