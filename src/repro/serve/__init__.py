"""Serving tier: persistent prepared corpora + async micro-batched queries.

The long-lived, high-QPS entry point over the solver stack:

* :class:`~repro.serve.corpus.PreparedCorpus` — a fixed universe prepared
  once (materialized-or-lazy metric, hoisted modular weights, warm gain
  states, an LRU cache of pool restriction views) and solved against many
  times;
* :class:`~repro.serve.server.Server` — the asyncio front end whose
  ``submit`` coroutines are coalesced into micro-batch windows executed
  off-loop, with per-request deadlines and disconnect cancellation;
* :class:`~repro.serve.corpus.ServeQuery` / :class:`~repro.serve.corpus.CorpusSnapshot`
  — the request and warm-restart payloads.

See the README's "Serving" section for the batching knobs and the measured
load numbers, and ``examples/serving_demo.py`` for an end-to-end tour.
"""

from repro.serve.corpus import CorpusSnapshot, PreparedCorpus, ServeQuery
from repro.serve.server import Server, ServerStats

__all__ = [
    "CorpusSnapshot",
    "PreparedCorpus",
    "ServeQuery",
    "Server",
    "ServerStats",
]
