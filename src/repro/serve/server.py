"""Async micro-batched query serving over a :class:`~repro.serve.corpus.PreparedCorpus`.

The long-lived entry point the stack has been building toward: concurrent
clients ``await Server.submit(...)`` and the server coalesces their requests
into micro-batch windows — up to ``max_batch_size`` requests or ``max_wait_s``
of linger, whichever fills first — executed **off the event loop** on a
worker thread through :meth:`~repro.serve.corpus.PreparedCorpus.solve_window`.
Batching is what amortizes the shared-corpus work (restriction-cache hits,
warm gain states, one executor hop per window instead of per request) while
the lazy metric tier keeps each query O(k·d).

Failure contract (per request, never per window):

* a client that disconnects (its ``submit`` task is cancelled) marks its
  request cancelled; the window executor's ``skip`` hook then never solves
  it, and co-batched requests are untouched;
* a per-request ``deadline_s`` is anchored at submission, so queue wait
  spends budget; on expiry the request returns its best-so-far (possibly
  empty) feasible result with ``metadata["interrupted"] = True``;
* a request whose solve raises fails only its own future;
* shard-map degradation inside a request (a crashed shard worker during the
  window) surfaces as ``metadata["degraded"]`` on that request's result —
  the sharded pipeline never lets a lost worker kill a solve.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro._types import Element
from repro.core.local_search import LocalSearchConfig
from repro.core.result import SolverResult
from repro.exceptions import (
    InvalidParameterError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.matroids.base import Matroid
from repro.obs.instrument import (
    SERVE_PENDING,
    SERVE_REQUESTS,
    maybe_span,
    maybe_start_span,
)
from repro.obs.metrics import Histogram
from repro.obs.trace import Trace
from repro.serve.corpus import PreparedCorpus, ServeQuery
from repro.utils.deadline import Deadline

__all__ = ["Server", "ServerStats"]

#: Latency samples kept for the rolling diagnostic sample (the percentiles
#: themselves come from the histograms, never from sorting this list).
_LATENCY_WINDOW = 8192


def _latency_histogram(name: str) -> Histogram:
    # Standalone (registry=None ⇒ always on): the histograms live and die
    # with their ServerStats, so there is no process-wide opt-in to gate on.
    return Histogram(name)


@dataclass
class ServerStats:
    """Rolling serving statistics, updated by the server.

    Latency percentiles are histogram-backed: ``record_latency`` is an O(1)
    bucket increment and ``snapshot()`` reads cumulative bucket counts —
    the previous implementation sorted the full 8192-sample ring on every
    snapshot.  The ring itself (``latencies``) is retained as a bounded raw
    sample for diagnostics and tests.

    ``snapshot()`` distills everything into the dict the CLI target and the
    load benchmark report: completed/cancelled/failed/shed counts, windows
    executed, mean window size, sustained QPS since start, and
    histogram-estimated p50/p99 for request latency, queue wait and
    off-loop execute time.
    """

    submitted: int = 0
    completed: int = 0
    cancelled: int = 0
    failed: int = 0
    shed: int = 0
    windows: int = 0
    batched_requests: int = 0
    started_at: Optional[float] = None
    latencies: List[float] = field(default_factory=list)
    latency: Histogram = field(
        default_factory=lambda: _latency_histogram("serve_request_seconds")
    )
    queue_wait: Histogram = field(
        default_factory=lambda: _latency_histogram("serve_queue_wait_seconds")
    )
    execute: Histogram = field(
        default_factory=lambda: _latency_histogram("serve_execute_seconds")
    )
    deadline_slack: Histogram = field(
        default_factory=lambda: _latency_histogram("serve_deadline_slack_seconds")
    )

    def record_latency(self, seconds: float) -> None:
        self.latency.observe(seconds)
        self.latencies.append(seconds)
        if len(self.latencies) > _LATENCY_WINDOW:
            del self.latencies[: -_LATENCY_WINDOW]

    def snapshot(self) -> Dict[str, float]:
        elapsed = (
            time.monotonic() - self.started_at if self.started_at is not None else 0.0
        )
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "cancelled": self.cancelled,
            "failed": self.failed,
            "shed": self.shed,
            "windows": self.windows,
            "mean_window_size": (
                self.batched_requests / self.windows if self.windows else 0.0
            ),
            "elapsed_s": elapsed,
            "qps": self.completed / elapsed if elapsed > 0 else 0.0,
            "p50_ms": self.latency.quantile(0.5) * 1000.0,
            "p99_ms": self.latency.quantile(0.99) * 1000.0,
            "queue_wait_p50_ms": self.queue_wait.quantile(0.5) * 1000.0,
            "queue_wait_p99_ms": self.queue_wait.quantile(0.99) * 1000.0,
            "execute_p50_ms": self.execute.quantile(0.5) * 1000.0,
            "execute_p99_ms": self.execute.quantile(0.99) * 1000.0,
        }


class _Request:
    """One in-flight submission: the query, its future, and a cancel flag.

    The ``cancelled`` event is a *threading* primitive on purpose: it is set
    on the event-loop thread (client disconnect) and read from the executor
    thread (the window's ``skip`` hook), which an :class:`asyncio.Event`
    must not be.
    """

    __slots__ = ("query", "future", "submitted_at", "cancelled")

    def __init__(self, query: ServeQuery, future: "asyncio.Future") -> None:
        self.query = query
        self.future = future
        self.submitted_at = time.monotonic()
        self.cancelled = threading.Event()

    def abandoned(self) -> bool:
        return self.cancelled.is_set() or self.future.cancelled()


class Server:
    """Asyncio front end micro-batching queries onto a prepared corpus.

    Parameters
    ----------
    corpus:
        The :class:`~repro.serve.corpus.PreparedCorpus` every request solves
        against.
    max_batch_size:
        Most requests coalesced into one window.
    max_wait_s:
        Longest a window lingers for co-batchable requests after its first
        request arrives.  The latency/throughput knob: 0 degenerates to
        one-request windows.
    default_deadline_s:
        Per-request budget applied when ``submit`` is not given one.
    window_deadline_s:
        Optional budget shared by each whole window, combined per query with
        the per-request deadline (the earlier clock wins).
    max_pending:
        Optional bound on queued (not yet windowed) requests.  When the
        queue is full, ``submit`` fails fast with
        :class:`~repro.exceptions.ServerOverloadedError` instead of
        queueing unboundedly — load shedding at admission keeps queue wait
        (which spends each request's deadline budget) bounded under
        overload.  Sheds are counted in ``ServerStats.shed``.  Default:
        unbounded, the historical behavior.
    executor:
        Optional :class:`~concurrent.futures.ThreadPoolExecutor` to run
        windows on.  Default: one owned single-thread executor — windows
        then execute strictly in order, which keeps even oracle-backed
        corpora safe without thread-safety promises.
    trace:
        Optional :class:`~repro.obs.trace.Trace`.  Each executed window
        records a root ``window`` span with a synthetic ``queue_wait`` child
        (mean/max seat wait of the window's requests) and an ``execute``
        child recorded *on the worker thread* (re-parented explicitly, since
        contextvars do not cross ``run_in_executor``).  Default ``None``:
        no-op cost.

    Use as an async context manager (``async with Server(corpus) as server``)
    or call :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(
        self,
        corpus: PreparedCorpus,
        *,
        max_batch_size: int = 32,
        max_wait_s: float = 0.002,
        default_deadline_s: Optional[float] = None,
        window_deadline_s: Optional[float] = None,
        max_pending: Optional[int] = None,
        executor: Optional[ThreadPoolExecutor] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        if max_batch_size < 1:
            raise InvalidParameterError("max_batch_size must be at least 1")
        if max_wait_s < 0:
            raise InvalidParameterError("max_wait_s must be non-negative")
        if max_pending is not None and max_pending < 1:
            raise InvalidParameterError("max_pending must be at least 1 (or None)")
        self._corpus = corpus
        self._max_batch_size = int(max_batch_size)
        self._max_wait_s = float(max_wait_s)
        self._default_deadline_s = default_deadline_s
        self._window_deadline_s = window_deadline_s
        self._max_pending = None if max_pending is None else int(max_pending)
        self._trace = trace
        self._executor = executor
        self._own_executor = executor is None
        self._queue: Optional["asyncio.Queue[_Request]"] = None
        self._batcher: Optional["asyncio.Task"] = None
        self._inflight: List[_Request] = []
        self._running = False
        self.stats = ServerStats()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def corpus(self) -> PreparedCorpus:
        """The prepared corpus this server solves on."""
        return self._corpus

    @property
    def running(self) -> bool:
        """Whether the batcher is accepting requests."""
        return self._running

    async def start(self) -> "Server":
        """Start the batcher task on the running event loop."""
        if self._running:
            return self
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._own_executor = True
        self._queue = asyncio.Queue(maxsize=self._max_pending or 0)
        self._running = True
        self.stats.started_at = time.monotonic()
        self._batcher = asyncio.create_task(self._run(), name="repro-serve-batcher")
        return self

    async def stop(self, *, drain: bool = False) -> None:
        """Stop the batcher; queued and in-flight requests fail closed.

        Every request whose future is still pending gets
        :class:`~repro.exceptions.ServerClosedError` — a stranded client
        sees a clean failure, never a hang.

        With ``drain=True`` the server first stops admitting new requests,
        then lets the batcher finish every queued and in-flight request
        before tearing down — a graceful shutdown for rolling restarts.
        Only requests submitted *after* ``stop`` was called fail closed.
        """
        if not self._running:
            return
        self._running = False
        assert self._batcher is not None and self._queue is not None
        if drain:
            # Admission is already closed (_running is False).  The batcher
            # pops a request and exposes it via _inflight in the same event
            # loop step, so "queue empty and nothing in flight" really means
            # every accepted request has been delivered.
            while not self._queue.empty() or self._inflight:
                await asyncio.sleep(0.001)
        self._batcher.cancel()
        try:
            await self._batcher
        except asyncio.CancelledError:
            pass
        self._batcher = None
        stranded = list(self._inflight)
        while not self._queue.empty():
            stranded.append(self._queue.get_nowait())
        self._inflight = []
        for request in stranded:
            if not request.future.done():
                request.future.set_exception(
                    ServerClosedError("server stopped before the request ran")
                )
        if self._own_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    async def __aenter__(self) -> "Server":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    async def submit(
        self,
        pool: Optional[Sequence[Element]] = None,
        *,
        p: Optional[int] = None,
        matroid: Optional[Matroid] = None,
        weights: Optional[Sequence[float]] = None,
        algorithm: str = "auto",
        local_search_config: Optional[LocalSearchConfig] = None,
        deadline_s: Optional[float] = None,
        tag: Any = None,
    ) -> SolverResult:
        """Submit one query and await its result.

        Parameters mirror :meth:`PreparedCorpus.solve`; ``deadline_s``
        (default: the server's ``default_deadline_s``) is anchored *now*, so
        time spent waiting for a window seat counts against it.  Cancelling
        the awaiting task withdraws the request: if its window has not solved
        it yet it never runs, and its result is discarded otherwise — either
        way co-batched requests are unaffected.

        Raises :class:`~repro.exceptions.ServerOverloadedError` without
        queueing when the server was built with ``max_pending`` and that many
        requests are already waiting for a window seat.
        """
        if not self._running or self._queue is None:
            raise ServerClosedError("server is not running; call start() first")
        if deadline_s is None:
            deadline_s = self._default_deadline_s
        request = _Request(
            ServeQuery(
                pool=pool,
                p=p,
                matroid=matroid,
                weights=weights,
                algorithm=algorithm,
                local_search_config=local_search_config,
                deadline=Deadline.coerce(deadline_s),
                tag=tag,
            ),
            asyncio.get_running_loop().create_future(),
        )
        self.stats.submitted += 1
        try:
            # put_nowait keeps admission atomic on the event loop: a bounded
            # queue either seats the request immediately or sheds it — a
            # blocked put() would let overload stack up as suspended submits,
            # defeating the bound.
            self._queue.put_nowait(request)
        except asyncio.QueueFull:
            self.stats.shed += 1
            if SERVE_REQUESTS.enabled():
                SERVE_REQUESTS.inc(outcome="shed")
            raise ServerOverloadedError(
                f"server is overloaded: {self._max_pending} requests already "
                "pending (max_pending); retry later or raise the bound"
            ) from None
        if SERVE_PENDING.enabled():
            SERVE_PENDING.inc()
        try:
            result = await request.future
        except asyncio.CancelledError:
            request.cancelled.set()
            self.stats.cancelled += 1
            if SERVE_REQUESTS.enabled():
                SERVE_REQUESTS.inc(outcome="cancelled")
            raise
        finally:
            if SERVE_PENDING.enabled():
                SERVE_PENDING.dec()
        self.stats.record_latency(time.monotonic() - request.submitted_at)
        if request.query.deadline is not None:
            self.stats.deadline_slack.observe(
                max(0.0, request.query.deadline.remaining())
            )
        return result

    # ------------------------------------------------------------------
    # Batcher
    # ------------------------------------------------------------------
    async def _gather_window(self) -> List[_Request]:
        """Block for the first request, then linger for co-batchable ones."""
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        window = [await self._queue.get()]
        # Expose the gathering window to stop() immediately: a request popped
        # off the queue but still lingering here must fail closed too, not
        # hang its client.  (window is the same list object, so appends below
        # stay visible.)
        self._inflight = window
        opened = loop.time()
        while len(window) < self._max_batch_size:
            remaining = self._max_wait_s - (loop.time() - opened)
            if remaining <= 0:
                break
            try:
                window.append(
                    await asyncio.wait_for(self._queue.get(), timeout=remaining)
                )
            except asyncio.TimeoutError:
                break
        return window

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        trace = self._trace
        while True:
            window = await self._gather_window()
            live = [request for request in window if not request.abandoned()]
            self._inflight = live
            if not live:
                continue
            queries = [request.query for request in live]

            def skip(index: int, requests: List[_Request] = live) -> bool:
                return requests[index].cancelled.is_set()

            window_span = maybe_start_span(
                trace, "window", parent_id=None, size=len(live)
            )
            if trace is not None:
                now = time.monotonic()
                waits = [now - request.submitted_at for request in live]
                trace.record_span(
                    "queue_wait",
                    parent_id=window_span.id,
                    duration_s=sum(waits) / len(waits),
                    max_s=round(max(waits), 6),
                )
            for request in live:
                self.stats.queue_wait.observe(
                    time.monotonic() - request.submitted_at
                )

            window_deadline = self._window_deadline()
            window_parent = window_span.id
            execute_started = time.monotonic()

            def run_window():
                # On the executor thread: contextvars from the loop do not
                # follow, so the execute span re-parents explicitly.
                with maybe_span(trace, "execute", parent_id=window_parent):
                    return self._corpus.solve_window(
                        queries, deadline=window_deadline, skip=skip
                    )

            try:
                outcomes = await loop.run_in_executor(self._executor, run_window)
            except asyncio.CancelledError:
                # stop() cancelled us mid-window; the in-flight requests are
                # failed closed by stop() itself.
                window_span.finish(status="cancelled")
                raise
            except Exception as error:  # pragma: no cover - defensive
                # A window-level failure (not a per-query one, those are
                # isolated inside solve_window) fails this window's requests
                # but keeps the server serving.
                for request in live:
                    if not request.future.done():
                        request.future.set_exception(error)
                        self.stats.failed += 1
                        if SERVE_REQUESTS.enabled():
                            SERVE_REQUESTS.inc(outcome="failed")
                self._inflight = []
                window_span.set(error=repr(error))
                window_span.finish(status="error")
                continue
            self.stats.execute.observe(time.monotonic() - execute_started)
            self.stats.windows += 1
            self.stats.batched_requests += len(live)
            delivered = failed = 0
            for request, outcome in zip(live, outcomes):
                if request.future.done() or request.future.cancelled():
                    continue
                if outcome is None:
                    # Skipped: the client disconnected between enqueue and
                    # execution.  Its future is (being) cancelled; nothing
                    # to deliver.
                    continue
                if isinstance(outcome, Exception):
                    request.future.set_exception(outcome)
                    self.stats.failed += 1
                    failed += 1
                    if SERVE_REQUESTS.enabled():
                        SERVE_REQUESTS.inc(outcome="failed")
                else:
                    request.future.set_result(outcome)
                    self.stats.completed += 1
                    delivered += 1
                    if SERVE_REQUESTS.enabled():
                        SERVE_REQUESTS.inc(outcome="completed")
            self._inflight = []
            window_span.set(completed=delivered, failed=failed)
            window_span.finish()

    # ------------------------------------------------------------------
    # Deadlines shared by a window
    # ------------------------------------------------------------------
    def _window_deadline(self) -> Optional[Deadline]:
        if self._window_deadline_s is None:
            return None
        return Deadline(self._window_deadline_s)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Server(corpus={self._corpus!r}, max_batch={self._max_batch_size}, "
            f"max_wait_s={self._max_wait_s}, running={self._running})"
        )
