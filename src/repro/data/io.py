"""Instance serialization.

Experiments need to be re-runnable on exactly the same data, so the library
can persist a diversification instance — weights, distance matrix, trade-off
and optional element labels — to a single ``.npz`` file and load it back.
The format is deliberately simple (numpy arrays plus a JSON-encoded metadata
blob) so instances can also be produced by external tools.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix

#: Format marker stored inside every saved file.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


@dataclass(frozen=True)
class SavedInstance:
    """A deserialized diversification instance.

    Attributes
    ----------
    weights:
        Element weights (modular quality).
    distances:
        Pairwise distance matrix.
    tradeoff:
        The λ the instance was saved with.
    labels:
        Optional human-readable element labels (e.g. document ids).
    metadata:
        Free-form metadata dictionary stored alongside the arrays.
    """

    weights: np.ndarray
    distances: np.ndarray
    tradeoff: float
    labels: Optional[Sequence[str]] = None
    metadata: Optional[Dict[str, object]] = None

    @property
    def n(self) -> int:
        """Universe size."""
        return self.weights.shape[0]

    @property
    def objective(self) -> Objective:
        """Reassemble the objective ``φ = f + λ·d``."""
        return Objective(
            ModularFunction(self.weights), DistanceMatrix(self.distances), self.tradeoff
        )


def save_instance(
    path: PathLike,
    weights: Union[np.ndarray, Sequence[float]],
    distances: Union[np.ndarray, DistanceMatrix],
    tradeoff: float,
    *,
    labels: Optional[Sequence[str]] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist an instance to ``path`` (``.npz``); returns the resolved path.

    Parameters
    ----------
    path:
        Target file; the ``.npz`` suffix is appended when missing.
    weights, distances, tradeoff:
        The instance ``(w, d, λ)``.  Distances are validated through
        :class:`~repro.metrics.matrix.DistanceMatrix`.
    labels:
        Optional per-element labels (must match the universe size).
    metadata:
        Optional JSON-serializable metadata.
    """
    weight_array = np.asarray(
        list(weights) if not isinstance(weights, np.ndarray) else weights,
        dtype=float,
    )
    if weight_array.ndim != 1:
        raise InvalidParameterError("weights must be one-dimensional")
    if isinstance(distances, DistanceMatrix):
        distance_array = distances.to_matrix()
    else:
        distance_array = DistanceMatrix(np.asarray(distances, dtype=float)).to_matrix()
    if distance_array.shape[0] != weight_array.shape[0]:
        raise InvalidParameterError(
            "weights and distances must cover the same universe"
        )
    if tradeoff < 0:
        raise InvalidParameterError("tradeoff must be non-negative")
    if labels is not None and len(labels) != weight_array.shape[0]:
        raise InvalidParameterError("labels must have one entry per element")

    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_suffix(target.suffix + ".npz" if target.suffix else ".npz")
    header = {
        "format_version": FORMAT_VERSION,
        "tradeoff": float(tradeoff),
        "n": int(weight_array.shape[0]),
        "metadata": metadata or {},
    }
    arrays = {
        "weights": weight_array,
        "distances": distance_array,
        "header": np.frombuffer(json.dumps(header).encode("utf-8"), dtype=np.uint8),
    }
    if labels is not None:
        arrays["labels"] = np.array([str(label) for label in labels])
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **arrays)
    return target


def load_instance(path: PathLike) -> SavedInstance:
    """Load an instance previously written by :func:`save_instance`."""
    target = Path(path)
    if not target.exists():
        raise InvalidParameterError(f"no such instance file: {target}")
    with np.load(target, allow_pickle=False) as archive:
        if (
            "header" not in archive
            or "weights" not in archive
            or "distances" not in archive
        ):
            raise InvalidParameterError(f"{target} is not a saved repro instance")
        header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
        if header.get("format_version") != FORMAT_VERSION:
            raise InvalidParameterError(
                f"unsupported instance format version {header.get('format_version')!r}"
            )
        weights = np.array(archive["weights"], dtype=float)
        distances = np.array(archive["distances"], dtype=float)
        labels = (
            [str(x) for x in archive["labels"]] if "labels" in archive.files else None
        )
    # Round-trip the distances through DistanceMatrix to re-validate them.
    DistanceMatrix(distances)
    return SavedInstance(
        weights=weights,
        distances=distances,
        tradeoff=float(header["tradeoff"]),
        labels=labels,
        metadata=dict(header.get("metadata", {})),
    )
