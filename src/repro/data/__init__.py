"""Data substrate: instance generators for experiments, examples and tests.

* :mod:`~repro.data.synthetic` — the paper's synthetic workload (Section 7.1):
  weights uniform in [0, 1], distances uniform in [1, 2].
* :mod:`~repro.data.letor` — a synthetic stand-in for the LETOR learning-to-
  rank collection used in Section 7.2 (integral relevance scores 0–5, feature
  vectors, cosine distance, multiple queries).
* :mod:`~repro.data.portfolio` — a stock-portfolio scenario (sector partition
  matroid, risk/return embedding) matching the paper's portfolio motivation.
* :mod:`~repro.data.geo` — planar facility-location instances matching the
  dispersion roots of the problem.
"""

from repro.data.geo import GeoInstance, make_geo_instance
from repro.data.io import SavedInstance, load_instance, save_instance
from repro.data.letor import LetorDocument, LetorQueryData, SyntheticLetorCorpus
from repro.data.portfolio import PortfolioInstance, make_portfolio_instance
from repro.data.synthetic import (
    FeatureInstance,
    SyntheticInstance,
    make_feature_instance,
    make_synthetic_instance,
)

__all__ = [
    "SyntheticInstance",
    "make_synthetic_instance",
    "FeatureInstance",
    "make_feature_instance",
    "SyntheticLetorCorpus",
    "LetorDocument",
    "LetorQueryData",
    "PortfolioInstance",
    "make_portfolio_instance",
    "GeoInstance",
    "make_geo_instance",
    "SavedInstance",
    "save_instance",
    "load_instance",
]
