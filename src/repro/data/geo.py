"""Planar facility-location instances.

The dispersion literature the paper builds on (Section 3) is rooted in
locating undesirable or competing facilities so they are far apart.  This
generator produces planar points with per-site quality scores (e.g. expected
demand) so the examples can demonstrate max-sum diversification as facility
placement: high-quality sites, mutually far apart, optionally balanced across
districts via a partition matroid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.euclidean import EuclideanMetric
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class GeoInstance:
    """A planar facility-location instance.

    Attributes
    ----------
    points:
        ``(n, 2)`` site coordinates.
    demand:
        Per-site quality score (expected demand served).
    district:
        District index of each site (for partition-matroid balance).
    tradeoff:
        λ for the combined objective.
    """

    points: np.ndarray
    demand: np.ndarray
    district: Tuple[int, ...]
    tradeoff: float

    @property
    def n(self) -> int:
        """Number of candidate sites."""
        return self.points.shape[0]

    @property
    def metric(self) -> EuclideanMetric:
        """Euclidean distance between sites."""
        return EuclideanMetric(self.points)

    @property
    def quality(self) -> ModularFunction:
        """Modular demand-served quality."""
        return ModularFunction(self.demand)

    @property
    def objective(self) -> Objective:
        """The assembled objective."""
        return Objective(self.quality, self.metric, self.tradeoff)

    def district_matroid(self, per_district: int) -> PartitionMatroid:
        """Partition matroid allowing at most ``per_district`` sites per district."""
        capacities = {d: per_district for d in set(self.district)}
        return PartitionMatroid(list(self.district), capacities)


def make_geo_instance(
    n: int,
    *,
    num_districts: int = 4,
    tradeoff: float = 0.1,
    seed: SeedLike = None,
) -> GeoInstance:
    """Generate ``n`` candidate sites clustered into districts on the unit square."""
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if num_districts < 1:
        raise InvalidParameterError("num_districts must be at least 1")
    rng = make_rng(seed)
    centers = rng.uniform(0.15, 0.85, size=(num_districts, 2))
    district = tuple(int(rng.integers(0, num_districts)) for _ in range(n))
    points = np.vstack(
        [
            np.clip(centers[d] + rng.normal(0.0, 0.08, size=2), 0.0, 1.0)
            for d in district
        ]
    )
    demand = rng.uniform(0.2, 1.0, size=n)
    return GeoInstance(
        points=points, demand=demand, district=district, tradeoff=float(tradeoff)
    )
