"""Synthetic LETOR-like corpus (substitute for the LETOR benchmark of Section 7.2).

The real LETOR collection is not redistributable and this environment has no
network access, so the repository ships a generator that reproduces the
*structure* the paper relies on:

* each query has a pool of documents,
* each document has an integral relevance score ``r(u) ∈ {0, ..., 5}``
  (relative to its query) and a feature vector,
* the quality of a result set is the modular sum of relevance scores,
  ``f(S) = Σ_{u ∈ S} r(u)``,
* the distance between two documents is the cosine distance between their
  feature vectors.

Documents are generated from a handful of latent "aspects" per query so that
documents about the same aspect are close in feature space and highly
relevant documents cluster — the property that makes relevance-only ranking
insufficiently diverse and gives the dispersion term something to do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.modular import ModularFunction
from repro.metrics.matrix import DistanceMatrix
from repro.utils.rng import SeedLike, make_rng

#: Relevance grades follow LETOR conventions (0 = irrelevant .. 5 = perfect).
MAX_RELEVANCE = 5


@dataclass(frozen=True)
class LetorDocument:
    """One document of a query's candidate pool.

    Attributes
    ----------
    doc_id:
        Document identifier, unique within its query.
    query_id:
        Identifier of the query this document belongs to.
    relevance:
        Integral relevance grade in ``0..5``.
    features:
        Dense feature vector used for the cosine distance.
    aspect:
        The latent aspect (sub-topic) the document was generated from; kept
        for inspection and for example scripts that build partition matroids
        over aspects.
    """

    doc_id: int
    query_id: int
    relevance: int
    features: np.ndarray
    aspect: int


@dataclass(frozen=True)
class LetorQueryData:
    """All documents of one query, plus the derived instance pieces."""

    query_id: int
    documents: Tuple[LetorDocument, ...] = field(repr=False)

    @property
    def n(self) -> int:
        """Number of documents in the pool."""
        return len(self.documents)

    @property
    def relevances(self) -> np.ndarray:
        """Vector of relevance grades (the modular quality weights)."""
        return np.array([doc.relevance for doc in self.documents], dtype=float)

    @property
    def features(self) -> np.ndarray:
        """Stacked feature matrix (one row per document)."""
        return np.vstack([doc.features for doc in self.documents])

    @property
    def aspects(self) -> Tuple[int, ...]:
        """Latent aspect of each document."""
        return tuple(doc.aspect for doc in self.documents)

    def quality(self) -> ModularFunction:
        """``f(S) = Σ r(u)``."""
        return ModularFunction(self.relevances)

    def metric(self) -> DistanceMatrix:
        """Cosine-distance matrix over the feature vectors."""
        return DistanceMatrix.from_points(self.features, metric="cosine")

    def objective(self, tradeoff: float) -> Objective:
        """Assemble ``φ = f + λ·d`` for this query."""
        return Objective(self.quality(), self.metric(), tradeoff)

    def top_documents(self, k: int) -> "LetorQueryData":
        """Return a new query pool restricted to the ``k`` most relevant documents.

        Ties are broken by document id, mirroring the paper's "top (by
        relevance score) 50 / 370 documents" construction.
        """
        if k < 0:
            raise InvalidParameterError("k must be non-negative")
        ranked = sorted(
            self.documents, key=lambda doc: (-doc.relevance, doc.doc_id)
        )[:k]
        reindexed = tuple(
            LetorDocument(
                doc_id=i,
                query_id=doc.query_id,
                relevance=doc.relevance,
                features=doc.features,
                aspect=doc.aspect,
            )
            for i, doc in enumerate(ranked)
        )
        return LetorQueryData(query_id=self.query_id, documents=reindexed)


class SyntheticLetorCorpus:
    """A multi-query LETOR-like corpus.

    Parameters
    ----------
    num_queries:
        Number of queries to generate (the paper averages over 5).
    docs_per_query:
        Pool size per query (the paper's largest pool has 370 documents).
    num_features:
        Dimensionality of the document feature vectors.
    num_aspects:
        Number of latent aspects per query; documents are drawn around aspect
        centroids so same-aspect documents are similar.
    relevance_skew:
        Larger values make high relevance grades rarer (realistic pools are
        dominated by low-relevance documents).
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        num_queries: int = 5,
        docs_per_query: int = 370,
        *,
        num_features: int = 46,
        num_aspects: int = 8,
        relevance_skew: float = 1.4,
        seed: SeedLike = None,
    ) -> None:
        if num_queries < 1 or docs_per_query < 1:
            raise InvalidParameterError("need at least one query and one document")
        if num_features < 2 or num_aspects < 1:
            raise InvalidParameterError("need num_features >= 2 and num_aspects >= 1")
        if relevance_skew <= 0:
            raise InvalidParameterError("relevance_skew must be positive")
        self._num_features = num_features
        self._num_aspects = num_aspects
        rng = make_rng(seed)
        self._queries: Dict[int, LetorQueryData] = {}
        for query_id in range(num_queries):
            documents = self._generate_query(
                query_id, docs_per_query, relevance_skew, rng
            )
            self._queries[query_id] = LetorQueryData(
                query_id=query_id, documents=documents
            )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def _generate_query(
        self,
        query_id: int,
        docs_per_query: int,
        relevance_skew: float,
        rng: np.random.Generator,
    ) -> Tuple[LetorDocument, ...]:
        # Aspect centroids: non-negative, roughly unit-scale feature profiles.
        centroids = rng.gamma(
            shape=2.0, scale=0.5, size=(self._num_aspects, self._num_features)
        )
        # Aspect popularity decays so some facets dominate the pool, and each
        # aspect has its own relevance affinity (how on-topic it is for the query).
        popularity = rng.dirichlet(np.linspace(3.0, 0.5, self._num_aspects))
        affinity = rng.uniform(0.2, 1.0, size=self._num_aspects)
        documents: List[LetorDocument] = []
        for doc_id in range(docs_per_query):
            aspect = int(rng.choice(self._num_aspects, p=popularity))
            noise = rng.gamma(shape=1.5, scale=0.15, size=self._num_features)
            features = centroids[aspect] + noise
            # Relevance mixes the aspect's affinity with per-document luck and
            # is skewed toward low grades (realistic pools are mostly grade 0-2).
            raw = float(
                np.clip(0.55 * affinity[aspect] + 0.45 * rng.uniform(), 0.0, 1.0)
            )
            grade = int(
                np.clip(round(MAX_RELEVANCE * raw**relevance_skew), 0, MAX_RELEVANCE)
            )
            documents.append(
                LetorDocument(
                    doc_id=doc_id,
                    query_id=query_id,
                    relevance=grade,
                    features=features,
                    aspect=aspect,
                )
            )
        return tuple(documents)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_queries(self) -> int:
        """Number of queries in the corpus."""
        return len(self._queries)

    @property
    def query_ids(self) -> Sequence[int]:
        """The query identifiers."""
        return tuple(sorted(self._queries))

    def query(self, query_id: int) -> LetorQueryData:
        """Return the document pool of one query."""
        if query_id not in self._queries:
            raise InvalidParameterError(f"unknown query id {query_id}")
        return self._queries[query_id]

    def queries(self) -> Sequence[LetorQueryData]:
        """All query pools in query-id order."""
        return tuple(self._queries[qid] for qid in self.query_ids)
