"""Stock-portfolio scenario generator.

The paper motivates the matroid generalization with portfolio selection: pick
stocks with high (submodular) utility for profit, keep them spread out in a
risk/return embedding (the dispersion term), and use a partition matroid to
guarantee every economic sector is represented with bounded multiplicity.
This generator produces such instances for the example scripts and the
matroid benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.objective import Objective
from repro.exceptions import InvalidParameterError
from repro.functions.facility_location import FacilityLocationFunction
from repro.functions.mixtures import MixtureFunction, ScaledFunction
from repro.functions.modular import ModularFunction
from repro.matroids.partition import PartitionMatroid
from repro.metrics.euclidean import EuclideanMetric
from repro.utils.rng import SeedLike, make_rng

#: Default sector names used when none are supplied.
DEFAULT_SECTORS = (
    "technology",
    "financials",
    "healthcare",
    "energy",
    "consumer",
    "industrials",
)


@dataclass(frozen=True)
class PortfolioInstance:
    """A generated stock-selection instance.

    Attributes
    ----------
    expected_returns:
        Per-stock expected return (drives the modular part of the utility).
    risk_return:
        ``(n, 2)`` embedding (annualized volatility, expected return) used for
        the dispersion metric.
    sectors:
        Sector label of each stock.
    sector_capacity:
        Maximum number of stocks allowed per sector.
    tradeoff:
        λ for the combined objective.
    """

    expected_returns: np.ndarray
    risk_return: np.ndarray
    sectors: Tuple[str, ...]
    sector_capacity: int
    tradeoff: float

    @property
    def n(self) -> int:
        """Number of stocks."""
        return self.expected_returns.shape[0]

    @property
    def metric(self) -> EuclideanMetric:
        """Euclidean distance in the risk/return plane."""
        return EuclideanMetric(self.risk_return)

    @property
    def quality(self) -> MixtureFunction:
        """A monotone submodular utility: returns + diminishing sector coverage.

        The mixture combines the modular expected-return term with a
        facility-location term over return similarity, modeling a user whose
        marginal utility for yet another similar stock decreases.
        """
        modular = ModularFunction(np.maximum(self.expected_returns, 0.0))
        similarity = np.exp(
            -np.abs(self.expected_returns[:, None] - self.expected_returns[None, :])
        )
        facility = FacilityLocationFunction(similarity)
        return MixtureFunction(
            [modular, ScaledFunction(facility, 1.0 / max(self.n, 1))], [1.0, 1.0]
        )

    @property
    def matroid(self) -> PartitionMatroid:
        """Partition matroid: at most ``sector_capacity`` stocks per sector."""
        capacities = {sector: self.sector_capacity for sector in set(self.sectors)}
        return PartitionMatroid(list(self.sectors), capacities)

    @property
    def objective(self) -> Objective:
        """The assembled objective."""
        return Objective(self.quality, self.metric, self.tradeoff)


def make_portfolio_instance(
    n: int,
    *,
    sectors: Sequence[str] = DEFAULT_SECTORS,
    sector_capacity: int = 2,
    tradeoff: float = 0.5,
    seed: SeedLike = None,
) -> PortfolioInstance:
    """Generate a portfolio instance with ``n`` stocks.

    Stocks are assigned round-robin-ishly to sectors; each sector has its own
    characteristic risk/return regime so sector structure is visible in the
    embedding.
    """
    if n < 1:
        raise InvalidParameterError("n must be at least 1")
    if sector_capacity < 1:
        raise InvalidParameterError("sector_capacity must be at least 1")
    if not sectors:
        raise InvalidParameterError("need at least one sector")
    rng = make_rng(seed)
    sector_labels = tuple(str(sectors[i % len(sectors)]) for i in range(n))
    base_risk = {s: rng.uniform(0.1, 0.4) for s in set(sector_labels)}
    base_return = {s: rng.uniform(0.02, 0.12) for s in set(sector_labels)}
    risk = np.array(
        [max(rng.normal(base_risk[s], 0.05), 0.01) for s in sector_labels]
    )
    expected = np.array(
        [max(rng.normal(base_return[s], 0.03), 0.0) for s in sector_labels]
    )
    risk_return = np.column_stack([risk, expected])
    return PortfolioInstance(
        expected_returns=expected,
        risk_return=risk_return,
        sectors=sector_labels,
        sector_capacity=int(sector_capacity),
        tradeoff=float(tradeoff),
    )
