"""Observability: span tracing, metrics, and the stack's wiring layer.

Three modules:

* :mod:`repro.obs.trace` — :class:`Trace`/:class:`Span`: nested wall-clock
  spans with contextvar parent propagation, pool-worker span shipping
  (:class:`SpanBundle` / :meth:`Trace.adopt`) and a Chrome ``trace_event``
  exporter (open the file in ``chrome://tracing`` or Perfetto).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters, gauges
  and fixed-bucket histograms with ``snapshot()`` and a Prometheus-style
  ``render()``; the process-wide default registry is disabled (no-op cost)
  until :func:`get_registry`\\ ``().enable()``.
* :mod:`repro.obs.instrument` — the helpers (:func:`maybe_span`,
  :func:`phase_timings`) and shared default-registry instruments the core,
  dynamic, durability and serving layers are wired through.

Typical use::

    from repro.obs import Trace
    trace = Trace()
    result = solve(quality, metric, tradeoff=0.5, p=10, shards=8, trace=trace)
    trace.export("solve.trace.json")        # open in Perfetto
    result.metadata["timings"]              # compact per-phase breakdown
"""

from repro.obs.instrument import maybe_span, maybe_start_span, phase_timings
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import Span, SpanBundle, SpanHandle, Stopwatch, Trace, timed

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "Span",
    "SpanBundle",
    "SpanHandle",
    "Stopwatch",
    "Trace",
    "get_registry",
    "maybe_span",
    "maybe_start_span",
    "phase_timings",
    "timed",
]
