"""Lightweight span tracing for the solve / dynamic / serving stack.

A :class:`Trace` collects named, nested :class:`Span` records — wall-clock
phases of a solve (restrict, shard solves, greedy rounds), a dynamic tick
(WAL append, apply, repair) or a serving window (queue wait, execute).  The
design goals, in order:

* **Cheap.**  Entering a span is a ``perf_counter`` read, a counter bump and
  a contextvar set; when no trace is passed (the default everywhere) the
  instrumented code paths go through :func:`repro.obs.instrument.maybe_span`
  which returns a shared no-op context manager — the disabled overhead is
  guarded at ≈0% in ``benchmarks/test_perf_obs.py``.
* **Correctly nested without plumbing.**  The current span id is propagated
  through a :mod:`contextvars` variable, so a span opened anywhere below an
  open span becomes its child automatically — across ``async`` tasks too,
  since contextvars follow the task context.
* **Pool-worker safe.**  Contextvars do not cross threads or processes, and
  a pickled :class:`Trace` would be an orphaned copy.  Pool workers instead
  record spans into their *own* local trace and ship a :class:`SpanBundle`
  back with the shard result; the parent folds it in with
  :meth:`Trace.adopt` — the same ship-it-back pattern
  :meth:`Stopwatch.merge` has always used for shard timings.
* **Readable.**  :meth:`Trace.export` writes Chrome ``trace_event`` JSON
  loadable in ``chrome://tracing`` or `Perfetto <https://ui.perfetto.dev>`_.

Clocks: span durations come from :func:`time.perf_counter` (monotonic);
span *placement* uses offsets from the trace's epoch.  Adopted worker
bundles are rebased via their Unix-epoch anchor, so cross-process spans
land at approximately the right wall-clock position (same-host clock skew —
microseconds — is irrelevant at trace-viewing resolution).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar

T = TypeVar("T")

__all__ = [
    "Span",
    "SpanBundle",
    "SpanHandle",
    "Stopwatch",
    "Trace",
    "timed",
]

#: (trace token, span id) of the innermost open span in this context.  One
#: process-wide variable keyed by a per-trace token, so two live traces never
#: adopt each other's parents.
_ACTIVE: ContextVar[Optional[Tuple[int, int]]] = ContextVar(
    "repro_obs_active_span", default=None
)

_TRACE_TOKENS = itertools.count(1)

#: Sentinel distinguishing "no explicit parent given" (inherit the contextvar)
#: from "explicitly a root span" (``parent_id=None``).
_INHERIT = object()


@dataclass
class Span:
    """One completed (or synthetic) timed phase.

    ``start_s`` is the offset from the owning trace's epoch in seconds;
    ``duration_s`` is measured on the monotonic clock.  ``status`` is
    ``"ok"`` unless the block raised (``"error"``) or the span was recorded
    synthetically for work that never reported back (for example
    ``"worker_crash"`` when a SIGKILLed pool worker took its spans with it).
    Plain picklable data, so bundles cross process boundaries untouched.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    duration_s: float
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0
    tid: int = 0
    status: str = "ok"


@dataclass(frozen=True)
class SpanBundle:
    """Spans recorded by a pool worker, shipped back with its result.

    ``epoch_unix`` anchors the worker trace's epoch on the Unix clock so the
    parent can rebase span offsets into its own timeline (see
    :meth:`Trace.adopt`).  The bundle also *is* the shard's timing record:
    :attr:`elapsed` sums the root spans' durations, which is what the parent
    folds into its shard :class:`Stopwatch` — one code path for span and
    stopwatch accounting.
    """

    spans: Tuple[Span, ...]
    epoch_unix: float

    @property
    def elapsed(self) -> float:
        """Total duration of the bundle's root spans, in seconds."""
        return sum(s.duration_s for s in self.spans if s.parent_id is None)


class SpanHandle:
    """Mutable view of an *open* span: set attributes, then finish it.

    Yielded by :meth:`Trace.span`; also usable explicitly via
    :meth:`Trace.start_span` / :meth:`finish` when a phase cannot be wrapped
    in a single ``with`` block (multiple exit points).  ``finish`` is
    idempotent.
    """

    __slots__ = ("_trace", "id", "name", "parent_id", "_start", "attrs", "_token",
                 "status", "_done")

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        name: str,
        parent_id: Optional[int],
        attrs: Dict[str, object],
    ) -> None:
        self._trace = trace
        self.id = span_id
        self.name = name
        self.parent_id = parent_id
        self.attrs = attrs
        self.status = "ok"
        self._start = time.perf_counter()
        self._token = _ACTIVE.set((trace._token, span_id))
        self._done = False

    def set(self, **attrs: object) -> "SpanHandle":
        """Attach attributes to the open span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def finish(self, status: Optional[str] = None) -> None:
        """Close the span, recording its duration (idempotent)."""
        if self._done:
            return
        self._done = True
        duration = time.perf_counter() - self._start
        if status is not None:
            self.status = status
        _ACTIVE.reset(self._token)
        self._trace._record_finished(self, duration)


class _NullHandle:
    """No-op stand-in yielded when tracing is disabled."""

    __slots__ = ()
    id = None

    def set(self, **attrs: object) -> "_NullHandle":
        return self

    def finish(self, status: Optional[str] = None) -> None:
        return None


NULL_HANDLE = _NullHandle()


class Trace:
    """A thread-safe collection of spans with one shared timeline.

    Example
    -------
    >>> trace = Trace()
    >>> with trace.span("solve", n=100) as root:
    ...     with trace.span("restrict"):
    ...         pass
    >>> [s.name for s in trace.spans()]
    ['restrict', 'solve']
    >>> trace.spans()[0].parent_id == root.id
    True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._ids = itertools.count(1)
        self._token = next(_TRACE_TOKENS)
        self._epoch_perf = time.perf_counter()
        self._epoch_unix = time.time()

    # ------------------------------------------------------------------ record
    def start_span(
        self,
        name: str,
        *,
        parent_id: object = _INHERIT,
        **attrs: object,
    ) -> SpanHandle:
        """Open a span explicitly; pair with :meth:`SpanHandle.finish`.

        ``parent_id`` defaults to the innermost open span of *this* trace in
        the current context; pass ``None`` to force a root span, or an
        explicit id when crossing a thread boundary (contextvars do not
        follow ``run_in_executor``).
        """
        if parent_id is _INHERIT:
            parent_id = self.current_span_id()
        with self._lock:
            span_id = next(self._ids)
        return SpanHandle(self, span_id, name, parent_id, dict(attrs))

    @contextmanager
    def span(
        self,
        name: str,
        *,
        parent_id: object = _INHERIT,
        **attrs: object,
    ) -> Iterator[SpanHandle]:
        """Record the block as a span; exceptions mark ``status="error"``."""
        handle = self.start_span(name, parent_id=parent_id, **attrs)
        try:
            yield handle
        except BaseException as error:
            handle.attrs.setdefault("error", repr(error))
            handle.finish(status="error")
            raise
        else:
            handle.finish()

    def _record_finished(self, handle: SpanHandle, duration: float) -> None:
        span = Span(
            name=handle.name,
            span_id=handle.id,
            parent_id=handle.parent_id,
            start_s=handle._start - self._epoch_perf,
            duration_s=duration,
            attrs=handle.attrs,
            pid=os.getpid(),
            tid=threading.get_ident(),
            status=handle.status,
        )
        with self._lock:
            self._spans.append(span)

    def record_span(
        self,
        name: str,
        *,
        parent_id: Optional[int] = None,
        duration_s: float = 0.0,
        status: str = "ok",
        **attrs: object,
    ) -> Span:
        """Append a synthetic span directly (no timing block).

        Used for work that produced no span of its own — e.g. the parent
        records a ``status="worker_crash"`` shard span when a killed pool
        worker's local spans are unrecoverable, so the loss is visible in
        the trace instead of silent.
        """
        now = time.perf_counter() - self._epoch_perf
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=parent_id,
                start_s=max(0.0, now - duration_s),
                duration_s=duration_s,
                attrs=dict(attrs),
                pid=os.getpid(),
                tid=threading.get_ident(),
                status=status,
            )
            self._spans.append(span)
        return span

    def current_span_id(self) -> Optional[int]:
        """Id of the innermost open span of this trace in this context."""
        active = _ACTIVE.get()
        if active is not None and active[0] == self._token:
            return active[1]
        return None

    # ---------------------------------------------------------------- shipping
    def bundle(self) -> SpanBundle:
        """Snapshot this trace's spans for shipping across a pool boundary."""
        return SpanBundle(spans=self.spans(), epoch_unix=self._epoch_unix)

    def adopt(
        self, bundle: SpanBundle, *, parent_id: Optional[int] = None
    ) -> List[int]:
        """Fold a worker's spans into this trace; returns the new root ids.

        Span ids are remapped into this trace's id space (bundles from many
        workers would otherwise collide), root spans are re-parented under
        ``parent_id``, and start offsets are rebased through the bundle's
        Unix-epoch anchor so the spans land at the wall-clock position the
        worker actually ran (clamped to this trace's timeline start).
        """
        offset = bundle.epoch_unix - self._epoch_unix
        id_map: Dict[int, int] = {}
        adopted_roots: List[int] = []
        with self._lock:
            for span in bundle.spans:
                id_map[span.span_id] = next(self._ids)
            for span in bundle.spans:
                if span.parent_id is None:
                    new_parent = parent_id
                else:
                    new_parent = id_map.get(span.parent_id, parent_id)
                new_id = id_map[span.span_id]
                if span.parent_id is None:
                    adopted_roots.append(new_id)
                self._spans.append(
                    Span(
                        name=span.name,
                        span_id=new_id,
                        parent_id=new_parent,
                        start_s=max(0.0, span.start_s + offset),
                        duration_s=span.duration_s,
                        attrs=dict(span.attrs),
                        pid=span.pid,
                        tid=span.tid,
                        status=span.status,
                    )
                )
        return adopted_roots

    # ----------------------------------------------------------------- queries
    def spans(self) -> Tuple[Span, ...]:
        """Snapshot of the completed spans (in completion order)."""
        with self._lock:
            return tuple(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def find(self, name: str) -> List[Span]:
        """All completed spans with the given name."""
        return [span for span in self.spans() if span.name == name]

    def descendants(self, root_id: Optional[int]) -> List[Span]:
        """Completed spans whose parent chain reaches ``root_id``.

        ``root_id=None`` returns every completed span.  The root itself is
        excluded (it is usually still open when this is called).
        """
        snapshot = self.spans()
        if root_id is None:
            return list(snapshot)
        by_id = {span.span_id: span for span in snapshot}
        out: List[Span] = []
        for span in snapshot:
            parent = span.parent_id
            while parent is not None:
                if parent == root_id:
                    out.append(span)
                    break
                above = by_id.get(parent)
                parent = above.parent_id if above is not None else None
        return out

    def aggregate(self, root_id: Optional[int] = None) -> Dict[str, float]:
        """Total seconds per span name, optionally restricted to a subtree."""
        totals: Dict[str, float] = {}
        for span in self.descendants(root_id):
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals

    # ------------------------------------------------------------------ export
    def to_chrome(self) -> Dict[str, object]:
        """This trace as a Chrome ``trace_event`` JSON object.

        Complete ``"ph": "X"`` duration events with microsecond timestamps;
        span attributes, ids and status ride in ``args`` so tooling (and our
        tests) can reconstruct the parent/child structure exactly rather
        than inferring it from time containment.
        """
        events: List[Dict[str, object]] = []
        for span in self.spans():
            args: Dict[str, object] = dict(span.attrs)
            args["span_id"] = span.span_id
            args["parent_id"] = span.parent_id
            args["status"] = span.status
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self, path: str) -> str:
        """Write Chrome-trace JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.to_chrome(), stream)
        return path


@dataclass
class Stopwatch:
    """Accumulating stopwatch with millisecond reporting.

    The scalar little sibling of :class:`Trace`: where a trace records *which*
    phases time went to, a stopwatch only accumulates a total — which is all
    the shard map's ``shard_seconds`` metadata needs.  Both use the same
    ship-it-back pattern for pool workers: workers measure locally and the
    parent folds the result in (:meth:`add` / :meth:`merge` here,
    :meth:`Trace.adopt` for spans).

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure():
    ...     _ = sum(range(1000))
    >>> watch.elapsed_ms >= 0.0
    True
    """

    elapsed_seconds: float = field(default=0.0)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager adding the block's duration to the total.

        Thread-safe: concurrent ``measure`` blocks from pool workers all land
        in the total without losing updates to the read-modify-write race.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - start)

    def add(self, seconds: float) -> None:
        """Fold an externally measured duration into the total.

        This is the process-pool pattern: workers report their own elapsed
        seconds (mutating a pickled stopwatch copy would be lost with the
        worker) and the parent accumulates them here.
        """
        with self._lock:
            self.elapsed_seconds += seconds

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's total into this one."""
        self.add(other.elapsed_seconds)

    @property
    def elapsed_ms(self) -> float:
        """Total elapsed time in milliseconds."""
        return self.elapsed_seconds * 1000.0

    def reset(self) -> None:
        """Zero the accumulated time."""
        with self._lock:
            self.elapsed_seconds = 0.0

    # Locks cannot cross process boundaries; drop the lock when pickling into
    # a pool worker and recreate a fresh one on arrival.  The copy is fully
    # independent of the parent stopwatch by construction.
    def __getstate__(self) -> dict:
        return {"elapsed_seconds": self.elapsed_seconds}

    def __setstate__(self, state: dict) -> None:
        self.elapsed_seconds = state["elapsed_seconds"]
        self._lock = threading.Lock()


def timed(func: Callable[[], T]) -> Tuple[T, float]:
    """Run ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
