"""Wiring between the observability primitives and the solve stack.

Two things live here: (1) the *helpers* the instrumented modules call —
:func:`maybe_span` (a span when a trace is active, a shared no-op when not)
and :func:`phase_timings` (the compact ``metadata["timings"]`` breakdown) —
and (2) the *default-registry instruments* those modules share, declared
once so the WAL, the dynamic session and the server agree on metric names
without importing each other.

The default registry starts disabled, so every instrument below is a no-op
(boolean check, no lock) until a process opts in::

    from repro.obs import get_registry
    get_registry().enable()
    ...
    print(get_registry().render())   # Prometheus text exposition
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, Optional

from repro.obs.metrics import REGISTRY
from repro.obs.trace import NULL_HANDLE, SpanHandle, Trace

__all__ = [
    "maybe_span",
    "maybe_start_span",
    "phase_timings",
    "SHARD_FAILURES",
    "SOLVES",
    "SOLVE_SECONDS",
    "SERVE_PENDING",
    "SERVE_REQUESTS",
    "SNAPSHOT_WRITE_SECONDS",
    "TICKS",
    "TICK_CERTIFICATES",
    "TICK_SECONDS",
    "WAL_APPEND_SECONDS",
    "WAL_FSYNC_SECONDS",
]


@contextmanager
def maybe_span(
    trace: Optional[Trace], name: str, **attrs: object
) -> Iterator[SpanHandle]:
    """``trace.span(...)`` when tracing is on, a shared no-op handle when off.

    The disabled path is one ``None`` check plus building the ``attrs``
    dict, so call sites should keep attribute expressions cheap (or attach
    them post-hoc via ``handle.set`` only when ``handle.id is not None``).
    """
    if trace is None:
        yield NULL_HANDLE
        return
    with trace.span(name, **attrs) as handle:
        yield handle


def maybe_start_span(
    trace: Optional[Trace], name: str, **attrs: object
) -> SpanHandle:
    """Explicit-start variant for regions with multiple exit points.

    Returns the shared no-op handle when tracing is off; otherwise an open
    :class:`~repro.obs.trace.SpanHandle` the caller must ``finish()``
    (idempotent, so ``finally: handle.finish()`` is safe everywhere).
    """
    if trace is None:
        return NULL_HANDLE
    return trace.start_span(name, **attrs)


def phase_timings(
    trace: Trace,
    root_id: Optional[int],
    *,
    total: Optional[float] = None,
) -> Dict[str, float]:
    """Seconds per phase under ``root_id``, as a plain metadata-ready dict.

    This is the compact ``SolverResult.metadata["timings"]`` payload: span
    names map to their summed durations within the solve's subtree (shards
    aggregate into one ``"shard"`` entry, greedy rounds into one
    ``"greedy_rounds"`` entry, …).  ``total`` adds the enclosing wall time —
    passed explicitly because the root span is usually still open when the
    result metadata is assembled.
    """
    timings = {
        name: round(seconds, 6)
        for name, seconds in sorted(trace.aggregate(root_id).items())
    }
    if total is not None:
        timings["total"] = round(total, 6)
    return timings


# --------------------------------------------------------------------------
# Default-registry instruments, shared across the stack.  Names follow the
# Prometheus convention: `repro_` prefix, `_total` counters, `_seconds`
# timings.  All are inert until `get_registry().enable()`.
# --------------------------------------------------------------------------

SOLVES = REGISTRY.counter(
    "repro_solve_total",
    help="Completed solves by entry path (plain, sharded, window).",
    labelnames=("path",),
)
SOLVE_SECONDS = REGISTRY.histogram(
    "repro_solve_seconds",
    help="End-to-end solve wall time by entry path.",
    labelnames=("path",),
)
SHARD_FAILURES = REGISTRY.counter(
    "repro_shard_failures_total",
    help="Shard-map failures by stage (worker, worker_timeout, worker_crash, "
    "serial).",
    labelnames=("stage",),
)
TICKS = REGISTRY.counter(
    "repro_ticks_total",
    help="Dynamic-session ticks applied, by backend (dense, sharded).",
    labelnames=("backend",),
)
TICK_SECONDS = REGISTRY.histogram(
    "repro_tick_seconds",
    help="Dynamic tick phase timings (journal, apply).",
    labelnames=("phase",),
)
TICK_CERTIFICATES = REGISTRY.counter(
    "repro_tick_certificate_total",
    help="Dense-tick no-swap certificate outcomes (hit = repair skipped).",
    labelnames=("outcome",),
)
WAL_APPEND_SECONDS = REGISTRY.histogram(
    "repro_wal_append_seconds",
    help="Write-ahead-log append latency (frame encode + write).",
)
WAL_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    help="Write-ahead-log fsync latency (flush + os.fsync).",
)
SNAPSHOT_WRITE_SECONDS = REGISTRY.histogram(
    "repro_snapshot_write_seconds",
    help="Atomic snapshot write latency (serialize + fsync + rename).",
)
SERVE_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total",
    help="Serving requests by outcome (completed, failed, cancelled, shed).",
    labelnames=("outcome",),
)
SERVE_PENDING = REGISTRY.gauge(
    "repro_serve_pending",
    help="Requests admitted but not yet completed.",
)
