"""Process-wide metrics: counters, gauges and fixed-bucket histograms.

Where :mod:`repro.obs.trace` answers "where did *this* solve's time go?",
the metrics layer answers "what has this process been doing?" — cumulative
counters (ticks applied, shard failures by stage), point-in-time gauges
(pending requests) and latency histograms (WAL fsync, serving queue wait)
that survive across individual solves and render as a Prometheus-style text
exposition for scraping.

Cost discipline
---------------
Instruments bound to a *disabled* registry are cheap no-ops: every
``inc``/``set``/``observe`` checks a plain boolean attribute before taking
the registry lock, so leaving the default registry disabled (it is, unless
:func:`repro.obs.instrument` consumers enable it) keeps hot paths at a
function call + attribute read.  Standalone instruments (``registry=None``),
like the serving tier's latency histograms, are always on — they are owned
by objects that exist only when the feature is in use.

Histograms use *fixed* bucket bounds chosen at construction, so observation
is O(#buckets) worst-case (a linear scan over ≤ ~20 bounds) with no
allocation, and quantile estimates interpolate within the bucket — the
standard Prometheus trade: cheap writes, bounded-error reads.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Log-spaced seconds from 0.1 ms to 60 s — wide enough for WAL fsyncs at the
#: bottom and sharded 10⁶-element solves at the top.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, object], name: str
) -> Tuple[str, ...]:
    """Validate and order a label set against the declared label names."""
    if set(labels) != set(labelnames):
        raise InvalidParameterError(
            f"metric {name!r} takes labels {labelnames}, got {tuple(labels)}"
        )
    return tuple(str(labels[key]) for key in labelnames)


def _render_labels(labelnames: Tuple[str, ...], key: Tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{label}="{value}"' for label, value in zip(labelnames, key)
    )
    return "{" + pairs + "}"


class _Instrument:
    """Shared plumbing: name/help/labels, a lock, and the enabled gate."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._registry = registry
        self._lock = threading.Lock()

    def enabled(self) -> bool:
        """Whether writes currently record (always true when standalone)."""
        return self._registry is None or self._registry.enabled

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        return _label_key(self.labelnames, labels, self.name)


class Counter(_Instrument):
    """Monotonically increasing count, optionally labeled."""

    kind = "counter"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled():
            return
        if amount < 0:
            raise InvalidParameterError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def snapshot(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> Iterable[str]:
        for key, value in sorted(self.snapshot().items()):
            yield f"{self.name}{_render_labels(self.labelnames, key)} {value:g}"


class Gauge(_Instrument):
    """Point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: object) -> None:
        if not self.enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled():
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def snapshot(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._values)

    def reset(self) -> None:
        with self._lock:
            self._values.clear()

    def render(self) -> Iterable[str]:
        for key, value in sorted(self.snapshot().items()):
            yield f"{self.name}{_render_labels(self.labelnames, key)} {value:g}"


class _HistogramState:
    """Per-label-set histogram accumulator."""

    __slots__ = ("counts", "total", "sum", "maximum")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets  # one per finite bound, +Inf implicit
        self.total = 0
        self.sum = 0.0
        self.maximum = -math.inf


class Histogram(_Instrument):
    """Fixed-bucket histogram with interpolated quantile estimates.

    ``observe`` is a bisect into the (sorted, fixed) bucket bounds under the
    lock — no per-read sorting anywhere, which is the point: the serving
    tier's p50/p99 used to sort an 8192-sample ring on every stats read and
    now reads cumulative bucket counts instead.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        registry: Optional["MetricsRegistry"] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames, registry)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds or any(
            not math.isfinite(bound) for bound in bounds
        ):
            raise InvalidParameterError(
                "histogram buckets must be a non-empty sequence of finite bounds"
            )
        if len(set(bounds)) != len(bounds):
            raise InvalidParameterError("histogram buckets must be distinct")
        self.buckets = bounds
        self._states: Dict[Tuple[str, ...], _HistogramState] = {}

    def _state(self, key: Tuple[str, ...]) -> _HistogramState:
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _HistogramState(len(self.buckets))
        return state

    def observe(self, value: float, **labels: object) -> None:
        if not self.enabled():
            return
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            state = self._state(key)
            if index < len(state.counts):
                state.counts[index] += 1
            state.total += 1
            state.sum += value
            state.maximum = max(state.maximum, value)

    def count(self, **labels: object) -> int:
        with self._lock:
            state = self._states.get(self._key(labels))
            return state.total if state is not None else 0

    def sum(self, **labels: object) -> float:
        with self._lock:
            state = self._states.get(self._key(labels))
            return state.sum if state is not None else 0.0

    def quantile(self, q: float, **labels: object) -> float:
        """Estimate the ``q``-quantile by interpolating within its bucket.

        The overflow (+Inf) bucket interpolates toward the maximum observed
        value, so a p99 beyond the last bound degrades gracefully instead of
        clipping.  Returns 0.0 with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError("quantile must be within [0, 1]")
        with self._lock:
            state = self._states.get(self._key(labels))
            if state is None or state.total == 0:
                return 0.0
            counts = list(state.counts)
            total = state.total
            maximum = state.maximum
        rank = q * total
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            previous = cumulative
            cumulative += counts[index]
            if cumulative >= rank and counts[index] > 0:
                fraction = (rank - previous) / counts[index]
                return lower + (bound - lower) * min(1.0, max(0.0, fraction))
            lower = bound
        # Overflow bucket: interpolate between the last bound and the max.
        overflow = total - cumulative
        if overflow <= 0:
            return min(lower, maximum) if maximum > -math.inf else lower
        fraction = (rank - cumulative) / overflow
        top = max(maximum, lower)
        return lower + (top - lower) * min(1.0, max(0.0, fraction))

    def snapshot(self) -> Dict[Tuple[str, ...], Dict[str, object]]:
        with self._lock:
            out: Dict[Tuple[str, ...], Dict[str, object]] = {}
            for key, state in self._states.items():
                out[key] = {
                    "buckets": dict(zip(self.buckets, state.counts)),
                    "count": state.total,
                    "sum": state.sum,
                    "max": state.maximum if state.total else None,
                }
            return out

    def reset(self) -> None:
        with self._lock:
            self._states.clear()

    def render(self) -> Iterable[str]:
        for key, data in sorted(self.snapshot().items()):
            cumulative = 0
            for bound in self.buckets:
                cumulative += data["buckets"][bound]
                labels = _render_labels(
                    self.labelnames + ("le",), key + (f"{bound:g}",)
                )
                yield f"{self.name}_bucket{labels} {cumulative}"
            labels = _render_labels(self.labelnames + ("le",), key + ("+Inf",))
            yield f"{self.name}_bucket{labels} {data['count']}"
            plain = _render_labels(self.labelnames, key)
            yield f"{self.name}_sum{plain} {data['sum']:g}"
            yield f"{self.name}_count{plain} {data['count']}"


class MetricsRegistry:
    """A named family of instruments with one enable/disable switch.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking for an
    existing name returns the existing instrument (and raises if the kind or
    labels disagree), so independent modules can reference the same metric
    without import-order coupling.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def _get_or_create(self, cls, name: str, kwargs: dict) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as {existing.kind}"
                    )
                declared = tuple(kwargs.get("labelnames", ()))
                if declared != existing.labelnames:
                    raise InvalidParameterError(
                        f"metric {name!r} already registered with labels "
                        f"{existing.labelnames}, got {declared}"
                    )
                return existing
            instrument = cls(name, registry=self, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(
            Counter, name, {"help": help, "labelnames": tuple(labelnames)}
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, {"help": help, "labelnames": tuple(labelnames)}
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram,
            name,
            {
                "help": help,
                "labelnames": tuple(labelnames),
                "buckets": tuple(buckets),
            },
        )

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def snapshot(self) -> Dict[str, object]:
        """All instrument values keyed by metric name (labels as sub-keys)."""
        out: Dict[str, object] = {}
        for instrument in self.instruments():
            raw = instrument.snapshot()
            if instrument.labelnames:
                out[instrument.name] = {
                    _render_labels(instrument.labelnames, key).strip("{}"): value
                    for key, value in raw.items()
                }
            else:
                empty: object = {} if instrument.kind == "histogram" else 0.0
                out[instrument.name] = raw.get((), empty)
        return out

    def reset(self) -> None:
        """Zero every instrument's values (instruments stay registered)."""
        for instrument in self.instruments():
            instrument.reset()

    def render(self) -> str:
        """Prometheus-style text exposition of every instrument."""
        lines: List[str] = []
        for instrument in sorted(self.instruments(), key=lambda i: i.name):
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {instrument.help}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")


#: The process-wide default registry.  Disabled by default — enabling it is
#: an explicit observability opt-in (``get_registry().enable()``), which is
#: what keeps the instrumented hot paths at no-op cost otherwise.
REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY
