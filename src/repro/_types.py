"""Shared type aliases and lightweight protocols used across the library.

The library identifies ground-set elements by non-negative integer indices
``0 .. n-1``.  Higher-level wrappers (for example the LETOR-like corpus in
:mod:`repro.data.letor`) map their domain objects onto these indices and keep
the reverse mapping themselves.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Protocol, Sequence, runtime_checkable

#: A ground-set element.  The library always uses dense integer indices.
Element = int

#: Any iterable of elements; algorithms normalize these to ``frozenset``.
ElementSet = AbstractSet[Element]

#: An ordered collection of elements (e.g. a greedy selection order).
ElementSequence = Sequence[Element]


@runtime_checkable
class DistanceOracle(Protocol):
    """Minimal interface algorithms need from a distance structure."""

    @property
    def n(self) -> int:
        """Number of ground-set elements."""

    def distance(self, u: Element, v: Element) -> float:
        """Return ``d(u, v)``."""


@runtime_checkable
class ValueOracle(Protocol):
    """Minimal interface algorithms need from a set-valuation function."""

    def value(self, subset: Iterable[Element]) -> float:
        """Return ``f(S)`` for the given subset."""

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        """Return ``f(S + u) - f(S)``."""


@runtime_checkable
class IndependenceOracle(Protocol):
    """Minimal interface algorithms need from a matroid."""

    def is_independent(self, subset: Iterable[Element]) -> bool:
        """Return ``True`` when the subset is independent in the matroid."""
