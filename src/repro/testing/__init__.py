"""Testing utilities: fault injection for the solver stack's recovery paths."""

from repro.testing.faults import (
    CrashingMetric,
    CrashingSetFunction,
    FaultyMetric,
    FaultySetFunction,
    NaNMetric,
    NaNSetFunction,
    SimulatedCrash,
    SlowMetric,
    WorkerKillingMetric,
    crash_after_snapshot,
    flip_byte,
    kill_current_process,
    tear_wal_tail,
)
