"""Testing utilities: fault injection for the solver stack's recovery paths."""

from repro.testing.faults import (
    CrashingMetric,
    CrashingSetFunction,
    FaultyMetric,
    FaultySetFunction,
    NaNMetric,
    NaNSetFunction,
    SlowMetric,
    WorkerKillingMetric,
    kill_current_process,
)
