"""Fault-injection wrappers for exercising the stack's recovery paths.

The fault-tolerance machinery — shard-worker recovery, deadlines, numerical
degradation — only earns its keep if the failure modes it defends against can
be *reproduced on demand*.  This module provides picklable wrappers that
inject faults into the two oracles every solve is built on:

* :class:`CrashingMetric` / :class:`CrashingSetFunction` — raise a
  ``RuntimeError`` on oracle calls (a bounded number of times, so retry
  paths can be observed succeeding);
* :class:`SlowMetric` — sleep on first use, long enough to trip per-shard
  timeouts but always *finite*, so abandoned workers still wind down and the
  interpreter can exit;
* :class:`NaNMetric` / :class:`NaNSetFunction` — poison query results with
  NaN *after* construction-time validation has passed, the way a corrupted
  cache or a buggy user oracle would;
* :class:`WorkerKillingMetric` — ``SIGKILL`` the current process on first
  oracle call, which from a :class:`~concurrent.futures.ProcessPoolExecutor`
  parent's point of view is a ``BrokenProcessPool``.

Every wrapper supports ``only_in_workers=True``: the constructing (parent)
process pid is recorded, and the fault fires only when the wrapper finds
itself executing in a *different* process — i.e. inside a process-pool
worker.  That makes worker-crash scenarios picklable and, crucially, lets
the sharded solver's serial in-process fallback succeed on the very same
objects that just killed the pool.

Wrappers propagate themselves through :meth:`~repro.metrics.base.Metric.restrict_lazy`
and :meth:`~repro.metrics.base.Metric.restrict`, so a fault planted on a
corpus metric survives the sharding pipeline's sub-metric construction into
the workers.

The durability layer gets its own crash-injection helpers, operating on the
*files* a :class:`~repro.durability.recovery.DurableStore` writes rather
than on oracles:

* :func:`tear_wal_tail` — drop the last bytes of a write-ahead log, the
  shape of a crash mid-append (torn final record → repaired on recovery);
* :func:`flip_byte` — corrupt one byte in place, the shape of bit rot or a
  misdirected write (mid-log damage → ``WalCorruptionError``);
* :class:`SimulatedCrash` / :func:`crash_after_snapshot` — abort compaction
  in the window *between* writing the new snapshot and truncating the log,
  the classic double-state crash recovery must treat idempotently.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Iterable, Optional

import numpy as np

from repro._types import Element
from repro.functions.base import Candidates, GainState, SetFunction
from repro.metrics.base import Metric

__all__ = [
    "FaultyMetric",
    "CrashingMetric",
    "SlowMetric",
    "NaNMetric",
    "WorkerKillingMetric",
    "FaultySetFunction",
    "CrashingSetFunction",
    "NaNSetFunction",
    "SimulatedCrash",
    "crash_after_snapshot",
    "flip_byte",
    "kill_current_process",
    "tear_wal_tail",
]


def kill_current_process() -> None:  # pragma: no cover - kills the process
    """Terminate the current process immediately with ``SIGKILL``.

    No Python-level cleanup runs — from the parent pool's perspective this is
    indistinguishable from an OOM kill or a segfault, which is exactly the
    condition :mod:`repro.core.sharding` must survive as ``BrokenProcessPool``.
    """
    os.kill(os.getpid(), signal.SIGKILL)


class _FaultSwitch:
    """Shared arming logic: process scoping plus a bounded fire budget."""

    __slots__ = ("parent_pid", "remaining")

    def __init__(self, only_in_workers: bool, fail_times: Optional[int]) -> None:
        self.parent_pid = os.getpid() if only_in_workers else None
        self.remaining = fail_times

    def should_fire(self) -> bool:
        if self.parent_pid is not None and os.getpid() == self.parent_pid:
            return False
        if self.remaining is not None:
            if self.remaining <= 0:
                return False
            self.remaining -= 1
        return True


class FaultyMetric(Metric):
    """Delegating metric wrapper; subclasses override :meth:`_fault`.

    Every oracle entry point (``distance``, ``distances_from``, ``row``,
    ``block``, ``to_matrix``) calls :meth:`_fault` before delegating to the
    wrapped metric.  Restrictions re-wrap their sub-metric in the same fault
    class sharing this wrapper's :class:`_FaultSwitch`, so the fault budget
    is global across the restriction tree within one process.
    """

    def __init__(
        self,
        inner: Metric,
        *,
        only_in_workers: bool = False,
        fail_times: Optional[int] = None,
    ) -> None:
        self._inner = inner
        self._switch = _FaultSwitch(only_in_workers, fail_times)

    # -- fault hook -----------------------------------------------------
    def _fault(self) -> None:
        """Called before every delegated oracle query."""

    def _rewrap(self, inner: Metric) -> "FaultyMetric":
        clone = type(self).__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._inner = inner
        clone._switch = self._switch
        return clone

    # -- Metric interface ------------------------------------------------
    @property
    def n(self) -> int:
        return self._inner.n

    def distance(self, u: Element, v: Element) -> float:
        self._fault()
        return self._inner.distance(u, v)

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        self._fault()
        return self._inner.distances_from(u, targets)

    def row(self, u: Element) -> np.ndarray:
        self._fault()
        return self._inner.row(u)

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        self._fault()
        return self._inner.block(rows, cols)

    def to_matrix(self) -> np.ndarray:
        self._fault()
        return self._inner.to_matrix()

    def matrix_view(self) -> Optional[np.ndarray]:
        # Deliberately opaque: exposing the inner view would let the kernel
        # layer bypass the fault hooks entirely.
        return None

    def restrict_lazy(self, elements: Iterable[Element]) -> Optional[Metric]:
        lazy = self._inner.restrict_lazy(elements)
        if lazy is None:
            return None
        return self._rewrap(lazy)

    def restrict(self, elements: Iterable[Element]) -> Metric:
        return self._rewrap(self._inner.restrict(elements))

    @property
    def parallel_safe(self) -> bool:
        return self._inner.parallel_safe


class CrashingMetric(FaultyMetric):
    """Raise ``RuntimeError`` on oracle calls.

    ``fail_times`` bounds how often (``None`` = every call): with
    ``fail_times=1`` the first query of a shard solve crashes it and the
    retry succeeds, which is exactly the shape the bounded-retry path needs.
    """

    def _fault(self) -> None:
        if self._switch.should_fire():
            raise RuntimeError("injected metric fault")


class SlowMetric(FaultyMetric):
    """Sleep ``delay_s`` once per process on first oracle use.

    Sleeping once (rather than per call) keeps the injected slowness O(1):
    long enough to overrun a per-shard timeout, short enough that the
    abandoned worker finishes its nap and the interpreter can exit cleanly —
    a *hung-forever* worker would block test-process teardown.
    """

    def __init__(
        self,
        inner: Metric,
        delay_s: float,
        *,
        only_in_workers: bool = True,
        fail_times: Optional[int] = 1,
    ) -> None:
        super().__init__(inner, only_in_workers=only_in_workers, fail_times=fail_times)
        self._delay_s = float(delay_s)

    def _fault(self) -> None:
        if self._switch.should_fire():
            time.sleep(self._delay_s)


class NaNMetric(FaultyMetric):
    """Poison query results with NaN after construction-time checks passed.

    Every delegated result is overwritten with NaN while the switch fires —
    the post-validation corruption (a bad cache read, a buggy oracle) the
    finiteness gates at construction *cannot* catch, exercising the runtime
    NaN guards instead.
    """

    def distance(self, u: Element, v: Element) -> float:
        if self._switch.should_fire():
            return float("nan")
        return self._inner.distance(u, v)

    def distances_from(self, u: Element, targets: Iterable[Element]) -> np.ndarray:
        out = self._inner.distances_from(u, targets)
        if self._switch.should_fire():
            out = np.full_like(out, np.nan)
        return out

    def row(self, u: Element) -> np.ndarray:
        out = np.array(self._inner.row(u), copy=True)
        if self._switch.should_fire():
            out[:] = np.nan
        return out

    def block(self, rows: Iterable[Element], cols: Iterable[Element]) -> np.ndarray:
        out = self._inner.block(rows, cols)
        if self._switch.should_fire():
            out = np.full_like(out, np.nan)
        return out


class WorkerKillingMetric(FaultyMetric):
    """``SIGKILL`` the current process on first oracle call.

    With the default ``only_in_workers=True`` the kill only triggers inside a
    process-pool worker (the parent records its pid at construction), which
    surfaces in the parent as ``BrokenProcessPool`` — and the serial fallback
    then runs the very same metric safely in-process.
    """

    def __init__(
        self,
        inner: Metric,
        *,
        only_in_workers: bool = True,
        fail_times: Optional[int] = None,
    ) -> None:
        super().__init__(inner, only_in_workers=only_in_workers, fail_times=fail_times)

    def _fault(self) -> None:
        if self._switch.should_fire():  # pragma: no cover - kills the worker
            kill_current_process()


class FaultySetFunction(SetFunction):
    """Delegating set-function wrapper; subclasses override :meth:`_fault`."""

    def __init__(
        self,
        inner: SetFunction,
        *,
        only_in_workers: bool = False,
        fail_times: Optional[int] = None,
    ) -> None:
        self._inner = inner
        self._switch = _FaultSwitch(only_in_workers, fail_times)

    def _fault(self) -> None:
        """Called before every delegated oracle query."""

    @property
    def n(self) -> int:
        return self._inner.n

    def value(self, subset: Iterable[Element]) -> float:
        self._fault()
        return self._inner.value(subset)

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        self._fault()
        return self._inner.marginal(element, subset)

    def gain_state(self, subset: Iterable[Element] = ()) -> GainState:
        return self._inner.gain_state(subset)

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        self._fault()
        return self._inner.gains(candidates, state)

    def push(self, state: GainState, element: Element) -> GainState:
        return self._inner.push(state, element)

    @property
    def is_modular(self) -> bool:
        # Declare non-modular even for modular inner functions so solves use
        # the oracle/gains paths (where the fault hooks live) instead of
        # lifting a weight vector once and never calling the oracle again.
        return False

    @property
    def declares_submodular(self) -> bool:
        return self._inner.declares_submodular

    @property
    def declares_monotone(self) -> bool:
        return self._inner.declares_monotone

    @property
    def parallel_safe(self) -> bool:
        return self._inner.parallel_safe


class CrashingSetFunction(FaultySetFunction):
    """Raise ``RuntimeError`` on value/marginal/gains calls (see switch)."""

    def _fault(self) -> None:
        if self._switch.should_fire():
            raise RuntimeError("injected set-function fault")


class NaNSetFunction(FaultySetFunction):
    """Poison value/marginal/gains results with NaN while the switch fires."""

    def value(self, subset: Iterable[Element]) -> float:
        if self._switch.should_fire():
            return float("nan")
        return self._inner.value(subset)

    def marginal(self, element: Element, subset: Iterable[Element]) -> float:
        if self._switch.should_fire():
            return float("nan")
        return self._inner.marginal(element, subset)

    def gains(self, candidates: Candidates, state: GainState) -> np.ndarray:
        out = self._inner.gains(candidates, state)
        if self._switch.should_fire():
            out = np.full_like(out, np.nan)
        return out


# ----------------------------------------------------------------------
# Durability crash injection
# ----------------------------------------------------------------------
class SimulatedCrash(BaseException):
    """Raised by :func:`crash_after_snapshot` to abort a compaction mid-way.

    Deliberately a ``BaseException``: the injected crash must not be
    swallowed by ordinary ``except Exception`` recovery code on its way out —
    a real ``SIGKILL`` would not be.
    """


def tear_wal_tail(path: str, nbytes: int = 1) -> int:
    """Truncate the last ``nbytes`` bytes off a file, as a crash mid-write would.

    The canonical torn-tail fault: an append that made it only partially to
    disk before power loss.  Recovery must repair this (drop the final
    record with a :class:`~repro.exceptions.DurabilityWarning`), never fail
    on it.  Returns the new file size.
    """
    size = os.path.getsize(path)
    new_size = max(0, size - int(nbytes))
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path: str, offset: int) -> None:
    """XOR-flip one byte of a file in place (negative offsets count from EOF).

    The shape of bit rot or a misdirected write: the file length is intact
    but one payload byte lies.  Mid-log, this must surface as
    :class:`~repro.exceptions.WalCorruptionError` — it cannot be explained
    as a torn append, so silently dropping data behind it would lose
    acknowledged writes.
    """
    size = os.path.getsize(path)
    if offset < 0:
        offset += size
    if not 0 <= offset < size:
        raise ValueError(f"offset {offset} outside file of {size} bytes")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))


def crash_after_snapshot(store: "DurableStore") -> None:
    """Arm ``store`` to raise :class:`SimulatedCrash` during its next compaction.

    The crash fires *after* the compaction checkpoint has landed on disk but
    *before* the journal truncates — the double-state window where both a
    fresh snapshot and the full log exist.  Recovery must prefer the
    snapshot and skip the already-compacted journal prefix; replaying it
    would double-apply every tick.  The hook disarms itself after firing.
    """

    def hook() -> None:
        store.post_snapshot_hook = None
        raise SimulatedCrash("injected crash between snapshot and log truncation")

    store.post_snapshot_hook = hook
