"""Cooperative wall-clock deadlines for anytime solving.

A :class:`Deadline` is a small monotonic-clock budget that the solver stack
threads through its hot loops: greedy selection, local-search swap scans,
streaming arrivals, the batched multi-query map and the sharded core-set
pipeline all poll :meth:`Deadline.expired` at loop boundaries and, on expiry,
stop and return their best-so-far feasible solution with
``result.metadata["interrupted"] = True`` instead of raising.

Design notes
------------
* **Cooperative, not preemptive.**  Nothing is killed; each algorithm checks
  the deadline between iterations, so the response latency is one loop body
  (one vectorized argmax for greedy, one swap scan for local search, one
  shard solve step for sharding — which is why the sharded solver also
  forwards the deadline *into* each shard's greedy).
* **Cheap.**  One ``time.monotonic()`` call and a comparison per check —
  nanoseconds against loop bodies that sweep arrays of length ``n``.  The
  greedy benchmark guards the total overhead at < 5 %.
* **Pickle-safe.**  A deadline shipped to a process-pool worker re-anchors
  itself on arrival with the *remaining* budget at pickling time (monotonic
  clocks are not meaningfully comparable across processes), so shard workers
  honor roughly the budget the parent had left.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro.exceptions import InvalidParameterError

__all__ = ["Deadline", "mark_interrupted"]


class Deadline:
    """A wall-clock budget anchored at construction time.

    Parameters
    ----------
    seconds:
        Budget in seconds from now.  Must be non-negative and finite; a zero
        budget is immediately expired (useful for "return whatever a resumed
        checkpoint already holds").
    """

    __slots__ = ("_seconds", "_started")

    def __init__(self, seconds: float) -> None:
        seconds = float(seconds)
        if not seconds >= 0.0 or seconds != seconds or seconds == float("inf"):
            raise InvalidParameterError(
                f"deadline seconds must be finite and non-negative, got {seconds}"
            )
        self._seconds = seconds
        self._started = time.monotonic()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def coerce(
        cls, deadline: Union[None, float, int, "Deadline"]
    ) -> Optional["Deadline"]:
        """Normalize a user-facing ``deadline_s`` argument.

        ``None`` stays ``None`` (no deadline), a number becomes a fresh
        :class:`Deadline` starting now, and an existing :class:`Deadline`
        passes through unchanged (so nested calls — ``solve`` → sharding →
        per-shard greedy — share one running clock instead of restarting it).
        """
        if deadline is None or isinstance(deadline, cls):
            return deadline
        return cls(deadline)

    @classmethod
    def earliest(
        cls, *deadlines: Optional["Deadline"]
    ) -> Optional["Deadline"]:
        """The deadline with the least remaining budget (``None``s ignored).

        The serving tier's window executor combines a per-request budget with
        the shared batch budget this way: the effective deadline of a query
        is whichever clock runs out first, and ``None`` (no constraint at
        all) only wins when every argument is ``None``.
        """
        live = [deadline for deadline in deadlines if deadline is not None]
        if not live:
            return None
        return min(live, key=lambda deadline: deadline.remaining())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def seconds(self) -> float:
        """The total budget this deadline was created with."""
        return self._seconds

    def elapsed(self) -> float:
        """Seconds since the deadline was anchored."""
        return time.monotonic() - self._started

    def remaining(self) -> float:
        """Seconds left before expiry (clamped at 0.0)."""
        return max(self._seconds - self.elapsed(), 0.0)

    def expired(self) -> bool:
        """Whether the budget is used up.  The hot-loop check."""
        return time.monotonic() - self._started >= self._seconds

    # ------------------------------------------------------------------
    # Pickling (process-pool workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Monotonic clocks are per-process; ship the remaining budget and
        # re-anchor on arrival.  Queue wait in the pool eats into wall time
        # but not into the shipped budget, so a worker can overshoot by its
        # queue latency — acceptable for a cooperative mechanism.
        return {"seconds": self.remaining()}

    def __setstate__(self, state: dict) -> None:
        self._seconds = state["seconds"]
        self._started = time.monotonic()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Deadline(seconds={self._seconds}, remaining={self.remaining():.3f})"


def mark_interrupted(metadata: dict, deadline: Deadline, phase: str) -> dict:
    """Record the standard deadline-expiry keys on a result's metadata.

    Every algorithm that stops early sets the same three keys so callers can
    test one contract: ``interrupted`` (always ``True`` here), ``phase`` (the
    stage that was cut short) and ``deadline_s`` (the original budget).
    """
    metadata["interrupted"] = True
    metadata["phase"] = phase
    metadata["deadline_s"] = deadline.seconds
    return metadata
