"""Wall-clock timing helpers (compatibility shim).

The timing primitives moved into the span layer — :mod:`repro.obs.trace` —
when the observability subsystem unified shard-worker time accounting:
:class:`~repro.obs.trace.Stopwatch` and a worker's span bundle now use the
same ship-it-back pattern, so there is one code path for both.  This module
re-exports them so existing imports (and pickles) keep working.
"""

from __future__ import annotations

from repro.obs.trace import Stopwatch, timed

__all__ = ["Stopwatch", "timed"]
