"""Wall-clock timing helpers used by the experiment harness.

The paper reports elapsed milliseconds for Greedy A, Greedy B and the limited
local search; these helpers provide the equivalent measurements for our
implementations.

Pool-worker safety
------------------
The sharded core-set solver (:mod:`repro.core.sharding`) fans work out to
thread and process pools.  :class:`Stopwatch` supports both patterns:

* **Threads** — :meth:`measure` accumulates under a lock, so one stopwatch
  shared by many worker threads records the true total.
* **Processes** — a stopwatch pickled into a worker is an *independent copy*
  (no state is shared across process boundaries, so nothing can silently
  diverge); workers time locally with :func:`timed` or their own stopwatch
  and the parent folds the reported durations back in with :meth:`add` /
  :meth:`merge`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch with millisecond reporting.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure():
    ...     _ = sum(range(1000))
    >>> watch.elapsed_ms >= 0.0
    True
    """

    elapsed_seconds: float = field(default=0.0)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager adding the block's duration to the total.

        Thread-safe: concurrent ``measure`` blocks from pool workers all land
        in the total without losing updates to the read-modify-write race.
        """
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(time.perf_counter() - start)

    def add(self, seconds: float) -> None:
        """Fold an externally measured duration into the total.

        This is the process-pool pattern: workers report their own elapsed
        seconds (mutating a pickled stopwatch copy would be lost with the
        worker) and the parent accumulates them here.
        """
        with self._lock:
            self.elapsed_seconds += seconds

    def merge(self, other: "Stopwatch") -> None:
        """Fold another stopwatch's total into this one."""
        self.add(other.elapsed_seconds)

    @property
    def elapsed_ms(self) -> float:
        """Total elapsed time in milliseconds."""
        return self.elapsed_seconds * 1000.0

    def reset(self) -> None:
        """Zero the accumulated time."""
        with self._lock:
            self.elapsed_seconds = 0.0

    # Locks cannot cross process boundaries; drop the lock when pickling into
    # a pool worker and recreate a fresh one on arrival.  The copy is fully
    # independent of the parent stopwatch by construction.
    def __getstate__(self) -> dict:
        return {"elapsed_seconds": self.elapsed_seconds}

    def __setstate__(self, state: dict) -> None:
        self.elapsed_seconds = state["elapsed_seconds"]
        self._lock = threading.Lock()


def timed(func: Callable[[], T]) -> Tuple[T, float]:
    """Run ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
