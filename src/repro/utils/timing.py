"""Wall-clock timing helpers used by the experiment harness.

The paper reports elapsed milliseconds for Greedy A, Greedy B and the limited
local search; these helpers provide the equivalent measurements for our
implementations.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Tuple, TypeVar

T = TypeVar("T")


@dataclass
class Stopwatch:
    """Accumulating stopwatch with millisecond reporting.

    Example
    -------
    >>> watch = Stopwatch()
    >>> with watch.measure():
    ...     _ = sum(range(1000))
    >>> watch.elapsed_ms >= 0.0
    True
    """

    elapsed_seconds: float = field(default=0.0)

    @contextmanager
    def measure(self) -> Iterator[None]:
        """Context manager adding the block's duration to the total."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.elapsed_seconds += time.perf_counter() - start

    @property
    def elapsed_ms(self) -> float:
        """Total elapsed time in milliseconds."""
        return self.elapsed_seconds * 1000.0

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed_seconds = 0.0


def timed(func: Callable[[], T]) -> Tuple[T, float]:
    """Run ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start
