"""Small shared utilities: deterministic RNG handling, timing, validation."""

from repro.utils.deadline import Deadline, mark_interrupted
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.timing import Stopwatch, timed
from repro.utils.validation import (
    check_cardinality,
    check_elements,
    check_finite_array,
    check_non_negative,
    check_probability,
    check_tradeoff,
)

__all__ = [
    "Deadline",
    "mark_interrupted",
    "make_rng",
    "spawn_rngs",
    "Stopwatch",
    "timed",
    "check_cardinality",
    "check_elements",
    "check_finite_array",
    "check_non_negative",
    "check_probability",
    "check_tradeoff",
]
