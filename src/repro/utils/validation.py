"""Parameter validation helpers shared by algorithms and data generators."""

from __future__ import annotations

from typing import Iterable, Set

import numpy as np

from repro.exceptions import InvalidParameterError, NonFiniteDataError


def check_finite_array(name: str, array: np.ndarray) -> np.ndarray:
    """Raise :class:`NonFiniteDataError` if ``array`` holds NaN or ±inf.

    The single finiteness gate shared by the metric and quality constructors
    (and :class:`~repro.core.objective.Objective`): one vectorized
    ``np.isfinite`` pass, with the first offending flat index reported so a
    poisoned corpus row can be found.
    """
    finite = np.isfinite(array)
    if not finite.all():
        bad = int(np.flatnonzero(~finite.ravel())[0])
        raise NonFiniteDataError(
            f"{name} must be finite; found {array.ravel()[bad]!r} at flat "
            f"index {bad}"
        )
    return array


def check_non_negative(name: str, value: float) -> float:
    """Raise :class:`InvalidParameterError` unless ``value >= 0``."""
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value}")
    return value


def check_positive(name: str, value: float) -> float:
    """Raise :class:`InvalidParameterError` unless ``value > 0``."""
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Raise :class:`InvalidParameterError` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_tradeoff(name: str, value: float) -> float:
    """Validate a trade-off parameter λ (must be non-negative and finite)."""
    if not value >= 0.0 or value != value or value in (float("inf"),):
        raise InvalidParameterError(
            f"{name} must be a finite non-negative number, got {value}"
        )
    return value


def check_cardinality(p: int, n: int) -> int:
    """Validate a cardinality constraint ``p`` against a universe of size ``n``."""
    if not isinstance(p, (int,)) or isinstance(p, bool):
        raise InvalidParameterError(f"cardinality p must be an integer, got {p!r}")
    if p < 0:
        raise InvalidParameterError(f"cardinality p must be non-negative, got {p}")
    if p > n:
        raise InvalidParameterError(
            f"cardinality p={p} exceeds the universe size n={n}"
        )
    return p


def check_candidate_pool(elements: Iterable[int], n: int) -> np.ndarray:
    """Canonicalize a candidate pool against a universe of size ``n``.

    Deduplicates in first-seen order and bounds-checks in one vectorized
    pass.  Returns the canonical index array — the single dedupe/validation
    rule every ``restrict`` implementation (metrics, functions, matroids,
    :class:`~repro.core.restriction.Restriction`) shares.
    """
    idx = np.fromiter(dict.fromkeys(elements), dtype=int)
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        bad = int(idx.min()) if idx.min() < 0 else int(idx.max())
        raise InvalidParameterError(f"candidate {bad} outside the universe")
    return idx


def check_elements(subset: Iterable[int], n: int) -> Set[int]:
    """Normalize a subset to a ``set`` and verify every index is in range."""
    normalized = set(subset)
    for element in normalized:
        if not isinstance(element, (int,)) or isinstance(element, bool):
            raise InvalidParameterError(
                f"elements must be integer indices, got {element!r}"
            )
        if element < 0 or element >= n:
            raise InvalidParameterError(
                f"element {element} is outside the universe [0, {n})"
            )
    return normalized
