"""Deterministic random number generation helpers.

All randomness in the library flows through :class:`numpy.random.Generator`
objects obtained from :func:`make_rng`, so experiments and property tests are
reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed.

    Passing an existing generator returns it unchanged, which lets functions
    accept either a seed or a generator without caring which they received.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> Sequence[np.random.Generator]:
    """Return ``count`` statistically independent generators.

    Used by experiment harnesses that run several trials: each trial gets its
    own stream so trial ``i`` produces identical data regardless of how many
    trials run in total.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1))
    elif isinstance(seed, np.random.SeedSequence):
        seed_seq = seed
    else:
        seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def derive_seed(seed: SeedLike, stream: int) -> Optional[int]:
    """Derive a deterministic integer seed for a named sub-stream."""
    if seed is None:
        return None
    rng = make_rng(seed)
    for _ in range(stream + 1):
        value = int(rng.integers(0, 2**31 - 1))
    return value
