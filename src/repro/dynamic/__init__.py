"""Dynamic updates for max-sum diversification with modular quality (Section 6).

The setting: a solution of known quality is maintained while element weights
and pairwise distances change over time.  After each perturbation the
*oblivious single-swap update rule* performs at most a few swaps and the
paper proves (Theorems 3–6 / Corollary 4) that an approximation ratio of 3 is
maintained with a single update for weight increases, distance increases and
distance decreases, and for weight decreases bounded by ``w/(p-2)``; larger
weight decreases need ``⌈log_{(p-2)/(p-3)} w/(w-δ)⌉`` updates.

Package contents:

* :mod:`~repro.dynamic.perturbation` — the four perturbation types.
* :mod:`~repro.dynamic.update_rules` — the oblivious single-swap rule and the
  multi-update schedule.
* :mod:`~repro.dynamic.engine` — :class:`DynamicDiversifier`, which owns the
  mutable instance and applies perturbations + updates.
* :mod:`~repro.dynamic.events` — :class:`EventBatch` /
  :class:`EventBatchBuilder`, the typed-array form of one tick of a batched
  event stream (weight/distance changes, inserts, deletes).
* :mod:`~repro.dynamic.session` — :class:`DynamicSession`, the facade over
  the dense engine and the sharded tier (:class:`ShardedDynamicEngine`) with
  periodic checkpoints and full re-solves.
* :mod:`~repro.dynamic.simulation` — the V/E/M perturbation environments and
  worst-ratio tracking of Section 7.3 (Figure 1).
"""

from repro.dynamic.engine import DynamicDiversifier, EngineSnapshot
from repro.dynamic.events import EventBatch, EventBatchBuilder
from repro.dynamic.session import (
    DynamicSession,
    SessionSnapshot,
    ShardedDynamicEngine,
)
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    Perturbation,
    PerturbationType,
    WeightDecrease,
    WeightIncrease,
)
from repro.dynamic.simulation import (
    Environment,
    SimulationRecord,
    run_dynamic_simulation,
    worst_ratio_curve,
)
from repro.dynamic.update_rules import (
    UpdateOutcome,
    best_k_swap,
    k_swap_update,
    oblivious_update,
    required_updates_for_weight_decrease,
    update_until_stable,
)

__all__ = [
    "Perturbation",
    "PerturbationType",
    "WeightIncrease",
    "WeightDecrease",
    "DistanceIncrease",
    "DistanceDecrease",
    "DynamicDiversifier",
    "EngineSnapshot",
    "EventBatch",
    "EventBatchBuilder",
    "DynamicSession",
    "SessionSnapshot",
    "ShardedDynamicEngine",
    "oblivious_update",
    "update_until_stable",
    "required_updates_for_weight_decrease",
    "best_k_swap",
    "k_swap_update",
    "UpdateOutcome",
    "Environment",
    "SimulationRecord",
    "run_dynamic_simulation",
    "worst_ratio_curve",
]
