"""Dynamic-update simulation environments (Section 7.3, Figure 1).

The paper starts from the greedy 2-approximation on the synthetic data of
Section 7.1, then runs 20 perturbation steps in three environments —

* ``VPERTURBATION``: reset a random element's weight uniformly in [0, 1],
* ``EPERTURBATION``: reset a random pair's distance uniformly in [1, 2],
* ``MPERTURBATION``: one of the above with equal probability,

each step followed by a single application of the oblivious update rule.
The experiment repeats 100 times per λ and records the worst approximation
ratio observed; Figure 1 plots that worst ratio against λ.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dynamic.events import EventBatch
from repro.dynamic.session import DynamicSession
from repro.dynamic.perturbation import (
    DistanceDecrease,
    DistanceIncrease,
    Perturbation,
    WeightDecrease,
    WeightIncrease,
)
from repro.exceptions import InvalidParameterError
from repro.utils.rng import SeedLike, make_rng, spawn_rngs


class Environment(str, Enum):
    """The three dynamically changing environments of Section 7.3."""

    VPERTURBATION = "VPERTURBATION"
    EPERTURBATION = "EPERTURBATION"
    MPERTURBATION = "MPERTURBATION"


@dataclass(frozen=True)
class SimulationRecord:
    """Outcome of one simulated run (a sequence of perturbation + update steps).

    Attributes
    ----------
    environment:
        Which perturbation environment generated the run.
    tradeoff:
        The λ used.
    ratios:
        Approximation ratio after each step (``OPT / φ(S)``).
    worst_ratio:
        The maximum of ``ratios`` (what Figure 1 reports).
    """

    environment: Environment
    tradeoff: float
    ratios: Tuple[float, ...]
    worst_ratio: float


def _random_weight_perturbation(
    engine: DynamicSession, rng: np.random.Generator
) -> Optional[Perturbation]:
    """Reset a random element's weight to a fresh U[0, 1] draw (Type I or II)."""
    element = int(rng.integers(0, engine.n))
    new_weight = float(rng.uniform(0.0, 1.0))
    current = engine.weight(element)
    delta = new_weight - current
    if delta > 1e-12:
        return WeightIncrease(element, delta)
    if delta < -1e-12:
        return WeightDecrease(element, -delta)
    return None


def _random_distance_perturbation(
    engine: DynamicSession,
    rng: np.random.Generator,
    *,
    low: float = 1.0,
    high: float = 2.0,
) -> Optional[Perturbation]:
    """Reset a random pair's distance to a fresh U[low, high] draw (Type III or IV)."""
    u, v = map(int, rng.choice(engine.n, size=2, replace=False))
    new_distance = float(rng.uniform(low, high))
    current = engine.distance(u, v)
    delta = new_distance - current
    if delta > 1e-12:
        return DistanceIncrease(u, v, delta)
    if delta < -1e-12:
        return DistanceDecrease(u, v, -delta)
    return None


def _draw_perturbation(
    environment: Environment,
    engine: DynamicSession,
    rng: np.random.Generator,
    *,
    distance_low: float,
    distance_high: float,
) -> Optional[Perturbation]:
    if environment is Environment.VPERTURBATION:
        return _random_weight_perturbation(engine, rng)
    if environment is Environment.EPERTURBATION:
        return _random_distance_perturbation(
            engine, rng, low=distance_low, high=distance_high
        )
    if environment is Environment.MPERTURBATION:
        if rng.uniform() < 0.5:
            return _random_weight_perturbation(engine, rng)
        return _random_distance_perturbation(
            engine, rng, low=distance_low, high=distance_high
        )
    raise InvalidParameterError(f"unknown environment {environment!r}")


def run_dynamic_simulation(
    weights: np.ndarray,
    distances: np.ndarray,
    p: int,
    tradeoff: float,
    environment: Environment,
    *,
    steps: int = 20,
    seed: SeedLike = None,
    track_ratio: bool = True,
    distance_low: float = 1.0,
    distance_high: float = 2.0,
    batched: bool = False,
    checkpoint_every: Optional[int] = None,
    on_checkpoint: Optional[Callable[[object], None]] = None,
) -> SimulationRecord:
    """Run one perturbation/update trajectory and track approximation ratios.

    The trajectory drives a dense :class:`~repro.dynamic.session.DynamicSession`
    — the same facade the batched experiments and the fault harness use — so
    the simulated update rule is exactly the engine everything else runs.
    ``track_ratio=True`` computes the exact optimum after every step, which is
    exponential in ``p`` — keep ``n`` and ``p`` small (the paper uses the
    synthetic N=50-style instances).  ``checkpoint_every``/``on_checkpoint``
    forward to the session: pickle-safe engine snapshots every so many steps.
    ``batched=True`` routes each perturbation through the
    :class:`~repro.dynamic.events.EventBatch` tick path instead of
    :meth:`~repro.dynamic.session.DynamicSession.apply` — the results are
    identical (the property tests assert it); the flag exists to exercise
    the batched path under the experiment's workload.
    """
    if steps < 0:
        raise InvalidParameterError("steps must be non-negative")
    rng = make_rng(seed)
    engine = DynamicSession(
        np.asarray(weights, dtype=float),
        p,
        distances=np.asarray(distances, dtype=float),
        tradeoff=tradeoff,
        checkpoint_every=checkpoint_every,
        on_checkpoint=on_checkpoint,
    )
    ratios: List[float] = []
    for _ in range(steps):
        perturbation = _draw_perturbation(
            environment,
            engine,
            rng,
            distance_low=distance_low,
            distance_high=distance_high,
        )
        if perturbation is None:
            # The re-drawn value coincided with the current one; no change.
            if track_ratio:
                ratios.append(engine.approximation_ratio())
            continue
        if batched:
            engine.apply_events(
                EventBatch.from_perturbations([perturbation]), updates=1
            )
        else:
            engine.apply(perturbation, updates=1)
        if track_ratio:
            ratios.append(engine.approximation_ratio())
    worst = max(ratios) if ratios else 1.0
    return SimulationRecord(
        environment=environment,
        tradeoff=tradeoff,
        ratios=tuple(ratios),
        worst_ratio=worst,
    )


def worst_ratio_curve(
    weights: np.ndarray,
    distances: np.ndarray,
    p: int,
    tradeoffs: Sequence[float],
    environment: Environment,
    *,
    steps: int = 20,
    repeats: int = 100,
    seed: SeedLike = None,
    batched: bool = False,
) -> Dict[float, float]:
    """Reproduce one curve of Figure 1: worst ratio over repeats, per λ.

    Returns a mapping λ → worst approximation ratio observed across all
    ``repeats`` independent runs of ``steps`` perturbations each.
    """
    if repeats < 1:
        raise InvalidParameterError("repeats must be at least 1")
    curve: Dict[float, float] = {}
    for tradeoff in tradeoffs:
        rngs = spawn_rngs(seed, repeats)
        worst = 1.0
        for run_rng in rngs:
            record = run_dynamic_simulation(
                weights,
                distances,
                p,
                tradeoff,
                environment,
                steps=steps,
                seed=run_rng,
                batched=batched,
            )
            worst = max(worst, record.worst_ratio)
        curve[float(tradeoff)] = worst
    return curve
