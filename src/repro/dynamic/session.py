"""One façade for dynamic maintenance: dense engine, sharded tier, checkpoints.

:class:`DynamicSession` is the single entry point the simulation, the
experiments and the fault harness drive.  It hosts one of two backends behind
the same :meth:`~DynamicSession.apply_events` interface:

* **dense** (``distances=...``) — the Section 6
  :class:`~repro.dynamic.engine.DynamicDiversifier` over an explicit
  (growable) distance matrix, with the no-swap certificate and Theorem 4
  scheduling.  Exact update-rule semantics, O(n²) memory.
* **sharded** (``points=...``) — :class:`ShardedDynamicEngine`, for universes
  far beyond the dense matrix cap.  Elements live in feature space; the
  metric is the lazy tier (:class:`~repro.metrics.euclidean.EuclideanMetric`
  by default) with explicit distance events layered on top as a sparse
  :class:`~repro.metrics.overlay.PatchedMetric`.  Events dirty only the
  shards of the elements they touch; dirty shards re-run their local greedy
  on the lazy slice (through the same
  :func:`~repro.core.sharding.sub_metric` restriction the sharded solver
  uses), and the small core-set solve re-runs only when shard winners or
  solution-relevant state actually changed.

The session also owns the operational conveniences that previously lived in
ad-hoc driver scripts: periodic snapshots (every ``checkpoint_every`` ticks,
handed to ``on_checkpoint``) and, for the sharded tier, a periodic full
re-solve (``resolve_every``) whose result is adopted when it beats the
incrementally maintained solution — the drift guard the benchmarks assert
parity against.

Failure containment mirrors :func:`~repro.core.sharding.solve_sharded`: a
shard whose local solve raises keeps its previous winners (stale but
feasible), the failure is recorded, and the session reports itself degraded
until a later tick repairs the shard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro._types import Element
from repro.core.checkpoint import (
    SNAPSHOT_FORMAT_VERSION,
    check_snapshot_version,
    universe_fingerprint,
)
from repro.core.greedy import greedy_diversify
from repro.core.objective import Objective
from repro.core.sharding import solve_sharded, sub_metric
from repro.dynamic.engine import (
    DEFAULT_HISTORY_LIMIT,
    DynamicDiversifier,
    EngineSnapshot,
)
from repro.dynamic.events import EventBatch
from repro.dynamic.perturbation import Perturbation
from repro.dynamic.update_rules import UpdateOutcome
from repro.exceptions import InvalidParameterError, PerturbationError
from repro.functions.modular import ModularFunction
from repro.metrics.base import Metric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.overlay import PatchedMetric
from repro.obs.instrument import (
    TICK_SECONDS,
    TICKS,
    maybe_span,
    maybe_start_span,
    phase_timings,
)
from repro.obs.trace import Trace

__all__ = ["DynamicSession", "SessionSnapshot", "ShardedDynamicEngine"]

#: Default elements per shard for the sharded backend.
DEFAULT_SHARD_SIZE = 2048


def _annotate_tick(tick_span, outcome: UpdateOutcome) -> None:
    """Copy a tick outcome's headline metadata onto its (open) span."""
    if tick_span.id is None:
        return
    meta = outcome.metadata
    if "certified_stable" in meta:
        tick_span.set(certificate="hit" if meta["certified_stable"] else "miss")
    if "dirty_shards" in meta:
        tick_span.set(
            dirty_shards=len(meta["dirty_shards"]),
            core_resolved=bool(meta.get("core_resolved", False)),
        )
    if meta.get("degraded"):
        tick_span.set(degraded=True)


@dataclass(frozen=True)
class SessionSnapshot:
    """Pickle-safe snapshot of a sharded :class:`DynamicSession`.

    Plain arrays and tuples only (the metric factory is *not* captured —
    restore takes it again), so snapshots can be written to disk or shipped
    across processes like the dense tier's
    :class:`~repro.dynamic.engine.EngineSnapshot`.

    ``winners``/``degraded``/``core_stale`` capture the repair state, which
    makes :meth:`ShardedDynamicEngine.restore` *faithful*: the restored
    engine carries exactly the shard winners (stale or not) the live engine
    carried, so replaying the same event stream from the snapshot yields
    bit-identical solutions — the contract durable crash recovery depends
    on.  ``winners=None`` marks a pre-durability snapshot, for which restore
    falls back to re-solving every shard.
    """

    points: np.ndarray
    weights: np.ndarray
    active: Tuple[Element, ...]
    solution: Tuple[Element, ...]
    p: int
    tradeoff: float
    shard_size: int
    per_shard_p: int
    overrides: Tuple[Tuple[int, int, float], ...] = ()
    ticks: int = 0
    winners: Optional[Tuple[Tuple[int, Tuple[Element, ...]], ...]] = None
    degraded: bool = False
    core_stale: bool = False
    format_version: int = SNAPSHOT_FORMAT_VERSION
    fingerprint: Optional[str] = None

    def save(self, path: str) -> None:
        """Pickle the snapshot to ``path``."""
        from repro.core.checkpoint import save_checkpoint

        save_checkpoint(self, path)

    @staticmethod
    def load(path: str) -> "SessionSnapshot":
        """Load a snapshot previously written by :meth:`save`."""
        from repro.core.checkpoint import load_checkpoint

        return load_checkpoint(path, SessionSnapshot)


class ShardedDynamicEngine:
    """Maintain a diversification solution over a huge, point-backed universe.

    The universe never materializes an ``n × n`` matrix: elements are rows of
    a growable point matrix, distances come from the lazy metric tier, and
    explicit distance events live in a sparse override overlay
    (:class:`~repro.metrics.overlay.PatchedMetric`).  The element ids are
    *slots*: contiguous ranges of ``shard_size`` slots form shards, deleted
    slots are retired into a free list and revived by later inserts, so an
    event stream only ever dirties the shards it touches.

    Repair per tick:

    1. re-solve every dirty shard's local greedy (over its live slots, on
       the lazily restricted metric) for ``per_shard_p`` winners;
    2. when winners changed, a member was touched/deleted, or a previous
       failure left the core stale, re-run the core-set greedy over the
       union of all winners and the current solution.

    A failing shard solve keeps that shard's previous winners and marks the
    engine degraded — the same containment contract as
    :func:`~repro.core.sharding.solve_sharded`.
    """

    #: Optional :class:`~repro.obs.trace.Trace` receiving repair spans.  A
    #: class attribute so ``__new__``-based restore paths inherit ``None``.
    trace = None

    def __init__(
        self,
        points: np.ndarray,
        weights: Iterable[float] | np.ndarray,
        p: int,
        *,
        tradeoff: float = 1.0,
        shard_size: int = DEFAULT_SHARD_SIZE,
        per_shard_p: Optional[int] = None,
        metric_factory: Optional[Callable[[np.ndarray], Metric]] = None,
    ) -> None:
        pts = np.asarray(points, dtype=float)
        if pts.ndim == 1:
            pts = pts[:, None]
        if pts.ndim != 2:
            raise InvalidParameterError("points must be a 1-D or 2-D array")
        validated = ModularFunction(np.asarray(weights, dtype=float))
        if validated.n != pts.shape[0]:
            raise InvalidParameterError("weights and points cover different universes")
        if p < 1 or p > validated.n:
            raise InvalidParameterError(
                f"p must lie in [1, n]; got p={p} for n={validated.n}"
            )
        if shard_size < 1:
            raise InvalidParameterError("shard_size must be at least 1")
        if per_shard_p is not None and per_shard_p < 1:
            raise InvalidParameterError("per_shard_p must be at least 1")
        self._slots = pts.shape[0]
        capacity = max(self._slots, 4)
        self._points = np.zeros((capacity, pts.shape[1]))
        self._points[: self._slots] = pts
        self._weights = np.zeros(capacity)
        self._weights[: self._slots] = validated.weights_view()
        self._active = np.zeros(capacity, dtype=bool)
        self._active[: self._slots] = True
        self._free: List[int] = []
        self._p = int(p)
        self._tradeoff = float(tradeoff)
        self._shard_size = int(shard_size)
        self._per_shard_p = int(per_shard_p) if per_shard_p is not None else int(p)
        self._metric_factory = metric_factory or EuclideanMetric
        self._overrides: Dict[Tuple[int, int], float] = {}
        self._base_metric: Optional[Metric] = None
        self._winners: Dict[int, np.ndarray] = {}
        self._solution: Set[int] = set()
        self._failures: List[dict] = []
        self._degraded = False
        self._core_stale = True
        self._ticks = 0
        # Initial solve: every shard is dirty, then one core solve.
        self._repair(set(range(self.num_shards)), touched_members=False)

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Slot count (live plus retired)."""
        return self._slots

    @property
    def p(self) -> int:
        return self._p

    @property
    def tradeoff(self) -> float:
        return self._tradeoff

    @property
    def active_count(self) -> int:
        return int(self._active[: self._slots].sum())

    def active_elements(self) -> np.ndarray:
        return np.flatnonzero(self._active[: self._slots])

    @property
    def num_shards(self) -> int:
        return max(1, -(-self._slots // self._shard_size))

    @property
    def shard_size(self) -> int:
        return self._shard_size

    @property
    def per_shard_p(self) -> int:
        return self._per_shard_p

    @property
    def solution(self) -> FrozenSet[Element]:
        return frozenset(self._solution)

    @property
    def degraded(self) -> bool:
        """Whether any shard is currently carrying stale winners."""
        return self._degraded

    @property
    def failures(self) -> Tuple[dict, ...]:
        """Structured records of shard/core solve failures, oldest first."""
        return tuple(self._failures)

    @property
    def num_overrides(self) -> int:
        return len(self._overrides)

    def weight(self, element: Element) -> float:
        return float(self._weights[element])

    def distance(self, u: Element, v: Element) -> float:
        return self.metric().distance(int(u), int(v))

    def metric(self) -> Metric:
        """The current metric: lazy base plus the sparse override overlay."""
        if self._base_metric is None:
            self._base_metric = self._metric_factory(self._points[: self._slots])
        if self._overrides:
            return PatchedMetric(self._base_metric, self._overrides)
        return self._base_metric

    @property
    def solution_value(self) -> float:
        return self.objective_value(self._solution)

    def objective_value(self, solution: Iterable[Element]) -> float:
        """``φ(S) = Σ w + λ · Σ_{u<v} d(u, v)`` under the current instance."""
        members = sorted(int(e) for e in set(solution))
        value = float(self._weights[members].sum()) if members else 0.0
        if len(members) > 1:
            metric = self.metric()
            block = metric.block(np.asarray(members), np.asarray(members))
            value += self._tradeoff * float(np.triu(block, 1).sum())
        return value

    # ------------------------------------------------------------------
    # Shard bookkeeping
    # ------------------------------------------------------------------
    def _shard_of(self, element: int) -> int:
        return element // self._shard_size

    def _shard_live(self, shard: int) -> np.ndarray:
        start = shard * self._shard_size
        stop = min(start + self._shard_size, self._slots)
        return start + np.flatnonzero(self._active[start:stop])

    def _ensure_capacity(self, slots: int) -> None:
        capacity = self._points.shape[0]
        if slots <= capacity:
            return
        new_capacity = max(capacity * 2, slots, 4)
        points = np.zeros((new_capacity, self._points.shape[1]))
        points[:capacity] = self._points
        self._points = points
        weights = np.zeros(new_capacity)
        weights[:capacity] = self._weights
        self._weights = weights
        active = np.zeros(new_capacity, dtype=bool)
        active[:capacity] = self._active
        self._active = active

    def _check_live(self, elements: np.ndarray, what: str) -> None:
        idx = np.asarray(elements, dtype=int)
        if idx.size == 0:
            return
        if np.any((idx < 0) | (idx >= self._slots)) or not np.all(
            self._active[: self._slots][idx]
        ):
            raise PerturbationError(f"{what} refers to an unknown or retired element")

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply_events(self, batch: EventBatch) -> UpdateOutcome:
        """Apply one tick of events, repair dirty shards, return the outcome."""
        self._validate_batch(batch)
        dirty: Set[int] = set()
        touched_members = False

        # Weights (sets, then accumulated deltas; validated, then clamped).
        w_idx = np.concatenate(
            [batch.weight_set_elements, batch.weight_delta_elements]
        )
        if w_idx.size:
            before = self._weights[w_idx].copy()
            self._weights[batch.weight_set_elements] = batch.weight_set_values
            np.add.at(self._weights, batch.weight_delta_elements, batch.weight_deltas)
            touched = np.unique(w_idx)
            finals = self._weights[touched]
            if np.any(finals < -1e-12) or not np.all(np.isfinite(finals)):
                self._weights[w_idx] = before
                raise PerturbationError(
                    "a weight decrease exceeds the current weight of its element"
                )
            self._weights[touched] = np.maximum(finals, 0.0)
            for element in touched.tolist():
                dirty.add(self._shard_of(element))
                if element in self._solution:
                    touched_members = True

        # Distances become sparse overrides on top of the point metric.
        pair_events: Dict[Tuple[int, int], float] = {}
        for (u, v), value in zip(
            batch.distance_set_pairs.tolist(), batch.distance_set_values.tolist()
        ):
            pair_events[(int(u), int(v))] = float(value)  # last set wins
        for (u, v), delta in zip(
            batch.distance_delta_pairs.tolist(), batch.distance_deltas.tolist()
        ):
            key = (int(u), int(v))
            current = (
                pair_events[key]
                if key in pair_events
                else self._overrides.get(key, None)
            )
            if current is None:
                current = self.metric().distance(*key)
            pair_events[key] = current + float(delta)
        if pair_events:
            for key, value in pair_events.items():
                if value < -1e-12:
                    raise PerturbationError(
                        "a distance decrease would make the distance negative"
                    )
            for (u, v), value in pair_events.items():
                self._overrides[(u, v)] = max(float(value), 0.0)
                dirty.add(self._shard_of(u))
                dirty.add(self._shard_of(v))
                if u in self._solution or v in self._solution:
                    touched_members = True

        # Inserts: new rows in point space, reviving retired slots first.
        inserted: List[int] = []
        for i in range(batch.num_inserts):
            point = batch.insert_points[i]
            if self._free:
                slot = self._free.pop(0)
            else:
                self._ensure_capacity(self._slots + 1)
                slot = self._slots
                self._slots += 1
            self._points[slot] = point
            self._weights[slot] = batch.insert_weights[i]
            self._active[slot] = True
            self._base_metric = None  # point matrix changed
            inserted.append(slot)
            dirty.add(self._shard_of(slot))

        # Deletes: retire slots, drop their overrides, shrink the solution.
        deleted_members: List[int] = []
        if batch.delete_elements.size:
            for element in batch.delete_elements.tolist():
                self._active[element] = False
                self._weights[element] = 0.0
                dirty.add(self._shard_of(element))
                if element in self._solution:
                    self._solution.discard(element)
                    deleted_members.append(element)
                    touched_members = True
            gone = set(batch.delete_elements.tolist())
            self._free = sorted(set(self._free) | gone)
            self._overrides = {
                key: value
                for key, value in self._overrides.items()
                if key[0] not in gone and key[1] not in gone
            }
            self._winners = {
                shard: winners[~np.isin(winners, list(gone))]
                for shard, winners in self._winners.items()
            }

        with maybe_span(self.trace, "repair", dirty=len(dirty)) as repair_span:
            core_resolved = self._repair(dirty, touched_members=touched_members)
            repair_span.set(core_resolved=core_resolved, degraded=self._degraded)
        self._ticks += 1
        metadata = {
            "dirty_shards": tuple(sorted(dirty)),
            "core_resolved": core_resolved,
            "num_events": batch.num_events,
            "degraded": self._degraded,
        }
        if inserted:
            metadata["inserted"] = tuple(inserted)
        if deleted_members:
            metadata["deleted_members"] = tuple(deleted_members)
        return UpdateOutcome(
            solution=frozenset(self._solution),
            swaps=(),
            objective_value=self.solution_value,
            metadata=metadata,
        )

    def _validate_batch(self, batch: EventBatch) -> None:
        self._check_live(batch.weight_set_elements, "weight event")
        self._check_live(batch.weight_delta_elements, "weight event")
        self._check_live(batch.distance_set_pairs.ravel(), "distance event")
        self._check_live(batch.distance_delta_pairs.ravel(), "distance event")
        if batch.num_inserts:
            if batch.insert_points is None:
                raise PerturbationError(
                    "the sharded engine hosts point inserts; explicit distance "
                    "rows belong to the dense engine"
                )
            if batch.insert_points.shape[1] != self._points.shape[1]:
                raise PerturbationError(
                    f"insert points must have dimension {self._points.shape[1]}, "
                    f"got {batch.insert_points.shape[1]}"
                )
            if not np.all(np.isfinite(batch.insert_points)):
                raise PerturbationError("insert points must be finite")
        deletes = batch.delete_elements
        if deletes.size:
            if np.unique(deletes).size != deletes.size:
                raise PerturbationError("duplicate delete of the same element")
            self._check_live(deletes, "delete event")
            remaining = self.active_count + batch.num_inserts - deletes.size
            if remaining < self._p:
                raise PerturbationError(
                    f"deletions would leave {remaining} live elements, "
                    f"fewer than p={self._p}"
                )

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _solve_shard(self, shard: int) -> np.ndarray:
        ids = self._shard_live(shard)
        if ids.size <= self._per_shard_p:
            return ids
        metric = sub_metric(self.metric(), ids, materialize=False)
        objective = Objective(
            ModularFunction(self._weights[ids]), metric, self._tradeoff
        )
        result = greedy_diversify(objective, self._per_shard_p)
        return ids[np.fromiter(sorted(result.selected), dtype=int)]

    def _solve_core(self) -> None:
        parts = [w for w in self._winners.values() if w.size]
        live_solution = [e for e in self._solution if self._active[e]]
        if live_solution:
            parts.append(np.asarray(live_solution, dtype=int))
        if not parts:
            self._solution = set()
            return
        core = np.unique(np.concatenate(parts))
        metric = sub_metric(self.metric(), core, materialize=False)
        objective = Objective(
            ModularFunction(self._weights[core]), metric, self._tradeoff
        )
        result = greedy_diversify(objective, min(self._p, int(core.size)))
        self._solution = {int(core[i]) for i in result.selected}

    def _repair(self, dirty: Set[int], *, touched_members: bool) -> bool:
        """Re-solve dirty shards, then the core when anything relevant moved."""
        winners_changed = False
        failed_shards: List[int] = []
        for shard in sorted(dirty):
            if shard >= self.num_shards:
                continue
            previous = self._winners.get(shard)
            try:
                with maybe_span(self.trace, "repair.shard", shard=shard):
                    winners = self._solve_shard(shard)
            except Exception as error:  # containment: keep stale winners
                failed_shards.append(shard)
                self._failures.append(
                    {"tick": self._ticks, "shard": shard, "error": repr(error)}
                )
                continue
            if previous is None or not np.array_equal(previous, winners):
                winners_changed = True
            self._winners[shard] = winners
        if failed_shards:
            self._degraded = True
            self._core_stale = True
        elif dirty:
            # Every dirty shard solved cleanly; if nothing else is stale the
            # engine has healed.
            self._degraded = False

        needs_core = (
            winners_changed
            or touched_members
            or self._core_stale
            or len(self._solution) < self._p
        )
        if not needs_core:
            return False
        try:
            with maybe_span(self.trace, "repair.core"):
                self._solve_core()
            self._core_stale = False
        except Exception as error:
            self._failures.append(
                {"tick": self._ticks, "shard": None, "error": repr(error)}
            )
            self._degraded = True
            self._core_stale = True
            # Keep the previous (live-filtered) solution; retry next tick.
            self._solution = {e for e in self._solution if self._active[e]}
        return True

    # ------------------------------------------------------------------
    # Full re-solve (drift guard)
    # ------------------------------------------------------------------
    def resolve_full(self, *, adopt: bool = True, **solve_kwargs):
        """Run a full sharded core-set solve of the current instance.

        This is the periodic "re-solve from scratch" the incremental path is
        measured against: every shard re-solves (optionally on a worker pool
        — ``executor``/``max_workers``/``shard_timeout_s``/... forward to
        :func:`~repro.core.sharding.solve_sharded`).  With ``adopt=True`` the
        result replaces the maintained solution when it scores at least as
        well, re-anchoring any incremental drift.
        """
        quality = ModularFunction(self._weights[: self._slots])
        result = solve_sharded(
            quality,
            self.metric(),
            tradeoff=self._tradeoff,
            p=self._p,
            shard_size=self._shard_size,
            per_shard_p=self._per_shard_p,
            candidates=self.active_elements(),
            **solve_kwargs,
        )
        if adopt and len(result.selected) >= min(
            self._p, self.active_count
        ) and result.objective_value >= self.solution_value - 1e-9:
            self._solution = {int(e) for e in result.selected}
            self._core_stale = False
        return result

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, *, ticks: int = 0) -> SessionSnapshot:
        return SessionSnapshot(
            points=np.array(self._points[: self._slots], copy=True),
            weights=np.array(self._weights[: self._slots], copy=True),
            active=tuple(int(e) for e in self.active_elements()),
            solution=tuple(sorted(self._solution)),
            p=self._p,
            tradeoff=self._tradeoff,
            shard_size=self._shard_size,
            per_shard_p=self._per_shard_p,
            overrides=tuple(
                (u, v, value) for (u, v), value in sorted(self._overrides.items())
            ),
            ticks=ticks,
            winners=tuple(
                (int(shard), tuple(int(e) for e in winners))
                for shard, winners in sorted(self._winners.items())
            ),
            degraded=self._degraded,
            core_stale=self._core_stale,
            fingerprint=universe_fingerprint(
                "sharded",
                self._p,
                self._tradeoff,
                self._points.shape[1],
                self._shard_size,
                self._per_shard_p,
            ),
        )

    @classmethod
    def restore(
        cls,
        snapshot: SessionSnapshot,
        *,
        metric_factory: Optional[Callable[[np.ndarray], Metric]] = None,
    ) -> "ShardedDynamicEngine":
        check_snapshot_version(snapshot, source="SessionSnapshot")
        engine = cls.__new__(cls)
        slots = snapshot.points.shape[0]
        engine._slots = slots
        capacity = max(slots, 4)
        engine._points = np.zeros((capacity, snapshot.points.shape[1]))
        engine._points[:slots] = snapshot.points
        engine._weights = np.zeros(capacity)
        engine._weights[:slots] = snapshot.weights
        engine._active = np.zeros(capacity, dtype=bool)
        engine._active[list(snapshot.active)] = True
        engine._free = sorted(set(range(slots)) - set(snapshot.active))
        engine._p = int(snapshot.p)
        engine._tradeoff = float(snapshot.tradeoff)
        engine._shard_size = int(snapshot.shard_size)
        engine._per_shard_p = int(snapshot.per_shard_p)
        engine._metric_factory = metric_factory or EuclideanMetric
        engine._overrides = {
            (int(u), int(v)): float(value) for u, v, value in snapshot.overrides
        }
        engine._base_metric = None
        engine._solution = set(int(e) for e in snapshot.solution)
        engine._failures = []
        engine._ticks = int(snapshot.ticks)
        if snapshot.winners is not None:
            # Faithful restore: adopt the captured repair state verbatim —
            # including stale winners of degraded shards — so the restored
            # engine is indistinguishable from the one that was snapshotted.
            engine._winners = {
                int(shard): np.asarray(winners, dtype=int)
                for shard, winners in snapshot.winners
            }
            engine._degraded = bool(snapshot.degraded)
            engine._core_stale = bool(snapshot.core_stale)
        else:
            # Pre-durability snapshot: repair state was not captured, so
            # rebuild it with a full shard re-solve (may heal degradation).
            engine._winners = {}
            engine._degraded = False
            engine._core_stale = True
            engine._repair(set(range(engine.num_shards)), touched_members=False)
        return engine


class DynamicSession:
    """The one façade every dynamic driver uses: engine + checkpoints.

    Exactly one of ``distances`` (dense backend) or ``points`` (sharded
    backend) selects the representation; everything downstream —
    :meth:`apply_events`, :meth:`apply`, :meth:`snapshot` — is uniform, so
    the Section 7.3 simulation, the Figure 1 experiment and the fault
    harness all drive the same code path.

    Parameters
    ----------
    weights, p, tradeoff:
        The instance, as for the backends.
    distances:
        Dense mode: an explicit distance matrix (kwargs ``validate_metric``,
        ``history_limit``, ``use_certificate`` forward to
        :class:`~repro.dynamic.engine.DynamicDiversifier`).
    points:
        Sharded mode: an ``(n, d)`` point matrix (kwargs ``shard_size``,
        ``per_shard_p``, ``metric_factory`` forward to
        :class:`ShardedDynamicEngine`).
    checkpoint_every, on_checkpoint:
        Emit a pickle-safe snapshot (:class:`~repro.dynamic.engine.EngineSnapshot`
        dense / :class:`SessionSnapshot` sharded) to ``on_checkpoint`` after
        every ``checkpoint_every`` ticks (default 1 when only the callback is
        given).
    resolve_every, resolve_kwargs:
        Sharded mode only: every ``resolve_every`` ticks run
        :meth:`ShardedDynamicEngine.resolve_full` (forwarding
        ``resolve_kwargs``, e.g. ``{"executor": "process", "max_workers": 2,
        "shard_timeout_s": 5.0}``) and adopt the result when it is at least
        as good — bounding incremental drift even under shard failures.
    durable_dir, fsync, snapshot_every, keep_snapshots:
        Crash durability (:mod:`repro.durability`).  With ``durable_dir``
        every tick is journaled to a checksummed write-ahead log *before*
        it mutates the engine, so a crash at any point replays to the exact
        pre-crash state via :meth:`recover`.  ``fsync`` picks the loss
        window (``"always"`` / ``"interval"`` / ``"off"``);
        ``snapshot_every`` compacts the log every N ticks into an atomic
        snapshot generation (``keep_snapshots`` retained).  The directory
        must be fresh — recovering an existing journal is :meth:`recover`'s
        job, not the constructor's.
    trace:
        Optional :class:`~repro.obs.trace.Trace`.  Every tick records a
        ``tick`` span with ``wal.journal`` / ``apply`` / ``repair`` children
        (plus ``resolve_full`` / ``checkpoint`` / ``wal.compact`` when those
        cadences fire), certificate and dirty-shard attributes, and a
        compact ``outcome.metadata["timings"]`` breakdown.  ``None`` (the
        default) keeps every tick at no-op instrumentation cost.
    """

    #: Class attribute so ``__new__``-based restore paths inherit ``None``.
    _trace = None

    def __init__(
        self,
        weights: Iterable[float] | np.ndarray,
        p: int,
        *,
        distances: Optional[np.ndarray] = None,
        points: Optional[np.ndarray] = None,
        tradeoff: float = 1.0,
        validate_metric: bool = False,
        history_limit: Optional[int] = DEFAULT_HISTORY_LIMIT,
        use_certificate: bool = True,
        shard_size: int = DEFAULT_SHARD_SIZE,
        per_shard_p: Optional[int] = None,
        metric_factory: Optional[Callable[[np.ndarray], Metric]] = None,
        checkpoint_every: Optional[int] = None,
        on_checkpoint: Optional[
            Callable[[Union[EngineSnapshot, SessionSnapshot]], None]
        ] = None,
        resolve_every: Optional[int] = None,
        resolve_kwargs: Optional[dict] = None,
        durable_dir: Optional[str] = None,
        fsync: str = "interval",
        snapshot_every: Optional[int] = None,
        keep_snapshots: int = 2,
        trace: Optional[Trace] = None,
    ) -> None:
        if (distances is None) == (points is None):
            raise InvalidParameterError(
                "supply exactly one of distances (dense) or points (sharded)"
            )
        if checkpoint_every is not None and checkpoint_every < 1:
            raise InvalidParameterError("checkpoint_every must be at least 1")
        if on_checkpoint is not None and checkpoint_every is None:
            checkpoint_every = 1
        if resolve_every is not None and resolve_every < 1:
            raise InvalidParameterError("resolve_every must be at least 1")
        if snapshot_every is not None and durable_dir is None:
            raise InvalidParameterError(
                "snapshot_every is the durable compaction cadence; it needs "
                "durable_dir"
            )
        self._checkpoint_every = checkpoint_every
        self._on_checkpoint = on_checkpoint
        self._resolve_every = resolve_every
        self._resolve_kwargs = dict(resolve_kwargs or {})
        self._ticks = 0
        self._durable = None
        self._trace = trace
        self._dense: Optional[DynamicDiversifier] = None
        self._sharded: Optional[ShardedDynamicEngine] = None
        if distances is not None:
            if resolve_every is not None:
                raise InvalidParameterError(
                    "resolve_every applies to the sharded backend only"
                )
            self._dense = DynamicDiversifier(
                weights,
                distances,
                p,
                tradeoff=tradeoff,
                validate_metric=validate_metric,
                history_limit=history_limit,
                use_certificate=use_certificate,
            )
        else:
            self._sharded = ShardedDynamicEngine(
                points,
                weights,
                p,
                tradeoff=tradeoff,
                shard_size=shard_size,
                per_shard_p=per_shard_p,
                metric_factory=metric_factory,
            )
        self.engine.trace = trace
        if durable_dir is not None:
            from repro.durability.recovery import DurableStore

            store = DurableStore(
                durable_dir,
                fsync=fsync,
                snapshot_every=snapshot_every,
                keep_snapshots=keep_snapshots,
            )
            store.start_fresh(self)
            self._durable = store

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """``"dense"`` or ``"sharded"``."""
        return "dense" if self._dense is not None else "sharded"

    @property
    def engine(self) -> Union[DynamicDiversifier, ShardedDynamicEngine]:
        """The backing engine (for backend-specific diagnostics)."""
        return self._dense if self._dense is not None else self._sharded

    @property
    def ticks(self) -> int:
        """Number of event batches applied through this session."""
        return self._ticks

    @property
    def durable(self):
        """The attached :class:`~repro.durability.recovery.DurableStore`
        (``None`` when the session is not durable)."""
        return self._durable

    @property
    def n(self) -> int:
        return self.engine.n

    @property
    def p(self) -> int:
        return self.engine.p

    @property
    def tradeoff(self) -> float:
        return self.engine.tradeoff

    @property
    def active_count(self) -> int:
        return self.engine.active_count

    @property
    def solution(self) -> FrozenSet[Element]:
        return self.engine.solution

    @property
    def solution_value(self) -> float:
        return self.engine.solution_value

    @property
    def degraded(self) -> bool:
        """Sharded mode: whether any shard currently carries stale winners."""
        return self._sharded.degraded if self._sharded is not None else False

    def weight(self, element: Element) -> float:
        return self.engine.weight(element)

    def distance(self, u: Element, v: Element) -> float:
        return self.engine.distance(u, v)

    def approximation_ratio(self) -> float:
        """Dense mode only: ``OPT / φ(S)`` (exact optimum; small n)."""
        if self._dense is None:
            raise InvalidParameterError(
                "approximation_ratio needs the dense backend (exact optimum)"
            )
        return self._dense.approximation_ratio()

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply_events(self, batch: EventBatch, **kwargs) -> UpdateOutcome:
        """Apply one tick through the backend, then run the session cadence:
        periodic full re-solve (sharded) and periodic checkpoints.

        With durability enabled the tick is journaled *before* any mutation
        (journal-before-apply): a crash between journal and apply replays
        the tick on recovery, reaching the same state the surviving process
        would have reached — invalid ticks included, since the backends
        reject those deterministically both live and on replay.
        """
        trace = self._trace
        metered = TICKS.enabled()
        started = time.perf_counter()
        tick_span = maybe_start_span(
            trace,
            "tick",
            tick=self._ticks,
            backend=self.mode,
            num_events=batch.num_events,
        )
        try:
            if self._durable is not None:
                journal_started = time.perf_counter()
                with maybe_span(trace, "wal.journal"):
                    self._durable.journal(batch, kwargs)
                if metered:
                    TICK_SECONDS.observe(
                        time.perf_counter() - journal_started, phase="journal"
                    )
            apply_started = time.perf_counter()
            with maybe_span(trace, "apply"):
                if self._dense is not None:
                    outcome = self._dense.apply_events(batch, **kwargs)
                else:
                    outcome = self._sharded.apply_events(batch, **kwargs)
            if metered:
                TICK_SECONDS.observe(
                    time.perf_counter() - apply_started, phase="apply"
                )
            self._ticks += 1
            if (
                self._resolve_every is not None
                and self._sharded is not None
                and self._ticks % self._resolve_every == 0
            ):
                with maybe_span(trace, "resolve_full"):
                    self._sharded.resolve_full(adopt=True, **self._resolve_kwargs)
            if (
                self._on_checkpoint is not None
                and self._ticks % self._checkpoint_every == 0
            ):
                with maybe_span(trace, "checkpoint"):
                    self._on_checkpoint(self.snapshot())
            if self._durable is not None:
                with maybe_span(trace, "wal.compact"):
                    self._durable.maybe_compact(self)
            _annotate_tick(tick_span, outcome)
        finally:
            tick_span.finish()
        if metered:
            TICKS.inc(backend=self.mode)
        if trace is not None:
            outcome.metadata["timings"] = phase_timings(
                trace, tick_span.id, total=time.perf_counter() - started
            )
        return outcome

    def apply(self, perturbation: Perturbation, **kwargs) -> UpdateOutcome:
        """Apply a single Section 6 perturbation (dense semantics when dense;
        routed through a one-event batch on the sharded backend)."""
        if self._dense is not None:
            trace = self._trace
            metered = TICKS.enabled()
            started = time.perf_counter()
            tick_span = maybe_start_span(
                trace, "tick", tick=self._ticks, backend=self.mode, num_events=1
            )
            try:
                if self._durable is not None:
                    journal_started = time.perf_counter()
                    with maybe_span(trace, "wal.journal"):
                        self._durable.journal(
                            EventBatch.from_perturbations([perturbation]), kwargs
                        )
                    if metered:
                        TICK_SECONDS.observe(
                            time.perf_counter() - journal_started, phase="journal"
                        )
                apply_started = time.perf_counter()
                with maybe_span(trace, "apply"):
                    outcome = self._dense.apply(perturbation, **kwargs)
                if metered:
                    TICK_SECONDS.observe(
                        time.perf_counter() - apply_started, phase="apply"
                    )
                self._ticks += 1
                if (
                    self._on_checkpoint is not None
                    and self._ticks % self._checkpoint_every == 0
                ):
                    with maybe_span(trace, "checkpoint"):
                        self._on_checkpoint(self.snapshot())
                if self._durable is not None:
                    with maybe_span(trace, "wal.compact"):
                        self._durable.maybe_compact(self)
                _annotate_tick(tick_span, outcome)
            finally:
                tick_span.finish()
            if metered:
                TICKS.inc(backend=self.mode)
            if trace is not None:
                outcome.metadata["timings"] = phase_timings(
                    trace, tick_span.id, total=time.perf_counter() - started
                )
            return outcome
        return self.apply_events(
            EventBatch.from_perturbations([perturbation]), **kwargs
        )

    def resolve_full(self, **solve_kwargs):
        """Sharded mode: full re-solve (see
        :meth:`ShardedDynamicEngine.resolve_full`)."""
        if self._sharded is None:
            raise InvalidParameterError(
                "resolve_full applies to the sharded backend only"
            )
        return self._sharded.resolve_full(**{**self._resolve_kwargs, **solve_kwargs})

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Union[EngineSnapshot, SessionSnapshot]:
        """A pickle-safe snapshot of the backend state."""
        if self._dense is not None:
            return self._dense.snapshot()
        return self._sharded.snapshot(ticks=self._ticks)

    def serve_corpus(self, **corpus_kwargs):
        """A :class:`~repro.serve.PreparedCorpus` over the current instance.

        The maintenance→serving handoff: the session's live weights, points
        / distances and sparse overrides become a prepared corpus (retired
        slots compacted away), so a serving front end answers queries against
        exactly the universe the dynamic tier maintains.  The same
        construction works from a persisted snapshot via
        :meth:`repro.serve.PreparedCorpus.from_session` — that is the
        recovery path for a serving process that died.
        """
        from repro.serve.corpus import PreparedCorpus

        return PreparedCorpus.from_session(self, **corpus_kwargs)

    @classmethod
    def restore(
        cls,
        snapshot: Union[EngineSnapshot, SessionSnapshot],
        *,
        metric_factory: Optional[Callable[[np.ndarray], Metric]] = None,
        **session_kwargs,
    ) -> "DynamicSession":
        """Rebuild a session from a :meth:`snapshot` of either backend."""
        session = cls.__new__(cls)
        session._checkpoint_every = session_kwargs.pop("checkpoint_every", None)
        session._on_checkpoint = session_kwargs.pop("on_checkpoint", None)
        if session._on_checkpoint is not None and session._checkpoint_every is None:
            session._checkpoint_every = 1
        session._resolve_every = session_kwargs.pop("resolve_every", None)
        session._resolve_kwargs = dict(session_kwargs.pop("resolve_kwargs", None) or {})
        session._trace = session_kwargs.pop("trace", None)
        if session_kwargs:
            raise InvalidParameterError(
                f"unknown restore options: {sorted(session_kwargs)}"
            )
        session._durable = None
        session._dense = None
        session._sharded = None
        if isinstance(snapshot, EngineSnapshot):
            session._dense = DynamicDiversifier.restore(snapshot)
            session._ticks = 0
        elif isinstance(snapshot, SessionSnapshot):
            session._sharded = ShardedDynamicEngine.restore(
                snapshot, metric_factory=metric_factory
            )
            session._ticks = int(snapshot.ticks)
        else:
            raise InvalidParameterError(
                f"restore expects an EngineSnapshot or SessionSnapshot, "
                f"got {type(snapshot).__name__}"
            )
        session.engine.trace = session._trace
        return session

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    @classmethod
    def recover(
        cls,
        durable_dir: str,
        *,
        metric_factory: Optional[Callable[[np.ndarray], Metric]] = None,
        **options,
    ) -> "DynamicSession":
        """Recover a durable session from its directory after a crash.

        Loads the newest valid snapshot generation (or the journal's initial
        state), replays the write-ahead-log tail through the normal apply
        path, repairs any torn trailing record, and re-attaches the journal
        so the recovered session keeps journaling where the dead one
        stopped.  The result is bit-identical to the state the crashed
        process had reached at its last journaled tick boundary.

        Session configuration (``resolve_every``, ``fsync``,
        ``snapshot_every``, ...) defaults to what the dead session journaled;
        keyword ``options`` override it.
        """
        from repro.durability.recovery import recover_session

        return recover_session(
            cls, durable_dir, metric_factory=metric_factory, **options
        )

    def close(self) -> None:
        """Flush and detach the durable journal (no-op when not durable)."""
        if self._durable is not None:
            self._durable.close()
            self._durable = None

    def __enter__(self) -> "DynamicSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
